//! OS-activity modeling for the batch model (paper Section V).
//!
//! Two kernel traffic sources with very different scaling:
//! * **syscall/trap traffic** (thread creation, synchronization) is
//!   proportional to the *application*, so it statically inflates the
//!   batch size before simulation;
//! * **periodic timer interrupts** are proportional to *wall-clock
//!   runtime*, so extra "batches" are injected every `1/R_timer` cycles
//!   for as long as the user work is incomplete.

use serde::{Deserialize, Serialize};

/// Kernel-traffic extension of the batch model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Application-dependent additional traffic as a fraction of the
    /// batch size (Table IV "application dependent additional traffic";
    /// e.g. 0.58 for blackscholes): `b_eff = b * (1 + static_frac)`.
    pub static_frac: f64,
    /// Timer interrupt rate in events per cycle (Table IV `R_timer`).
    pub timer_rate: f64,
    /// Requests added to every node's remaining batch per timer event.
    pub timer_packets: u64,
}

impl KernelModel {
    /// No kernel traffic (identity extension).
    pub fn none() -> Self {
        Self { static_frac: 0.0, timer_rate: 0.0, timer_packets: 0 }
    }

    /// Effective static batch size for a base batch `b`.
    pub fn effective_batch(&self, b: u64) -> u64 {
        (b as f64 * (1.0 + self.static_frac)).round() as u64
    }
}

/// Accumulator for timer events: converts a fractional per-cycle rate
/// into discrete event counts.
#[derive(Debug, Clone, Default)]
pub struct TimerAccumulator {
    acc: f64,
}

impl TimerAccumulator {
    /// Advance one cycle at `rate` events/cycle; returns the number of
    /// timer events that fire this cycle (0 almost always, 1 sometimes).
    pub fn tick(&mut self, rate: f64) -> u64 {
        self.acc += rate;
        let fired = self.acc.floor();
        self.acc -= fired;
        fired as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_batch_inflates() {
        let k = KernelModel { static_frac: 0.58, timer_rate: 0.0, timer_packets: 0 };
        assert_eq!(k.effective_batch(1000), 1580);
        assert_eq!(KernelModel::none().effective_batch(1000), 1000);
    }

    #[test]
    fn timer_fires_at_rate() {
        let mut acc = TimerAccumulator::default();
        let rate = 0.0080; // lu's R_timer
        let events: u64 = (0..100_000).map(|_| acc.tick(rate)).sum();
        assert_eq!(events, 800);
    }

    #[test]
    fn timer_zero_never_fires() {
        let mut acc = TimerAccumulator::default();
        assert!((0..1000).all(|_| acc.tick(0.0) == 0));
    }

    #[test]
    fn timer_events_spread_out() {
        let mut acc = TimerAccumulator::default();
        let gaps: Vec<usize> = {
            let mut fires = Vec::new();
            for c in 0..10_000 {
                if acc.tick(0.01) > 0 {
                    fires.push(c);
                }
            }
            fires.windows(2).map(|w| w[1] - w[0]).collect()
        };
        assert!(gaps.iter().all(|&g| g == 100), "period must be 1/rate");
    }
}
