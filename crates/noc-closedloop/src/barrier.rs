//! The barrier model (closed loop with inter-node dependency).
//!
//! Every node streams `b` packets into the network as fast as flow
//! control allows; the run completes when the last packet of the last
//! node is delivered — a global barrier. The paper notes this measures
//! essentially network throughput and tracks open-loop saturation, which
//! is why the batch model is the focus; we implement it for completeness
//! and for the comparison tests.

use noc_sim::config::NetConfig;
use noc_sim::error::ConfigError;
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;
use noc_traffic::{PatternKind, TrafficPattern};
use serde::{Deserialize, Serialize};

/// Barrier-model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BarrierConfig {
    /// Network configuration (single message class).
    pub net: NetConfig,
    /// Spatial pattern of destinations.
    pub pattern: PatternKind,
    /// Packets per node.
    pub batch: u64,
    /// Packet length in flits.
    pub size: u16,
    /// Simulation cycle cap.
    pub max_cycles: u64,
}

impl Default for BarrierConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::baseline(),
            pattern: PatternKind::Uniform,
            batch: 1000,
            size: 1,
            max_cycles: 50_000_000,
        }
    }
}

/// Result of one barrier-model run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BarrierResult {
    /// Cycle the last packet was delivered.
    pub runtime: u64,
    /// Achieved throughput (flits/cycle/node).
    pub throughput: f64,
    /// Per-node cycle at which that node's last packet was *delivered*.
    pub per_node_last_delivery: Vec<u64>,
    /// True when everything drained within the cap.
    pub drained: bool,
}

struct BarrierBehavior {
    pattern: Box<dyn TrafficPattern>,
    rng: SimRng,
    remaining: Vec<u64>,
    polled: Vec<Cycle>,
    last_delivery_by_src: Vec<u64>,
    last_delivery: u64,
}

impl NodeBehavior for BarrierBehavior {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        if self.polled[node] == cycle || self.remaining[node] == 0 {
            return None;
        }
        self.polled[node] = cycle;
        self.remaining[node] -= 1;
        let dst = self.pattern.dest(node, &mut self.rng);
        Some(PacketSpec { dst, size: 1, class: 0, payload: node as u64 })
    }

    fn deliver(&mut self, _node: usize, d: &Delivered, cycle: Cycle) {
        self.last_delivery_by_src[d.src] = cycle;
        self.last_delivery = self.last_delivery.max(cycle);
    }

    fn quiescent(&self) -> bool {
        self.remaining.iter().all(|&r| r == 0)
    }
}

/// Run the barrier model to completion.
pub fn run_barrier(cfg: &BarrierConfig) -> Result<BarrierResult, ConfigError> {
    let mut net = Network::new(cfg.net.clone())?;
    let nodes = net.num_nodes();
    let k = net.topo().radix(0);
    let mut b = BarrierBehavior {
        pattern: cfg.pattern.build(nodes, k),
        rng: SimRng::new(cfg.net.seed ^ 0xbaaa_aaad),
        remaining: vec![cfg.batch; nodes],
        polled: vec![Cycle::MAX; nodes],
        last_delivery_by_src: vec![0; nodes],
        last_delivery: 0,
    };
    let drained = net.drain(&mut b, cfg.max_cycles);
    let runtime = b.last_delivery.max(1);
    Ok(BarrierResult {
        runtime,
        throughput: (cfg.batch * cfg.size as u64) as f64 / runtime as f64,
        per_node_last_delivery: b.last_delivery_by_src,
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn quick(b: u64) -> BarrierConfig {
        BarrierConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            batch: b,
            ..BarrierConfig::default()
        }
    }

    #[test]
    fn barrier_completes_and_reports() {
        let r = run_barrier(&quick(100)).unwrap();
        assert!(r.drained);
        assert!(r.runtime >= 100, "can't deliver faster than injection");
        assert!(r.throughput > 0.0 && r.throughput <= 1.0);
        assert_eq!(r.per_node_last_delivery.len(), 16);
    }

    #[test]
    fn barrier_throughput_approaches_saturation_for_large_b() {
        // the barrier model measures network throughput; for a large
        // batch, per-node throughput should land near the uniform-traffic
        // saturation point, well above the m=1 batch model's rate
        let r = run_barrier(&quick(2000)).unwrap();
        assert!(r.throughput > 0.35, "throughput = {}", r.throughput);
    }

    #[test]
    fn barrier_deterministic() {
        let a = run_barrier(&quick(200)).unwrap();
        let b = run_barrier(&quick(200)).unwrap();
        assert_eq!(a.runtime, b.runtime);
    }
}
