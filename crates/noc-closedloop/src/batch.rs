//! The batch model (closed loop with intra-node dependency).
//!
//! Every node must complete a batch of `b` remote operations. Each
//! operation is a request packet; when it reaches its destination, a
//! reply is generated (optionally after a memory-model delay) and sent
//! back. A node may have at most `m` operations outstanding — the MSHR
//! model — and, with the enhanced injection model, issues new requests
//! only at its network access rate (NAR). Runtime is the cycle the last
//! reply lands; the node with the largest runtime defines `T`, making
//! this a *worst-case* measurement (unlike open-loop averages).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use noc_sim::config::NetConfig;
use noc_sim::error::ConfigError;
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;
use noc_traffic::{PatternKind, TrafficPattern};
use serde::{Deserialize, Serialize};

use crate::kernel::{KernelModel, TimerAccumulator};
use crate::reply::ReplyModel;

/// Message class of request packets.
pub const REQUEST: u8 = 0;
/// Message class of reply packets.
pub const REPLY: u8 = 1;

/// Batch-model experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Network configuration (`classes` is forced to 2).
    pub net: NetConfig,
    /// Spatial pattern of request destinations.
    pub pattern: PatternKind,
    /// Operations per node (`b`).
    pub batch: u64,
    /// Maximum outstanding operations per node (`m`, the MSHR count).
    pub max_outstanding: usize,
    /// Request packet length in flits.
    pub request_size: u16,
    /// Reply packet length in flits.
    pub reply_size: u16,
    /// Network access rate: probability per cycle that a node with a
    /// spare MSHR issues its next request. `1.0` is the baseline model.
    pub nar: f64,
    /// Reply-latency model.
    pub reply_model: ReplyModel,
    /// Optional kernel-traffic model.
    pub kernel: Option<KernelModel>,
    /// Simulation cycle cap (guards against misconfiguration).
    pub max_cycles: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::baseline(),
            pattern: PatternKind::Uniform,
            batch: 1000,
            max_outstanding: 1,
            request_size: 1,
            reply_size: 1,
            nar: 1.0,
            reply_model: ReplyModel::Immediate,
            kernel: None,
            max_cycles: 50_000_000,
        }
    }
}

impl BatchConfig {
    /// Set the batch size `b`.
    pub fn with_batch(mut self, b: u64) -> Self {
        self.batch = b;
        self
    }

    /// Set the MSHR count `m`.
    pub fn with_m(mut self, m: usize) -> Self {
        self.max_outstanding = m;
        self
    }

    /// Set the network access rate.
    pub fn with_nar(mut self, nar: f64) -> Self {
        self.nar = nar;
        self
    }

    /// Set the reply model.
    pub fn with_reply(mut self, r: ReplyModel) -> Self {
        self.reply_model = r;
        self
    }

    /// Set the kernel model.
    pub fn with_kernel(mut self, k: KernelModel) -> Self {
        self.kernel = Some(k);
        self
    }
}

/// Result of one batch-model run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResult {
    /// Total runtime `T`: cycle when the last reply was delivered.
    pub runtime: u64,
    /// Runtime normalized to the batch size (`T / b`).
    pub normalized_runtime: f64,
    /// Achieved throughput in flits/cycle/node:
    /// `completed x (request + reply flits) / (N x T)`;
    /// equals the paper's `2 b / T` for single-flit packets without
    /// kernel traffic.
    pub throughput: f64,
    /// Per-node completion cycle (last reply at that node) — Fig 7.
    pub per_node_runtime: Vec<u64>,
    /// Requests completed in total (includes kernel-added work).
    pub completed: u64,
    /// Requests added by the kernel timer model.
    pub timer_added: u64,
    /// True when everything drained before `max_cycles`.
    pub drained: bool,
}

#[derive(Debug, Clone, Default)]
struct NodeState {
    to_issue: u64,
    issued: u64,
    outstanding: usize,
    completed: u64,
    last_reply: u64,
}

/// The batch-model [`NodeBehavior`].
pub struct BatchBehavior {
    pattern: Box<dyn TrafficPattern>,
    rng: SimRng,
    nodes: Vec<NodeState>,
    replies: Vec<BinaryHeap<Reverse<(Cycle, usize)>>>,
    m: usize,
    nar: f64,
    request_size: u16,
    reply_size: u16,
    reply_model: ReplyModel,
    kernel: KernelModel,
    timer: TimerAccumulator,
    user_target: u64,
    last_cycle: Cycle,
    req_polled: Vec<Cycle>,
    /// Requests added dynamically by timer events.
    pub timer_added: u64,
}

impl BatchBehavior {
    /// Build the behavior for `nodes` nodes.
    pub fn new(cfg: &BatchConfig, nodes: usize, k: usize) -> Self {
        let kernel = cfg.kernel.unwrap_or_else(KernelModel::none);
        let user_target = kernel.effective_batch(cfg.batch);
        let mut states = vec![NodeState::default(); nodes];
        for st in &mut states {
            st.to_issue = user_target;
        }
        Self {
            pattern: cfg.pattern.build(nodes, k),
            rng: SimRng::new(cfg.net.seed ^ 0xbadc_0ffe_u64),
            nodes: states,
            replies: (0..nodes).map(|_| BinaryHeap::new()).collect(),
            m: cfg.max_outstanding,
            nar: cfg.nar,
            request_size: cfg.request_size,
            reply_size: cfg.reply_size,
            reply_model: cfg.reply_model,
            kernel,
            timer: TimerAccumulator::default(),
            user_target,
            last_cycle: Cycle::MAX,
            req_polled: vec![Cycle::MAX; nodes],
            timer_added: 0,
        }
    }

    /// Per-node completion cycles.
    pub fn per_node_runtime(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.last_reply).collect()
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.nodes.iter().map(|n| n.completed).sum()
    }

    /// Global runtime: the worst node's completion cycle.
    pub fn runtime(&self) -> u64 {
        self.nodes.iter().map(|n| n.last_reply).max().unwrap_or(0)
    }

    /// True while any node still has *user* batch work unfinished —
    /// the window during which timer traffic keeps being added.
    fn user_work_pending(&self) -> bool {
        self.nodes.iter().any(|n| n.completed < self.user_target)
    }

    fn tick(&mut self, cycle: Cycle) {
        if self.last_cycle == cycle {
            return;
        }
        self.last_cycle = cycle;
        if self.kernel.timer_rate > 0.0 && self.user_work_pending() {
            let events = self.timer.tick(self.kernel.timer_rate);
            if events > 0 {
                let extra = events * self.kernel.timer_packets;
                for st in &mut self.nodes {
                    st.to_issue += extra;
                }
                self.timer_added += extra * self.nodes.len() as u64;
            }
        }
    }
}

impl NodeBehavior for BatchBehavior {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        self.tick(cycle);
        // 1) ready replies take priority (they unblock remote MSHRs)
        if let Some(&Reverse((ready, dst))) = self.replies[node].peek() {
            if ready <= cycle {
                self.replies[node].pop();
                return Some(PacketSpec { dst, size: self.reply_size, class: REPLY, payload: 0 });
            }
        }
        // 2) at most one request attempt per node per cycle
        if self.req_polled[node] == cycle {
            return None;
        }
        self.req_polled[node] = cycle;
        let can_issue = {
            let st = &self.nodes[node];
            st.to_issue > 0 && st.outstanding < self.m
        };
        if can_issue && self.rng.chance(self.nar) {
            let st = &mut self.nodes[node];
            st.to_issue -= 1;
            st.issued += 1;
            st.outstanding += 1;
            let dst = self.pattern.dest(node, &mut self.rng);
            return Some(PacketSpec { dst, size: self.request_size, class: REQUEST, payload: 0 });
        }
        None
    }

    fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
        match d.class {
            REQUEST => {
                // the "memory system" at `node` services the request and
                // schedules the reply toward the requester
                let delay = self.reply_model.delay(&mut self.rng);
                self.replies[node].push(Reverse((cycle + delay, d.src)));
            }
            REPLY => {
                let st = &mut self.nodes[node];
                st.outstanding -= 1;
                st.completed += 1;
                st.last_reply = cycle;
            }
            c => panic!("unexpected message class {c}"),
        }
    }

    fn quiescent(&self) -> bool {
        self.nodes.iter().all(|n| n.to_issue == 0 && n.outstanding == 0)
            && self.replies.iter().all(|q| q.is_empty())
    }
}

/// Run the batch model to completion.
pub fn run_batch(cfg: &BatchConfig) -> Result<BatchResult, ConfigError> {
    let mut net_cfg = cfg.net.clone();
    net_cfg.classes = 2;
    let mut net = Network::new(net_cfg)?;
    let nodes = net.num_nodes();
    let k = net.topo().radix(0);
    let mut b = BatchBehavior::new(cfg, nodes, k);
    let drained = net.drain(&mut b, cfg.max_cycles);
    let runtime = b.runtime().max(1);
    let completed = b.completed();
    let flits = completed * (cfg.request_size + cfg.reply_size) as u64;
    Ok(BatchResult {
        runtime,
        normalized_runtime: runtime as f64 / cfg.batch as f64,
        throughput: flits as f64 / nodes as f64 / runtime as f64,
        per_node_runtime: b.per_node_runtime(),
        completed,
        timer_added: b.timer_added,
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn quick(b: u64, m: usize) -> BatchConfig {
        BatchConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            batch: b,
            max_outstanding: m,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn completes_exactly_n_times_b() {
        let r = run_batch(&quick(50, 2)).unwrap();
        assert!(r.drained);
        assert_eq!(r.completed, 16 * 50);
        assert_eq!(r.per_node_runtime.len(), 16);
        assert!(r.per_node_runtime.iter().all(|&t| t > 0 && t <= r.runtime));
    }

    #[test]
    fn more_mshrs_reduce_runtime() {
        let m1 = run_batch(&quick(100, 1)).unwrap();
        let m4 = run_batch(&quick(100, 4)).unwrap();
        let m16 = run_batch(&quick(100, 16)).unwrap();
        assert!(m4.runtime < m1.runtime, "{} vs {}", m4.runtime, m1.runtime);
        assert!(m16.runtime < m4.runtime, "{} vs {}", m16.runtime, m4.runtime);
        assert!(m16.throughput > m1.throughput);
    }

    #[test]
    fn throughput_is_two_b_over_t_for_unit_packets() {
        let r = run_batch(&quick(100, 4)).unwrap();
        let expect = 2.0 * 100.0 / r.runtime as f64;
        assert!((r.throughput - expect).abs() < 1e-9);
    }

    #[test]
    fn m1_runtime_is_batch_times_round_trip() {
        // with m = 1 every operation is a full round trip; on a 4x4 mesh
        // the average round trip is ~2 x (H_avg x 2 + 1) plus queueing.
        let r = run_batch(&quick(200, 1)).unwrap();
        let per_op = r.runtime as f64 / 200.0;
        assert!(per_op > 8.0 && per_op < 20.0, "per-op = {per_op}");
    }

    #[test]
    fn nar_throttles_injection() {
        let full = run_batch(&quick(100, 4)).unwrap();
        let throttled = run_batch(&quick(100, 4).with_nar(0.05)).unwrap();
        assert!(throttled.runtime > 2 * full.runtime);
        // ~one request per 20 cycles per node: runtime near b / NAR
        let expect = 100.0 / 0.05;
        let ratio = throttled.runtime as f64 / expect;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio = {ratio}");
    }

    #[test]
    fn reply_latency_extends_runtime() {
        let fast = run_batch(&quick(100, 1)).unwrap();
        let slow = run_batch(&quick(100, 1).with_reply(ReplyModel::Fixed { latency: 50 })).unwrap();
        // with m = 1 each op serializes on the reply delay
        let delta = (slow.runtime - fast.runtime) as f64 / 100.0;
        assert!((delta - 50.0).abs() < 5.0, "delta per op = {delta}");
    }

    #[test]
    fn kernel_static_inflation_increases_work() {
        let plain = run_batch(&quick(100, 4)).unwrap();
        let inflated = run_batch(&quick(100, 4).with_kernel(KernelModel {
            static_frac: 0.5,
            timer_rate: 0.0,
            timer_packets: 0,
        }))
        .unwrap();
        assert_eq!(inflated.completed, 16 * 150);
        assert!(inflated.runtime > plain.runtime);
    }

    #[test]
    fn kernel_timer_adds_runtime_proportional_traffic() {
        let cfg = quick(200, 2).with_kernel(KernelModel {
            static_frac: 0.0,
            timer_rate: 0.01,
            timer_packets: 2,
        });
        let r = run_batch(&cfg).unwrap();
        assert!(r.drained);
        assert!(r.timer_added > 0);
        assert_eq!(r.completed, 16 * 200 + r.timer_added);
    }

    #[test]
    fn transpose_pattern_works_with_self_traffic() {
        let mut cfg = quick(50, 2);
        cfg.pattern = PatternKind::Transpose;
        let r = run_batch(&cfg).unwrap();
        assert!(r.drained);
        assert_eq!(r.completed, 16 * 50);
        // diagonal nodes (self traffic) finish much earlier than corners
        let diag = r.per_node_runtime[0];
        let corner = r.per_node_runtime[3]; // (3,0) <-> (0,3) is a long haul
        assert!(diag < corner, "diag {diag} vs corner {corner}");
    }

    #[test]
    fn deterministic_runs() {
        let a = run_batch(&quick(100, 4)).unwrap();
        let b = run_batch(&quick(100, 4)).unwrap();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.per_node_runtime, b.per_node_runtime);
    }

    #[test]
    fn normalized_runtime_decreases_with_b() {
        // Fig 2: runtime per operation amortizes the pipeline fill
        let small = run_batch(&quick(10, 8)).unwrap();
        let large = run_batch(&quick(500, 8)).unwrap();
        assert!(large.normalized_runtime < small.normalized_runtime);
    }
}
