//! Multi-seed replication of closed-loop runs.
//!
//! Closed-loop runtime `T` is a worst-case statistic (the slowest node
//! defines it), so single runs are noisy; the paper's tables average
//! several seeds. Replicates are embarrassingly parallel (each builds a
//! fresh network), so [`run_batch_seeds`] fans them out through
//! [`noc_exp::run_grid`]. Replicate `i` always runs with the RNG seed
//! `derive_seed(cfg.net.seed, i)`, regardless of worker or evaluation
//! order, so parallel output is bit-identical to
//! [`run_batch_seeds_serial`].

use noc_sim::error::ConfigError;

use crate::batch::{run_batch, BatchConfig, BatchResult};

/// The configuration of replicate `index`: `base` with the replicate's
/// RNG seed derived from `(base.net.seed, index)`.
fn replicate_config(base: &BatchConfig, index: usize) -> BatchConfig {
    let mut cfg = base.clone();
    cfg.net.seed = noc_exp::derive_seed(base.net.seed, index as u64);
    cfg
}

/// Run `replicates` independent batch-model experiments in parallel,
/// differing only in their derived RNG seed. Results come back in
/// replicate order and are bit-identical to
/// [`run_batch_seeds_serial`] (regression-tested).
pub fn run_batch_seeds(
    base: &BatchConfig,
    replicates: usize,
) -> Result<Vec<BatchResult>, ConfigError> {
    let indices: Vec<usize> = (0..replicates).collect();
    noc_exp::run_grid(&indices, |_, &i| run_batch(&replicate_config(base, i))).into_iter().collect()
}

/// Serial reference implementation of [`run_batch_seeds`]: same
/// configurations, same seeds, one replicate at a time.
pub fn run_batch_seeds_serial(
    base: &BatchConfig,
    replicates: usize,
) -> Result<Vec<BatchResult>, ConfigError> {
    (0..replicates).map(|i| run_batch(&replicate_config(base, i))).collect()
}

/// Summary of a multi-seed batch: mean runtime and its spread.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSeedSummary {
    /// Number of replicates.
    pub replicates: usize,
    /// Mean runtime over replicates.
    pub mean_runtime: f64,
    /// Smallest replicate runtime.
    pub min_runtime: u64,
    /// Largest replicate runtime.
    pub max_runtime: u64,
    /// Mean achieved throughput (flits/cycle/node).
    pub mean_throughput: f64,
}

/// Reduce per-replicate results to a [`BatchSeedSummary`].
///
/// Panics when `results` is empty.
pub fn summarize_batch_seeds(results: &[BatchResult]) -> BatchSeedSummary {
    assert!(!results.is_empty(), "summarize_batch_seeds needs at least one replicate");
    let n = results.len();
    BatchSeedSummary {
        replicates: n,
        mean_runtime: results.iter().map(|r| r.runtime as f64).sum::<f64>() / n as f64,
        min_runtime: results.iter().map(|r| r.runtime).min().unwrap(),
        max_runtime: results.iter().map(|r| r.runtime).max().unwrap(),
        mean_throughput: results.iter().map(|r| r.throughput).sum::<f64>() / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, TopologyKind};

    fn quick() -> BatchConfig {
        BatchConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            batch: 50,
            max_outstanding: 4,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn replicates_use_distinct_derived_seeds() {
        let base = quick();
        let a = replicate_config(&base, 0);
        let b = replicate_config(&base, 1);
        assert_ne!(a.net.seed, b.net.seed);
        assert_ne!(a.net.seed, base.net.seed, "replicate 0 must not reuse the base seed");
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let base = quick();
        let par = run_batch_seeds(&base, 4).unwrap();
        let ser = run_batch_seeds_serial(&base, 4).unwrap();
        assert_eq!(format!("{par:?}"), format!("{ser:?}"));
    }

    #[test]
    fn replicates_differ_and_summary_brackets_them() {
        let rs = run_batch_seeds(&quick(), 4).unwrap();
        assert_eq!(rs.len(), 4);
        // distinct seeds should give at least two distinct runtimes
        let distinct: std::collections::HashSet<u64> = rs.iter().map(|r| r.runtime).collect();
        assert!(distinct.len() >= 2, "all replicates identical: {rs:?}");
        let s = summarize_batch_seeds(&rs);
        assert_eq!(s.replicates, 4);
        assert!(s.min_runtime as f64 <= s.mean_runtime && s.mean_runtime <= s.max_runtime as f64);
        assert!(s.mean_throughput > 0.0);
    }
}
