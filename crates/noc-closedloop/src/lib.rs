//! # noc-closedloop — closed-loop synthetic workload models
//!
//! The paper's closed-loop models, where network feedback shapes the
//! workload and the metric is *runtime*, not latency:
//!
//! * [`batch`] — the **batch model** (intra-node dependency): every node
//!   must complete `b` request/reply transactions with at most `m`
//!   outstanding (modeling MSHRs); runtime `T` is when the last reply
//!   lands, and achieved throughput is `theta = 2 b / T` for single-flit
//!   requests and replies.
//! * [`barrier`] — the **barrier model** (inter-node dependency): every
//!   node streams `b` packets as fast as flow control allows and the run
//!   ends when all packets of all nodes are delivered.
//! * [`reply`] — reply-latency models (immediate / fixed / probabilistic
//!   L2-or-memory), the paper's *enhanced reply model* (Section IV-C2).
//! * [`kernel`] — OS activity modeling (Section V): static batch
//!   inflation for syscall traffic plus dynamic timer-interrupt batches
//!   at rate `R_timer`.
//!
//! The *enhanced injection model* (Section IV-C1) is the `nar` field of
//! [`batch::BatchConfig`]: with probability NAR per cycle a node with
//! spare MSHRs issues its next request.

#![warn(missing_docs)]

pub mod barrier;
pub mod batch;
pub mod kernel;
pub mod reply;
pub mod seeds;

pub use barrier::{run_barrier, BarrierConfig, BarrierResult};
pub use batch::{run_batch, BatchBehavior, BatchConfig, BatchResult};
pub use kernel::KernelModel;
pub use reply::ReplyModel;
pub use seeds::{run_batch_seeds, run_batch_seeds_serial, summarize_batch_seeds, BatchSeedSummary};
