//! Reply-latency models: how long the destination "memory system" takes
//! before injecting the reply (paper Section IV-C2).

use noc_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Delay between a request's arrival and its reply's injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplyModel {
    /// Reply generated the same cycle (the baseline batch model).
    Immediate,
    /// Fixed latency for every remote access (e.g. an L2 hit).
    Fixed {
        /// Cycles added before the reply is injected.
        latency: u64,
    },
    /// Probabilistic memory hierarchy: every access pays `l2_latency`;
    /// with probability `mem_frac` it also pays `mem_latency` (an L2
    /// miss to DRAM). The paper's Fig 17(c) uses 20 + 10% x 300.
    Probabilistic {
        /// L2 access latency (always paid).
        l2_latency: u64,
        /// Main-memory latency (paid on a miss).
        mem_latency: u64,
        /// L2 miss fraction.
        mem_frac: f64,
    },
}

impl ReplyModel {
    /// Draw the delay for one request.
    pub fn delay(&self, rng: &mut SimRng) -> u64 {
        match *self {
            ReplyModel::Immediate => 0,
            ReplyModel::Fixed { latency } => latency,
            ReplyModel::Probabilistic { l2_latency, mem_latency, mem_frac } => {
                l2_latency + if rng.chance(mem_frac) { mem_latency } else { 0 }
            }
        }
    }

    /// Mean delay in cycles.
    pub fn mean(&self) -> f64 {
        match *self {
            ReplyModel::Immediate => 0.0,
            ReplyModel::Fixed { latency } => latency as f64,
            ReplyModel::Probabilistic { l2_latency, mem_latency, mem_frac } => {
                l2_latency as f64 + mem_frac * mem_latency as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_is_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(ReplyModel::Immediate.delay(&mut rng), 0);
        assert_eq!(ReplyModel::Immediate.mean(), 0.0);
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::new(1);
        let m = ReplyModel::Fixed { latency: 20 };
        assert!((0..50).all(|_| m.delay(&mut rng) == 20));
        assert_eq!(m.mean(), 20.0);
    }

    #[test]
    fn probabilistic_matches_paper_fig17c() {
        // 20 + 0.1 * 300 = 50 mean
        let m = ReplyModel::Probabilistic { l2_latency: 20, mem_latency: 300, mem_frac: 0.1 };
        assert_eq!(m.mean(), 50.0);
        let mut rng = SimRng::new(2);
        let mut sum = 0u64;
        let n = 100_000;
        for _ in 0..n {
            let d = m.delay(&mut rng);
            assert!(d == 20 || d == 320);
            sum += d;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn same_mean_different_distribution() {
        // the paper's point: Fig 17(b) and (c) share a mean of 50 but
        // behave differently under an MSHR cap
        let fixed = ReplyModel::Fixed { latency: 50 };
        let prob = ReplyModel::Probabilistic { l2_latency: 20, mem_latency: 300, mem_frac: 0.1 };
        assert_eq!(fixed.mean(), prob.mean());
    }
}
