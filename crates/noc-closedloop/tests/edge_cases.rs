//! Edge cases and termination guarantees for the closed-loop models.

use noc_closedloop::{run_barrier, run_batch, BarrierConfig, BatchConfig, KernelModel, ReplyModel};
use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};
use noc_traffic::PatternKind;

fn net4() -> NetConfig {
    NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 })
}

#[test]
fn batch_size_one_still_terminates() {
    let r = run_batch(&BatchConfig {
        net: net4(),
        batch: 1,
        max_outstanding: 1,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(r.drained);
    assert_eq!(r.completed, 16);
    // a single op per node: runtime is one round trip
    assert!(r.runtime < 100, "runtime {}", r.runtime);
}

#[test]
fn m_larger_than_batch_is_harmless() {
    let r = run_batch(&BatchConfig {
        net: net4(),
        batch: 5,
        max_outstanding: 64,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(r.drained);
    assert_eq!(r.completed, 16 * 5);
}

#[test]
fn zero_nar_never_injects_and_hits_cycle_cap() {
    let r = run_batch(&BatchConfig {
        net: net4(),
        batch: 10,
        max_outstanding: 1,
        nar: 0.0,
        max_cycles: 5_000,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(!r.drained, "NAR=0 can never finish");
    assert_eq!(r.completed, 0);
}

#[test]
fn tiny_nar_still_terminates() {
    let r = run_batch(&BatchConfig {
        net: net4(),
        batch: 20,
        max_outstanding: 4,
        nar: 0.01,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(r.drained);
    assert_eq!(r.completed, 16 * 20);
    // runtime dominated by the injection gate: ~ b / nar
    let per_op = r.runtime as f64 / 20.0;
    assert!(per_op > 50.0, "per-op {per_op} should reflect the NAR gate");
}

#[test]
fn kernel_timer_terminates_even_at_high_rate() {
    // timer adds 1 packet per node every 20 cycles; capacity is far
    // higher, so the run must converge shortly after user work finishes
    let r = run_batch(&BatchConfig {
        net: net4(),
        batch: 100,
        max_outstanding: 8,
        kernel: Some(KernelModel { static_frac: 0.0, timer_rate: 0.05, timer_packets: 1 }),
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(r.drained, "timer model must not prevent termination");
    assert!(r.timer_added > 0);
    assert_eq!(r.completed, 16 * 100 + r.timer_added);
}

#[test]
fn reply_latency_zero_equals_immediate() {
    let a = run_batch(&BatchConfig {
        net: net4(),
        batch: 50,
        max_outstanding: 2,
        reply_model: ReplyModel::Immediate,
        ..BatchConfig::default()
    })
    .unwrap();
    let b = run_batch(&BatchConfig {
        net: net4(),
        batch: 50,
        max_outstanding: 2,
        reply_model: ReplyModel::Fixed { latency: 0 },
        ..BatchConfig::default()
    })
    .unwrap();
    assert_eq!(a.runtime, b.runtime, "Fixed(0) must behave like Immediate");
}

#[test]
fn adaptive_routing_at_saturation_never_deadlocks() {
    // regression: the 8x8 mesh with 4 VCs and 2 message classes leaves
    // exactly one adaptive + one escape VC per class. Committing heads
    // to credit-less adaptive VCs used to close a credit cycle here
    // (uniform, m=32) — Duato's escape guarantee requires that blocked
    // heads stay unallocated until a claimable VC (with credits) exists.
    let r = run_batch(&BatchConfig {
        net: NetConfig::baseline().with_routing(RoutingKind::MinAdaptive).with_vcs(4),
        batch: 300,
        max_outstanding: 32,
        max_cycles: 2_000_000,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(r.drained, "MA deadlocked at saturation");
    assert_eq!(r.completed, 64 * 300);
}

#[test]
fn batch_works_on_every_routing_algorithm() {
    for routing in
        [RoutingKind::Dor, RoutingKind::Valiant, RoutingKind::Romm, RoutingKind::MinAdaptive]
    {
        let r = run_batch(&BatchConfig {
            net: net4().with_routing(routing).with_vcs(8),
            batch: 40,
            max_outstanding: 4,
            ..BatchConfig::default()
        })
        .unwrap();
        assert!(r.drained, "{routing:?}");
        assert_eq!(r.completed, 16 * 40, "{routing:?}");
    }
}

#[test]
fn batch_request_reply_sizes_affect_throughput_metric() {
    // 5-flit replies (cache lines) quintuple the reply traffic; theta
    // accounts for flits, so it rises even as runtime grows
    let small = run_batch(&BatchConfig {
        net: net4(),
        batch: 80,
        max_outstanding: 8,
        request_size: 1,
        reply_size: 1,
        ..BatchConfig::default()
    })
    .unwrap();
    let big = run_batch(&BatchConfig {
        net: net4(),
        batch: 80,
        max_outstanding: 8,
        request_size: 1,
        reply_size: 5,
        ..BatchConfig::default()
    })
    .unwrap();
    assert!(big.runtime > small.runtime, "bigger replies take longer");
    let expected_big = 80.0 * 6.0 / big.runtime as f64;
    assert!((big.throughput - expected_big).abs() < 1e-9);
}

#[test]
fn barrier_and_batch_agree_on_topology_ranking_at_high_m() {
    // at m = 32 the batch model is throughput-bound, like the barrier model
    let batch_rt = |topo: TopologyKind, vcs: usize| {
        run_batch(&BatchConfig {
            net: NetConfig::baseline().with_topology(topo).with_vcs(vcs),
            batch: 200,
            max_outstanding: 32,
            ..BatchConfig::default()
        })
        .unwrap()
        .runtime
    };
    let barrier_rt = |topo: TopologyKind, vcs: usize| {
        run_barrier(&BarrierConfig {
            net: NetConfig::baseline().with_topology(topo).with_vcs(vcs),
            batch: 200,
            ..BarrierConfig::default()
        })
        .unwrap()
        .runtime
    };
    let topos = [(TopologyKind::Mesh2D { k: 8 }, 4), (TopologyKind::FoldedTorus2D { k: 8 }, 4)];
    let batch: Vec<u64> = topos.iter().map(|&(t, v)| batch_rt(t, v)).collect();
    let barrier: Vec<u64> = topos.iter().map(|&(t, v)| barrier_rt(t, v)).collect();
    // both should rank the torus (higher bisection) faster than the mesh
    assert!(batch[1] < batch[0], "batch: torus {} vs mesh {}", batch[1], batch[0]);
    assert!(barrier[1] < barrier[0], "barrier: torus {} vs mesh {}", barrier[1], barrier[0]);
}

#[test]
fn transpose_batch_on_bigger_mesh_matches_paper_fig11_shape() {
    // per-node runtime distribution under transpose is bimodal-ish:
    // diagonal (self) nodes finish almost immediately, corner pairs last
    let r = run_batch(&BatchConfig {
        net: NetConfig::baseline(),
        pattern: PatternKind::Transpose,
        batch: 100,
        max_outstanding: 1,
        ..BatchConfig::default()
    })
    .unwrap();
    let diag: Vec<u64> = (0..8).map(|i| r.per_node_runtime[i * 8 + i]).collect();
    let offdiag_max = r
        .per_node_runtime
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 8 != i / 8)
        .map(|(_, &t)| t)
        .max()
        .unwrap();
    for &d in &diag {
        assert!(d < offdiag_max / 2, "diagonal {d} vs off-diag max {offdiag_max}");
    }
}
