//! Property tests on the statistics substrate.

use proptest::prelude::*;

use noc_stats::{linear_fit, pearson, percentile, Histogram, OnlineStats, Summary, TimeSeries};

proptest! {
    #[test]
    fn pearson_is_bounded_and_symmetric(
        xy in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..200),
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson(&y, &x).unwrap();
            prop_assert!((r - r2).abs() < 1e-9, "must be symmetric");
        }
    }

    #[test]
    fn pearson_invariant_under_affine_transform(
        xy in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let xt: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        if let (Some(r1), Some(r2)) = (pearson(&x, &y), pearson(&xt, &y)) {
            prop_assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
        }
    }

    #[test]
    fn linear_fit_residuals_orthogonal(
        xy in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        if let Some((a, b)) = linear_fit(&x, &y) {
            // least squares: residuals sum to ~0
            let resid_sum: f64 = x.iter().zip(&y).map(|(&xv, &yv)| yv - (a + b * xv)).sum();
            prop_assert!(resid_sum.abs() < 1e-6 * (y.len() as f64) * 1e3, "sum = {resid_sum}");
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut v in prop::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&v, lo).unwrap();
        let b = percentile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= v[0] - 1e-9 && b <= v[v.len() - 1] + 1e-9);
    }

    #[test]
    fn online_stats_match_two_pass(
        v in prop::collection::vec(-1e4f64..1e4, 1..300),
    ) {
        let mut s = OnlineStats::new();
        for &x in &v {
            s.push(x);
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-7 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    #[test]
    fn online_stats_merge_any_split(
        v in prop::collection::vec(-1e4f64..1e4, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((v.len() as f64 * split_frac) as usize).min(v.len());
        let mut whole = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in v.iter().enumerate() {
            whole.push(x);
            if i < split { a.push(x) } else { b.push(x) }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }

    #[test]
    fn histogram_conserves_counts(
        v in prop::collection::vec(-10.0f64..20.0, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(0.0, 10.0, bins);
        for &x in &v {
            h.push(x);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), v.len() as u64);
        prop_assert_eq!(h.total(), v.len() as u64);
        // fractions sum to the in-range share
        let frac_sum: f64 = h.fractions().iter().map(|(_, f)| f).sum();
        if !v.is_empty() {
            prop_assert!((frac_sum - binned as f64 / v.len() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn summary_percentiles_bracket_mean(
        v in prop::collection::vec(-1e4f64..1e4, 1..200),
    ) {
        let s = Summary::from_samples(v);
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
        prop_assert_eq!(s.percentile(0.0).unwrap(), min);
        prop_assert_eq!(s.percentile(100.0).unwrap(), max);
    }

    #[test]
    fn time_series_total_conserved(
        events in prop::collection::vec((0u64..100_000, 0.0f64..10.0), 0..200),
        width in 1u64..5_000,
    ) {
        let mut ts = TimeSeries::new(width);
        let mut total = 0.0;
        for &(c, w) in &events {
            ts.push(c, w);
            total += w;
        }
        prop_assert!((ts.total() - total).abs() < 1e-9 * (1.0 + total));
        // rates integrate back to the total
        let integrated: f64 = ts.rates().iter().map(|(_, r)| r * width as f64).sum();
        prop_assert!((integrated - total).abs() < 1e-6 * (1.0 + total));
    }
}
