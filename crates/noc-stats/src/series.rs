//! Binned time series, used for injection-rate-over-time plots
//! (paper Fig 21: flits/cycle vs time, split user/kernel).

use serde::{Deserialize, Serialize};

/// Accumulates event weights into fixed-width time bins.
///
/// A bin's *rate* is its accumulated weight divided by the bin width, so
/// pushing one unit per cycle yields a rate of 1.0 regardless of width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: u64,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// New series with the given bin width in cycles.
    ///
    /// # Panics
    /// If `bin_width == 0`.
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        Self { bin_width, bins: Vec::new() }
    }

    /// Add `weight` at time `cycle`, growing the series as needed.
    pub fn push(&mut self, cycle: u64, weight: f64) {
        let idx = (cycle / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += weight;
    }

    /// Bin width in cycles.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Number of bins currently materialized.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// `(bin_start_cycle, rate_per_cycle)` pairs.
    pub fn rates(&self) -> Vec<(u64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64 * self.bin_width, w / self.bin_width as f64))
            .collect()
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_flat() {
        let mut ts = TimeSeries::new(100);
        for c in 0..1000 {
            ts.push(c, 1.0);
        }
        let rates = ts.rates();
        assert_eq!(rates.len(), 10);
        for (_, r) in rates {
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_events_land_in_right_bin() {
        let mut ts = TimeSeries::new(10);
        ts.push(5, 2.0);
        ts.push(25, 4.0);
        let rates = ts.rates();
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[0], (0, 0.2));
        assert_eq!(rates[1], (10, 0.0));
        assert_eq!(rates[2], (20, 0.4));
        assert_eq!(ts.total(), 6.0);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(10);
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert!(ts.rates().is_empty());
        assert_eq!(ts.total(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        TimeSeries::new(0);
    }
}
