//! Fixed-width-bin histograms for latency / runtime distribution plots
//! (paper Fig 11: "% of nodes" vs average latency / runtime).

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with `bins` equal-width bins plus overflow
/// and underflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// New histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    /// If `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // guard against idx == len from floating-point edge cases
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at/above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bin_center, fraction_of_total)` pairs — the paper's Fig 11 format.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * w;
                let frac = if self.total == 0 { 0.0 } else { c as f64 / self.total as f64 };
                (center, frac)
            })
            .collect()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + i as f64 * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_correct_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_over_flow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // upper edge is exclusive
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn boundary_goes_to_lower_bin_edge_rule() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.push(0.0);
        h.push(1.0);
        h.push(3.999999);
        assert_eq!(h.counts(), &[1, 1, 0, 1]);
    }

    #[test]
    fn fractions_sum_to_inrange_share() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..8 {
            h.push(i as f64);
        }
        h.push(100.0); // overflow
        let total_frac: f64 = h.fractions().iter().map(|(_, f)| f).sum();
        assert!((total_frac - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        let f = h.fractions();
        assert_eq!(f[0].0, 1.0);
        assert_eq!(f[4].0, 9.0);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(4), 8.0);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
