//! Statistics substrate for the on-chip network evaluation framework.
//!
//! Everything the measurement harnesses need to summarize simulations:
//! streaming moments ([`OnlineStats`]), fixed-bin [`Histogram`]s,
//! exact [`percentile`]s, [`pearson`] correlation (the paper's headline
//! comparison metric), least-squares [`linear_fit`], and time-series
//! binning ([`TimeSeries`]) for injection-rate-over-time plots (Fig 21).
//!
//! The crate is dependency-light and deterministic: all estimators are
//! exact or numerically stable streaming forms (Welford), never sampled.

pub mod histogram;
pub mod online;
pub mod ratio;
pub mod series;
pub mod summary;

pub use histogram::Histogram;
pub use online::OnlineStats;
pub use ratio::Ratio;
pub use series::TimeSeries;
pub use summary::Summary;

/// Pearson product-moment correlation coefficient of two equal-length
/// samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// points, or either sample has zero variance (correlation undefined).
///
/// This is the statistic the paper reports for every scatter plot
/// (Figs 5, 8, 15, 19, 22).
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let r = noc_stats::pearson(&x, &y).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ordinary least-squares fit `y = a + b x`. Returns `(intercept, slope)`.
///
/// Returns `None` under the same degenerate conditions as [`pearson`]
/// (mismatched lengths, fewer than two points, zero variance in `x`).
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    Some((my - slope * mx, slope))
}

/// Exact percentile of a sample by linear interpolation between closest
/// ranks (the "inclusive" / NumPy `linear` definition). `p` is in `[0,100]`.
///
/// Returns `None` on an empty sample; `p` outside `[0,100]` is clamped.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Normalize a slice by its first element, the paper's convention for
/// "runtime normalized to the baseline (`t_r = 1`)" plots.
///
/// Returns an empty vector if the input is empty; panics if the baseline
/// (first element) is zero, because a zero baseline makes every
/// normalized value meaningless rather than merely degenerate.
pub fn normalize_to_first(v: &[f64]) -> Vec<f64> {
    match v.first() {
        None => Vec::new(),
        Some(&b) => {
            assert!(b != 0.0, "cannot normalize to a zero baseline");
            v.iter().map(|x| x / b).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.5 * v + 2.0).collect();
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // deterministic "noise": alternate +1/-1 around a constant
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.1, "r = {r}");
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 4.0).collect();
        let (a, b) = linear_fit(&x, &y).unwrap();
        assert!((a + 4.0).abs() < 1e-9);
        assert!((b - 2.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[9.0], 73.0), Some(9.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&v, 10.0), Some(1.0));
    }

    #[test]
    fn normalize_to_first_works() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize_to_first(&[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn normalize_zero_baseline_panics() {
        normalize_to_first(&[0.0, 1.0]);
    }
}
