//! Streaming (single-pass) moment estimation via Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance/min/max accumulator.
///
/// Used throughout the harnesses for per-packet latency so that million-
/// packet simulations never have to buffer individual samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`OnlineStats::new`]. A derived `Default` would zero-fill
/// `min`/`max`, so an accumulator built via `Default` and pushed only
/// positive samples would report `min = Some(0.0)`.
impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty (harnesses treat an empty window as zero
    /// traffic rather than NaN-poisoning downstream arithmetic).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Half-width of the 95% confidence interval on the mean (normal
    /// approximation, `1.96 * s / sqrt(n)`); 0 for fewer than two
    /// observations. Used to judge whether a steady-state measurement
    /// window was long enough.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * (self.sample_variance() / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 104729) as f64).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (m, v) = naive(&xs);
        assert!((s.mean() - m).abs() < 1e-6 * m.abs());
        assert!((s.variance() - v).abs() < 1e-6 * v.abs());
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min).into());
        assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).into());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 123 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..20 {
            small.push((i % 5) as f64);
        }
        for i in 0..2000 {
            large.push((i % 5) as f64);
        }
        assert!(small.ci95_half_width() > large.ci95_half_width());
        assert!(large.ci95_half_width() > 0.0);
        let mut one = OnlineStats::new();
        one.push(1.0);
        assert_eq!(one.ci95_half_width(), 0.0);
    }

    #[test]
    fn default_matches_new() {
        // regression: the derived Default zero-filled min/max, so a
        // Default-built accumulator reported min = Some(0.0) after
        // pushing only positive samples
        let mut s = OnlineStats::default();
        s.push(3.0);
        s.push(7.0);
        assert_eq!(s.min(), Some(3.0));
        assert_eq!(s.max(), Some(7.0));
        // and with only negative samples, max must not stick at 0.0
        let mut neg = OnlineStats::default();
        neg.push(-5.0);
        assert_eq!(neg.min(), Some(-5.0));
        assert_eq!(neg.max(), Some(-5.0));
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
        assert_eq!(s.sum(), 42.0);
    }
}
