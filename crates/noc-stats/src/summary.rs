//! Buffered sample summary: keeps raw samples so exact percentiles and
//! worst-case values (the batch model's key statistic) are available.

use serde::{Deserialize, Serialize};

use crate::{percentile, OnlineStats};

/// A sample buffer plus derived statistics.
///
/// Unlike [`OnlineStats`], this stores every observation, so use it for
/// per-node quantities (64–256 values), not per-packet quantities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
}

/// Same as [`Summary::new`]: kept manual (not derived) so the empty
/// state has a single definition, mirroring [`OnlineStats`]'s fix.
impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self { samples: Vec::new() }
    }

    /// Build from an existing sample vector.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Self { samples }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &x in &self.samples {
            s.push(x);
        }
        s.mean()
    }

    /// Maximum — the batch model's worst-case runtime statistic.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().cloned().reduce(f64::max)
    }

    /// Minimum.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().cloned().reduce(f64::min)
    }

    /// Exact percentile `p` in `[0,100]`, `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary"));
        percentile(&sorted, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(2.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn default_matches_new() {
        let mut s = Summary::default();
        assert!(s.is_empty());
        s.push(4.0);
        assert_eq!(s.min(), Some(4.0));
    }

    #[test]
    fn from_samples_roundtrip() {
        let s = Summary::from_samples(vec![5.0, 7.0]);
        assert_eq!(s.samples(), &[5.0, 7.0]);
        assert_eq!(s.mean(), 6.0);
    }
}
