//! Exact event-count ratios.
//!
//! Degradation metrics like "delivered fraction" must distinguish
//! *exactly complete* (every transfer delivered) from *almost complete*
//! (rounds to 1.0 in an `f64` display). [`Ratio`] keeps the raw
//! numerator/denominator counts so equality checks stay exact, and only
//! converts to floating point on demand.

use std::fmt;

/// An exact `num / den` event-count ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Events counted (e.g. transfers delivered).
    pub num: u64,
    /// Opportunities (e.g. transfers started).
    pub den: u64,
}

impl Ratio {
    /// Build a ratio.
    pub fn new(num: u64, den: u64) -> Self {
        Self { num, den }
    }

    /// The ratio as a float; a `0/0` ratio is vacuously `1.0` (nothing
    /// was attempted, so nothing was missed).
    pub fn fraction(&self) -> f64 {
        if self.den == 0 {
            1.0
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// Exactly complete: `num == den` (including the vacuous `0/0`).
    /// Unlike `fraction() == 1.0` this can never be a rounding artifact.
    pub fn is_complete(&self) -> bool {
        self.num == self.den
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.1}%)", self.num, self.den, self.fraction() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_completeness() {
        assert_eq!(Ratio::new(3, 4).fraction(), 0.75);
        assert!(Ratio::new(4, 4).is_complete());
        assert!(!Ratio::new(3, 4).is_complete());
        assert!(Ratio::new(0, 0).is_complete());
        assert_eq!(Ratio::new(0, 0).fraction(), 1.0);
    }

    #[test]
    fn near_complete_is_not_complete() {
        // a fraction that prints as 100.0% but is not complete
        let r = Ratio::new(99_999, 100_000);
        assert!(!r.is_complete());
        assert!(r.fraction() < 1.0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Ratio::new(1431, 1431).to_string(), "1431/1431 (100.0%)");
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2 (50.0%)");
    }
}
