//! Ablation benches for the design choices called out in DESIGN.md:
//! arbitration policy, VC count at fixed buffering, and packet-size
//! mix. Criterion measures wall time; each iteration also exercises the
//! metric of interest (the printed reproduction uses the fig binaries —
//! these benches track the *cost* of each configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use noc_closedloop::BatchConfig;
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{Arbitration, NetConfig};
use noc_traffic::{PatternKind, SizeKind};

fn bench_arbitration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_arbiter");
    g.sample_size(10);
    for (label, arb) in [("rr", Arbitration::RoundRobin), ("age", Arbitration::AgeBased)] {
        g.bench_with_input(BenchmarkId::new("batch", label), &arb, |b, &arb| {
            b.iter(|| {
                let cfg = BatchConfig {
                    net: NetConfig::baseline().with_arbitration(arb),
                    batch: 300,
                    max_outstanding: 8,
                    ..BatchConfig::default()
                };
                noc_closedloop::run_batch(&cfg).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_vc_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_vcs");
    g.sample_size(10);
    // fixed total buffering: 2 VCs x 8 flits vs 4 VCs x 4 flits
    for &(vcs, q) in &[(2usize, 8usize), (4, 4)] {
        g.bench_with_input(
            BenchmarkId::new("openloop", format!("{vcs}vc x{q}")),
            &(vcs, q),
            |b, &(vcs, q)| {
                b.iter(|| {
                    let cfg = OpenLoopConfig {
                        net: NetConfig::baseline().with_vcs(vcs).with_vc_buf(q),
                        pattern: PatternKind::Uniform,
                        size: SizeKind::Fixed(1),
                        load: 0.3,
                        warmup: 500,
                        measure: 2_000,
                        drain_max: 20_000,
                        percentiles: false,
                    };
                    noc_openloop::measure(&cfg).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_packet_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_pktsize");
    g.sample_size(10);
    let sizes = [
        ("1flit", SizeKind::Fixed(1)),
        ("bimodal", SizeKind::Bimodal { short: 1, long: 4, p_long: 0.5 }),
    ];
    for (label, size) in sizes {
        g.bench_with_input(BenchmarkId::new("openloop", label), &size, |b, size| {
            b.iter(|| {
                let cfg = OpenLoopConfig {
                    net: NetConfig::baseline(),
                    pattern: PatternKind::Uniform,
                    size: *size,
                    load: 0.25,
                    warmup: 500,
                    measure: 2_000,
                    drain_max: 20_000,
                    percentiles: false,
                };
                noc_openloop::measure(&cfg).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_arbitration, bench_vc_count, bench_packet_sizes);
criterion_main!(benches);
