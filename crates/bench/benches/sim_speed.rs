//! Simulator performance benches: cycles/second of the core engine
//! under open-loop load, batch-model runs, and execution-driven runs —
//! quantifying the paper's speed motivation ("a few minutes to simulate
//! a 64-node network" vs 88.5 hours of GEMS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use noc_closedloop::BatchConfig;
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::{PatternKind, SizeKind};

fn bench_openloop_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("openloop");
    g.sample_size(10);
    for &(k, load) in &[(8usize, 0.1f64), (8, 0.35), (16, 0.1)] {
        g.bench_with_input(
            BenchmarkId::new("mesh", format!("k={k},load={load}")),
            &(k, load),
            |b, &(k, load)| {
                b.iter(|| {
                    let cfg = OpenLoopConfig {
                        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k }),
                        pattern: PatternKind::Uniform,
                        size: SizeKind::Fixed(1),
                        load,
                        warmup: 500,
                        measure: 2_000,
                        drain_max: 20_000,
                        percentiles: false,
                    };
                    noc_openloop::measure(&cfg).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_batch_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch");
    g.sample_size(10);
    for &m in &[1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            b.iter(|| {
                let cfg = BatchConfig {
                    net: NetConfig::baseline(),
                    batch: 300,
                    max_outstanding: m,
                    ..BatchConfig::default()
                };
                noc_closedloop::run_batch(&cfg).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sweep_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let base = OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }),
        pattern: PatternKind::Uniform,
        size: SizeKind::Fixed(1),
        load: 0.1,
        warmup: 500,
        measure: 2_000,
        drain_max: 20_000,
        percentiles: false,
    };
    let loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    // the parallel grid engine vs its serial twin: on a multi-core host
    // the ratio shows the fan-out win, on one core the engine overhead
    g.bench_function("grid-6pt", |b| b.iter(|| noc_openloop::sweep(&base, &loads)));
    g.bench_function("serial-6pt", |b| b.iter(|| noc_openloop::sweep_serial(&base, &loads)));
    g.finish();
}

fn bench_cmp_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cmp");
    g.sample_size(10);
    let profile = noc_workloads::all_benchmarks()[0];
    g.bench_function("blackscholes-10k", |b| {
        b.iter(|| {
            let cfg = cmp_sim::CmpConfig::table2(profile).with_instructions(10_000).with_os(false);
            cmp_sim::run_cmp(&cfg).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_openloop_step, bench_batch_run, bench_sweep_grid, bench_cmp_run);
criterion_main!(benches);
