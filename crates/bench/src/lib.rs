//! # noc-bench — benchmark harness
//!
//! One binary per paper table/figure (`fig01`..`fig22`, `table1`..
//! `table4`), an umbrella `repro` binary that regenerates everything,
//! and criterion performance benches (`sim_speed`, `ablations`).
//!
//! Every binary accepts an effort argument: `quick` (seconds, CI-sized)
//! or `paper` (the default; the full reproduction scale).

use noc_eval::Effort;

/// Parse the effort from `argv[1]`, defaulting to `paper`.
pub fn effort_from_args() -> Effort {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "paper".to_string());
    Effort::parse(&arg).unwrap_or_else(|| {
        eprintln!("unknown effort `{arg}`, expected quick|paper; using paper");
        Effort::paper()
    })
}
