//! Prints Table I: simulation parameter space.
fn main() {
    print!("{}", noc_eval::figures::table1());
}
