//! Regenerates Fig 3: open-loop router delay and buffer size sweeps.
fn main() {
    let e = noc_bench::effort_from_args();
    let f = noc_eval::figures::fig03(&e);
    print!("{}", f.render());
    println!("zero-load ratios vs tr=1: {:?}", f.zero_load_ratios());
}
