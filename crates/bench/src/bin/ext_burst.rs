//! Extension: bursty (on/off) vs Bernoulli injection.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_burst(&e).render());
}
