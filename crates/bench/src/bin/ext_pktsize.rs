//! Extension: packet-size robustness of the batch comparison.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_pktsize(&e).render());
}
