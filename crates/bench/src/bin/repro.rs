//! Regenerates every table and figure of the paper in order, printing
//! each as it completes (with wall-clock timings).
//!
//! Usage: `cargo run --release -p noc-bench --bin repro -- [quick|paper]`

use std::time::Instant;

fn timed(name: &str, f: impl FnOnce() -> String) {
    let start = Instant::now();
    let body = f();
    println!("{body}");
    println!("[{name}: {:.1}s]\n", start.elapsed().as_secs_f64());
}

fn main() {
    let e = noc_bench::effort_from_args();
    let total = Instant::now();

    // Prove the sweep's network configurations deadlock-free before
    // spending hours simulating them.
    timed("verify", || {
        use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};
        let configs = [
            NetConfig::baseline(),
            NetConfig::baseline().with_topology(TopologyKind::FoldedTorus2D { k: 8 }),
            NetConfig::baseline().with_topology(TopologyKind::Ring { n: 64 }),
            NetConfig::baseline().with_routing(RoutingKind::Valiant).with_vcs(2),
            NetConfig::baseline().with_routing(RoutingKind::Romm).with_vcs(2),
            NetConfig::baseline().with_routing(RoutingKind::MinAdaptive).with_vcs(2),
        ];
        // static analysis per config is independent — fan it out
        noc_exp::run_grid(&configs, |_, c| noc_verify::verify(c).one_line()).join("\n")
    });

    timed("table1", noc_eval::figures::table1);
    timed("table2", noc_eval::figures::table2);
    timed("fig01", || noc_eval::figures::fig01(&e).render());
    timed("fig02", || noc_eval::figures::fig02(&e).render());
    timed("fig03", || {
        let f = noc_eval::figures::fig03(&e);
        format!("{}zero-load ratios vs tr=1: {:?}", f.render(), f.zero_load_ratios())
    });
    timed("fig04", || noc_eval::figures::fig04(&e).render());
    timed("fig05", || noc_eval::figures::fig05(&e).render());
    timed("fig06", || {
        format!(
            "{}{}",
            noc_eval::figures::fig06a(&e).render(),
            noc_eval::figures::fig06b(&e).render()
        )
    });
    timed("fig07", || noc_eval::figures::fig07(&e).render());
    timed("fig08", || noc_eval::figures::fig08(&e).render());
    timed("fig09", || noc_eval::figures::fig09(&e).render());
    timed("fig10", || {
        let f = noc_eval::figures::fig10(&e);
        format!(
            "{}VAL/DOR at m=1 transpose: {:.3} (paper: ~1.017)",
            f.render(),
            f.val_over_dor_transpose_m1()
        )
    });
    timed("fig11", || noc_eval::figures::fig11(&e).render());
    timed("fig12", || noc_eval::figures::fig12().render());
    timed("fig13", || noc_eval::figures::fig13(&e).render());
    timed("fig14", || noc_eval::figures::fig14(&e).render());
    timed("fig15", || {
        let f = noc_eval::figures::fig15(&e);
        format!("== Fig 15 == r = {:.4} (paper 0.829)", f.r.unwrap_or(f64::NAN))
    });
    timed("fig16", || noc_eval::figures::fig16(&e).render());
    timed("fig17", || noc_eval::figures::fig17(&e).render());
    timed("fig18/19", || {
        let f = noc_eval::figures::fig19(&e);
        let mut out = f.render();
        for (label, r) in f.correlations() {
            out.push_str(&format!("{label:<12} r = {r:.4}\n"));
        }
        out
    });
    timed("fig20", || noc_eval::figures::fig20(&e).render());
    timed("fig21", || noc_eval::figures::fig21(&e).render());
    timed("fig22", || noc_eval::figures::fig22(&e).render());
    timed("table3", || noc_eval::figures::table3(&e).render());
    timed("table4", noc_eval::figures::table4);
    timed("ext_pktsize", || noc_eval::figures::ext_pktsize(&e).render());
    timed("ext_scale256", || noc_eval::figures::ext_scale256(&e).render());
    timed("ext_arbitration", || noc_eval::figures::ext_arbitration(&e).render());
    timed("ext_barrier", || noc_eval::figures::ext_barrier(&e).render());
    timed("ext_burst", || noc_eval::figures::ext_burst(&e).render());
    timed("ext_trace", || noc_eval::figures::ext_trace(&e).render());
    timed("ext_bottleneck", || noc_eval::figures::ext_bottleneck(&e).render());
    timed("metrics", || noc_eval::figures::metrics_showcase(&e).render());
    timed("analytic", || {
        let study = noc_eval::analytic_study(&noc_eval::default_cases(), &e, 300.0)
            .expect("default analytic cases are valid configurations");
        study.render()
    });
    timed("sim_speed", || noc_eval::figures::sim_speed(&e));

    println!("[total: {:.1}s]", total.elapsed().as_secs_f64());
}
