//! Regenerates Fig 7: per-node runtime maps on mesh and torus.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig07(&e).render());
}
