//! Regenerates Fig 1: the canonical latency vs offered traffic curve.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig01(&e).render());
}
