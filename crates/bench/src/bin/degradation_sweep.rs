//! Graceful-degradation curve: delivered fraction, retransmissions,
//! and post-fault latency/throughput vs. number of failed links on the
//! 8x8 mesh (4x4 under `quick`), uniform traffic at moderate load.
//!
//! Each point runs through the crash-proof grid: a panicking or
//! non-settling fault scenario is reported in place, never able to
//! poison the rest of the curve. Output is byte-identical across runs
//! and thread counts for a fixed effort (`NOC_THREADS=1` vs default
//! prints the same table).
use noc_fault::{degradation_sweep, DegradationConfig};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};

fn main() {
    let e = noc_bench::effort_from_args();
    let quick = e.warmup < 5_000;
    let k = if quick { 4 } else { 8 };
    let base = OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k }),
        load: 0.15,
        warmup: e.warmup,
        measure: e.measure,
        drain_max: e.drain,
        ..OpenLoopConfig::default()
    };
    let max_links = if quick { 4 } else { 8 };
    let cfg = DegradationConfig::new(base, max_links);

    println!("== graceful degradation: {k}x{k} mesh, uniform, load 0.15 ==");
    println!("links  delivered            retx     abandoned  dropped  latency   thruput");
    for outcome in degradation_sweep(&cfg) {
        match outcome {
            noc_exp::PointOutcome::Ok(p) => println!(
                "{:<6} {:<20} {:<8} {:<10} {:<8} {:<9.2} {:.4}",
                p.failed_links,
                p.delivered.to_string(),
                p.retransmissions,
                p.abandoned,
                p.packets_dropped,
                p.avg_latency,
                p.throughput
            ),
            noc_exp::PointOutcome::Panicked { message } => println!("point PANICKED: {message}"),
            noc_exp::PointOutcome::Diverged { budget } => {
                println!("point DIVERGED (budget {budget} cycles)")
            }
        }
    }
}
