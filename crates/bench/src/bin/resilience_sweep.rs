//! Resilience curve: availability, delivered fraction, and recovery
//! latency vs. link MTBF under intermittent fault-and-repair
//! timelines on the 8x8 mesh (4x4 under `quick`), with one table per
//! recovery mode — none, end-to-end retransmission, link-level retry,
//! and both combined — over identical traffic and flap seeds.
//!
//! Each point runs through the crash-proof grid: a panicking or
//! non-settling scenario is reported in place, never able to poison
//! the rest of the curve. Output is byte-identical across runs and
//! thread counts for a fixed effort (`NOC_THREADS=1` vs default
//! prints the same table).
use noc_fault::{resilience_sweep, RecoveryMode, ResilienceConfig};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};

fn main() {
    let e = noc_bench::effort_from_args();
    let quick = e.warmup < 5_000;
    let k = if quick { 4 } else { 8 };
    let base = OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k }),
        load: 0.1,
        warmup: e.warmup,
        measure: e.measure,
        drain_max: e.drain,
        ..OpenLoopConfig::default()
    };
    let horizon = base.warmup + base.measure;
    let steps = if quick { 3u64 } else { 6 };
    let axis: Vec<(u64, u64)> = (1..=steps)
        .map(|i| {
            let mtbf = (horizon / 10 * i).max(8);
            (mtbf, (mtbf / 8).max(1))
        })
        .collect();

    println!("== resilience: {k}x{k} mesh, uniform, load 0.1, flapping links ==");
    for mode in RecoveryMode::ALL {
        let cfg = ResilienceConfig::new(base.clone(), axis.clone()).with_recovery(mode);
        println!("-- recovery: {} --", mode.label());
        println!(
            "mtbf    mttr   avail    delivered        retx     replays  epochs  recovery  latency"
        );
        for outcome in resilience_sweep(&cfg) {
            match outcome {
                noc_exp::PointOutcome::Ok(p) => println!(
                    "{:<7} {:<6} {:.4}   {:<16} {:<8} {:<8} {:<7} {:<9} {:.2}",
                    p.mtbf,
                    p.mttr,
                    p.availability,
                    p.delivered.to_string(),
                    p.retransmissions,
                    p.link_replays,
                    p.epochs,
                    p.recovery_cycles,
                    p.avg_latency
                ),
                noc_exp::PointOutcome::Panicked { message } => {
                    println!("point PANICKED: {message}")
                }
                noc_exp::PointOutcome::Diverged { budget } => {
                    println!("point DIVERGED (budget {budget} cycles)")
                }
            }
        }
    }
}
