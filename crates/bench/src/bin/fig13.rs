//! Regenerates Fig 13: lu communication matrices (app-level vs actual).
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig13(&e).render());
}
