//! Extension: barrier model vs open-loop saturation.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_barrier(&e).render());
}
