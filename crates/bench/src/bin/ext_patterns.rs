//! Extension: the paper's remaining Table I traffic patterns — "other
//! traffic patterns including bit reversal and bit complement were
//! simulated but follow a similar trend" (Section III-D). This binary
//! runs the routing comparison under those patterns so the claim is
//! checkable rather than taken on faith.

use noc_closedloop::BatchConfig;
use noc_sim::config::{NetConfig, RoutingKind};
use noc_traffic::PatternKind;

fn main() {
    let e = noc_bench::effort_from_args();
    println!("== Ext: bit-reversal / bit-complement routing comparison (batch) ==");
    println!("{:<10} {:<9} {:<6} {:>10} {:>9}", "pattern", "routing", "m", "runtime", "theta");
    for pattern in [PatternKind::BitReversal, PatternKind::BitComplement] {
        for routing in
            [RoutingKind::Dor, RoutingKind::MinAdaptive, RoutingKind::Romm, RoutingKind::Valiant]
        {
            for m in [1usize, 32] {
                let cfg = BatchConfig {
                    net: NetConfig::baseline().with_routing(routing).with_vcs(4),
                    pattern,
                    batch: e.batch,
                    max_outstanding: m,
                    ..BatchConfig::default()
                };
                let r = noc_closedloop::run_batch(&cfg).expect("valid config");
                println!(
                    "{:<10} {:<9?} {:<6} {:>10} {:>9.4}",
                    pattern.name(),
                    routing,
                    m,
                    r.runtime,
                    r.throughput
                );
            }
        }
    }
    println!("\nexpected: same story as transpose (Fig 10) — load-balanced routing");
    println!("wins on throughput at high m; worst-case m=1 runtimes stay close.");
}
