//! Extension: round-robin vs age-based arbitration ablation.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_arbitration(&e).render());
}
