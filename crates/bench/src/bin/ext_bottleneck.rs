//! Extension: saturation bottleneck analysis via pipeline counters.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_bottleneck(&e).render());
}
