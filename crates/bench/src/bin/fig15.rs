//! Regenerates Fig 15: exec-driven vs plain batch correlation.
fn main() {
    let e = noc_bench::effort_from_args();
    let o = noc_eval::figures::fig15(&e);
    println!("== Fig 15: exec-driven vs plain batch ==");
    println!("r = {:.4} (paper: 0.829)", o.r.unwrap_or(f64::NAN));
    for p in &o.points {
        println!(
            "{:<14} tr={} exec={:.3} batch={:.3}",
            p.benchmark, p.tr, p.cmp_norm, p.batch_norm
        );
    }
}
