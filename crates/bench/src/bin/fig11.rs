//! Regenerates Fig 11: per-node latency/runtime distributions, DOR vs VAL.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig11(&e).render());
}
