//! `explore` — interactive design-space exploration from the command
//! line: pick a topology/routing/router configuration and a workload,
//! get both the open-loop (network) and batch (system) views.
//!
//! ```text
//! cargo run --release -p noc-bench --bin explore -- \
//!     --topology mesh8 --routing dor --vcs 2 --buf 4 --tr 1 \
//!     --pattern uniform --load 0.2 --batch 1000 --m 4
//! ```
//!
//! Every flag has a baseline default, so `explore` with no arguments
//! reproduces the paper's Table I bold row.

use noc_closedloop::BatchConfig;
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{Arbitration, NetConfig, RoutingKind, TopologyKind};
use noc_traffic::{PatternKind, SizeKind};

struct Args {
    net: NetConfig,
    pattern: PatternKind,
    size: SizeKind,
    load: f64,
    batch: u64,
    m: usize,
    metrics_out: Option<String>,
    analytic: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut net = NetConfig::baseline();
    let mut pattern = PatternKind::Uniform;
    let mut size = SizeKind::Fixed(1);
    let mut load = 0.2f64;
    let mut batch = 1000u64;
    let mut m = 4usize;
    let mut metrics_out = None;
    let mut analytic = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--analytic" {
            analytic = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--topology" => {
                net.topology = match val.as_str() {
                    "mesh8" => TopologyKind::Mesh2D { k: 8 },
                    "mesh16" => TopologyKind::Mesh2D { k: 16 },
                    "mesh4" => TopologyKind::Mesh2D { k: 4 },
                    "torus8" => TopologyKind::FoldedTorus2D { k: 8 },
                    "ring64" => TopologyKind::Ring { n: 64 },
                    other => return Err(format!("unknown topology `{other}`")),
                }
            }
            "--routing" => {
                net.routing = match val.as_str() {
                    "dor" => RoutingKind::Dor,
                    "val" => RoutingKind::Valiant,
                    "romm" => RoutingKind::Romm,
                    "ma" => RoutingKind::MinAdaptive,
                    other => return Err(format!("unknown routing `{other}`")),
                }
            }
            "--vcs" => net.vcs = val.parse().map_err(|e| format!("--vcs: {e}"))?,
            "--buf" => net.vc_buf = val.parse().map_err(|e| format!("--buf: {e}"))?,
            "--tr" => net.router_delay = val.parse().map_err(|e| format!("--tr: {e}"))?,
            "--arb" => {
                net.arbitration = match val.as_str() {
                    "rr" => Arbitration::RoundRobin,
                    "age" => Arbitration::AgeBased,
                    other => return Err(format!("unknown arbitration `{other}`")),
                }
            }
            "--seed" => net.seed = val.parse().map_err(|e| format!("--seed: {e}"))?,
            "--pattern" => {
                pattern = match val.as_str() {
                    "uniform" => PatternKind::Uniform,
                    "transpose" => PatternKind::Transpose,
                    "bitcomp" => PatternKind::BitComplement,
                    "bitrev" => PatternKind::BitReversal,
                    "shuffle" => PatternKind::Shuffle,
                    "tornado" => PatternKind::Tornado,
                    "neighbor" => PatternKind::Neighbor,
                    other => return Err(format!("unknown pattern `{other}`")),
                }
            }
            "--size" => {
                size = match val.as_str() {
                    "1" => SizeKind::Fixed(1),
                    "bimodal" => SizeKind::Bimodal { short: 1, long: 4, p_long: 0.5 },
                    other => SizeKind::Fixed(other.parse().map_err(|e| format!("--size: {e}"))?),
                }
            }
            "--load" => load = val.parse().map_err(|e| format!("--load: {e}"))?,
            "--batch" => batch = val.parse().map_err(|e| format!("--batch: {e}"))?,
            "--m" => m = val.parse().map_err(|e| format!("--m: {e}"))?,
            "--metrics" => {
                net = net.with_metrics(val.parse().map_err(|e| format!("--metrics: {e}"))?)
            }
            "--metrics-out" => metrics_out = Some(val.clone()),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if metrics_out.is_some() && net.metrics.is_none() {
        // writing a metrics file implies collecting metrics
        net = net.with_metrics(noc_sim::metrics::DEFAULT_BIN_WIDTH);
    }
    Ok(Args { net, pattern, size, load, batch, m, metrics_out, analytic })
}

/// Write the `noc-eval/metrics/v1` JSON, then read it back and
/// validate it against the schema and the live engine's flit ledger —
/// so `--metrics-out` doubles as an end-to-end smoke test of the
/// export path (CI runs exactly this).
fn export_metrics(snap: &noc_sim::MetricsSnapshot, path: &str) -> Result<(), String> {
    let json = noc_eval::figures::metrics_to_json(snap);
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read back {path}: {e}"))?;
    noc_eval::figures::validate_metrics_json(&text, Some(snap.link_flits))?;
    Ok(())
}

fn main() {
    let Args { net, pattern, size, load, batch, m, metrics_out, analytic } = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "flags: --topology mesh4|mesh8|mesh16|torus8|ring64  --routing dor|val|romm|ma"
            );
            eprintln!("       --vcs N --buf N --tr N --arb rr|age --seed N");
            eprintln!("       --pattern uniform|transpose|bitcomp|bitrev|shuffle|tornado|neighbor");
            eprintln!("       --size 1|N|bimodal --load F --batch N --m N");
            eprintln!("       --metrics BIN_WIDTH --metrics-out FILE.json --analytic");
            std::process::exit(2);
        }
    };

    if let Err(e) = net.validate() {
        eprintln!("invalid network configuration: {e}");
        // The full report explains *why* — including a concrete CDG
        // cycle witness when the configuration can deadlock.
        eprintln!("{}", noc_verify::verify(&net));
        std::process::exit(2);
    }
    println!("{}", noc_verify::verify(&net).one_line());
    let topo = net.topology.build();
    println!(
        "network: {} | {:?} routing | {} VCs x {} flits | tr={} | {:?}",
        topo.name(),
        net.routing,
        net.vcs,
        net.vc_buf,
        net.router_delay,
        net.arbitration
    );
    println!(
        "workload: {} pattern, {:?} packets\n",
        match pattern {
            PatternKind::Hotspot { .. } => "hotspot",
            other => other.name(),
        },
        size
    );

    // Static analysis first: route enumeration plus the queueing model
    // need no simulation, so the analytic view prints immediately.
    let report = if analytic {
        match noc_analytic::analyze(&net, pattern, size, load) {
            Ok(rep) => {
                println!("{}", rep.one_line());
                for f in &rep.findings {
                    println!("  [{}] {}: {}", f.severity, f.check, f.message);
                }
                println!("\n{}", noc_eval::load_heatmap(&rep.model));
                Some(rep)
            }
            Err(e) => {
                eprintln!("analytic model failed: {e}");
                None
            }
        }
    } else {
        None
    };
    let analytic_net = net.clone();

    // the open-loop and batch views are independent simulations — run
    // them on both cores
    let open_net = net.clone();
    let (open, closed) = noc_exp::join(
        move || {
            noc_openloop::measure(&OpenLoopConfig {
                net: open_net,
                pattern,
                size,
                load,
                ..OpenLoopConfig::default()
            })
        },
        move || {
            noc_closedloop::run_batch(&BatchConfig {
                net,
                pattern,
                batch,
                max_outstanding: m,
                ..BatchConfig::default()
            })
        },
    );
    match open {
        Ok(r) => {
            println!("open-loop @ {load} flits/cycle/node:");
            println!("  avg latency     {:.1} cycles", r.avg_latency);
            println!("  worst-node avg  {:.1} cycles", r.worst_node_latency);
            println!("  throughput      {:.4} flits/cycle/node", r.throughput);
            println!("  stable          {}", r.stable);
            if let Some(snap) = &r.metrics {
                println!("\n{}", noc_eval::figures::metrics_report("open-loop run", snap));
                if let Some(path) = &metrics_out {
                    if let Err(e) = export_metrics(snap, path) {
                        eprintln!("metrics export failed: {e}");
                        std::process::exit(1);
                    }
                    println!("metrics written to {path} (schema validated, flits conserved)");
                }
            }
        }
        Err(e) => println!("open-loop failed: {e}"),
    }

    // closed-loop view
    match closed {
        Ok(r) => {
            println!("\nbatch model (b={batch}, m={m}):");
            println!("  runtime         {} cycles", r.runtime);
            println!("  normalized      {:.2} cycles/op", r.normalized_runtime);
            println!("  throughput      {:.4} flits/cycle/node", r.throughput);
            let best = *r.per_node_runtime.iter().min().unwrap_or(&1) as f64;
            let worst = *r.per_node_runtime.iter().max().unwrap_or(&1) as f64;
            println!("  node spread     {:.2}x", worst / best.max(1.0));
        }
        Err(e) => println!("batch model failed: {e}"),
    }

    // Predicted-vs-measured overlay: a short open-loop sweep up to just
    // past the predicted saturation point, plotted against the model's
    // latency curve.
    if let Some(rep) = &report {
        let sat = rep.model.effective_saturation.min(1.0);
        let loads: Vec<f64> = (1..=6).map(|i| 1.15 * sat * i as f64 / 6.0).collect();
        let points = noc_openloop::sweep(
            &OpenLoopConfig { net: analytic_net, pattern, size, ..OpenLoopConfig::default() },
            &loads,
        );
        println!(
            "\n{}",
            noc_eval::analytic_overlay(
                "predicted vs measured latency (cycles)",
                &rep.model,
                &points
            )
        );
    }
}
