//! Regenerates Table III: NAR measured under the ideal network.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::table3(&e).render());
}
