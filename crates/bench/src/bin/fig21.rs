//! Regenerates Fig 21: blackscholes injection rate over time.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig21(&e).render());
}
