//! Thread-scaling harness: times the same fixed open-loop grid at 1, 2,
//! 4, and 8 worker threads (forced via `NOC_THREADS`) and emits a
//! `noc-eval/scalability/v1` JSON report (`BENCH_scalability.json`, or
//! `BENCH_JSON` to redirect; empty string disables).
//!
//! Grid points are evaluated through [`noc_exp::run_grid`], the same
//! work-stealing pool every sweep figure uses, so the curve measures
//! the engine users actually run. Point results must be bit-identical
//! across thread counts (the parallel==serial guarantee); the bin exits
//! nonzero if any thread count disagrees with the serial results.
//!
//! Shared CI runners are noisy and may have fewer than 8 hardware
//! threads, so the report records — it does not gate. CI runs it
//! next to `sim_speed` in the non-blocking bench-smoke job.

use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};

/// Thread counts swept, in run order. Serial first: its results are the
/// reference the parallel runs are checked against.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Fingerprint of one grid point's result, folded over the fields that
/// a scheduling difference could plausibly corrupt.
fn fingerprint(r: &noc_openloop::OpenLoopResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        r.avg_latency.to_bits(),
        r.throughput.to_bits(),
        r.measured_packets,
        r.cycles,
        r.worst_node_latency.to_bits(),
    ] {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let e = noc_bench::effort_from_args();
    // 16 independent points (4 loads x 4 seeds) on the baseline mesh:
    // enough work to occupy 8 workers, small enough for CI smoke
    let loads = [0.05, 0.15, 0.25, 0.35];
    let points: Vec<OpenLoopConfig> = loads
        .iter()
        .flat_map(|&load| {
            (0..4).map(move |s| OpenLoopConfig {
                net: NetConfig::baseline()
                    .with_topology(TopologyKind::Mesh2D { k: 8 })
                    .with_seed(noc_exp::derive_seed(0x5ca1_ab17, s)),
                load,
                warmup: e.warmup,
                measure: e.measure,
                drain_max: e.drain,
                ..OpenLoopConfig::default()
            })
        })
        .collect();

    let mut serial_prints: Vec<u64> = Vec::new();
    let mut entries: Vec<(usize, f64, f64)> = Vec::new(); // (threads, wall, speedup)
    let mut identical = true;
    let mut serial_wall = 0.0f64;
    for &t in THREADS {
        std::env::set_var("NOC_THREADS", t.to_string());
        let start = std::time::Instant::now();
        let results = noc_exp::run_grid(&points, |_, cfg| {
            noc_openloop::measure(cfg).expect("valid scalability grid config")
        });
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let prints: Vec<u64> = results.iter().map(fingerprint).collect();
        if t == 1 {
            serial_prints = prints;
            serial_wall = wall;
        } else if prints != serial_prints {
            eprintln!("scalability: results at {t} threads differ from serial");
            identical = false;
        }
        entries.push((t, wall, serial_wall / wall));
        println!(
            "{t} threads: {:.2}s for {} points ({:.2}x vs serial)",
            wall,
            points.len(),
            serial_wall / wall
        );
    }

    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_scalability.json".into());
    if !path.is_empty() {
        let mut out = String::from("{\n  \"schema\": \"noc-eval/scalability/v1\",\n");
        out.push_str(&format!(
            "  \"points\": {},\n  \"host_parallelism\": {},\n  \"identical_results\": {},\n  \"entries\": [\n",
            points.len(),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            identical
        ));
        for (i, (t, wall, speedup)) in entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {t}, \"wall_s\": {wall:.4}, \"speedup_vs_serial\": {speedup:.3}}}{}\n",
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => eprintln!("could not write {path}: {err}"),
        }
    }
    if !identical {
        std::process::exit(1);
    }
}
