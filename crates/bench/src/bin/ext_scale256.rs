//! Extension: 256-node (16x16 mesh) scale check.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_scale256(&e).render());
}
