//! Regenerates Fig 4: batch-model router delay and buffer size sweeps.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig04(&e).render());
}
