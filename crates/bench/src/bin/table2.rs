//! Prints Table II: CMP parameters.
fn main() {
    print!("{}", noc_eval::figures::table2());
}
