//! Regenerates Fig 6: topology comparison, open-loop (a) + batch (b).
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig06a(&e).render());
    print!("{}", noc_eval::figures::fig06b(&e).render());
}
