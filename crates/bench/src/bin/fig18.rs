//! Regenerates Fig 18/19: extended batch models vs exec-driven.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig19(&e).render());
}
