//! Regenerates Fig 12: example DOR and VAL routes.
fn main() {
    print!("{}", noc_eval::figures::fig12().render());
}
