//! Regenerates Fig 19: correlation of extended batch models (same data
//! as fig18, correlation summary only).
fn main() {
    let e = noc_bench::effort_from_args();
    let f = noc_eval::figures::fig19(&e);
    println!("== Fig 19: correlations ==");
    for (label, r) in f.correlations() {
        println!("{label:<12} r = {r:.4}");
    }
    println!("(paper: BA 0.829; extended models improve, BA_inj+re before OS modeling)");
}
