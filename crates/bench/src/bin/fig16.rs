//! Regenerates Fig 16: the NAR-enhanced injection model.
fn main() {
    let e = noc_bench::effort_from_args();
    let f = noc_eval::figures::fig16(&e);
    print!("{}", f.render());
    let (lo, hi) = f.tr4_sensitivity();
    println!("tr=4 runtime penalty at NAR=0.04: {lo:.3}x; at NAR=1.0: {hi:.3}x");
}
