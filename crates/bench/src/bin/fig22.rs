//! Regenerates Fig 22: correlation with/without OS modeling.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig22(&e).render());
}
