//! Regenerates Fig 10: routing algorithms, batch model.
fn main() {
    let e = noc_bench::effort_from_args();
    let f = noc_eval::figures::fig10(&e);
    print!("{}", f.render());
    println!("VAL/DOR runtime at m=1 under transpose: {:.3}", f.val_over_dor_transpose_m1());
}
