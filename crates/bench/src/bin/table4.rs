//! Prints Table IV: benchmark characteristics.
fn main() {
    print!("{}", noc_eval::figures::table4());
}
