//! Regenerates Fig 20: user vs kernel injection split.
fn main() {
    let e = noc_bench::effort_from_args();
    let f = noc_eval::figures::fig20(&e);
    print!("{}", f.render());
    println!(
        "kernel share: 75 MHz {:.0}%, 3 GHz {:.0}%",
        f.kernel_fraction("75 MHz") * 100.0,
        f.kernel_fraction("3 GHz") * 100.0
    );
}
