//! Regenerates Fig 8: topology correlation via worst-case latency.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig08(&e).render());
}
