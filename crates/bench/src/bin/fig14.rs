//! Regenerates Fig 14: normalized runtime vs router delay per benchmark.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig14(&e).render());
}
