//! `analytic_smoke` — the CI gate for the static analytic model: runs
//! the `noc-analytic` vs `noc-sim` cross-validation study on the
//! default certified case set and fails (exit 1) when the model's
//! saturation predictions drift from the simulator — low correlation or
//! a per-case relative error beyond the model's accuracy contract.
//!
//! Usage: `cargo run --release -p noc-bench --bin analytic_smoke -- [quick|paper]`

/// The model's accuracy contract on certified DOR configurations.
const MAX_REL_ERR: f64 = 0.15;
/// Predicted and measured saturations must rank the cases identically
/// for grid pruning to be trustworthy; anything below this correlation
/// means a regime constant has drifted.
const MIN_R: f64 = 0.95;

fn main() {
    let mut effort = noc_bench::effort_from_args();
    // The 15% contract was calibrated with these measurement windows;
    // `quick`'s shorter windows systematically inflate the measured
    // saturation of permutation patterns, so enforce them as a floor.
    effort.warmup = effort.warmup.max(3_000);
    effort.measure = effort.measure.max(8_000);
    effort.drain = effort.drain.max(50_000);
    let cases = noc_eval::default_cases();
    let study = noc_eval::analytic_study(&cases, &effort, 300.0)
        .expect("default analytic cases are valid configurations");
    print!("{}", study.render());

    // The JSON export must survive its own parser (the same contract CI
    // enforces for the metrics schema).
    let json = noc_eval::analytic_to_json(&study);
    let parsed = match noc_eval::parse_analytic_json(&json) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: {} export does not re-parse: {e}", noc_eval::ANALYTIC_SCHEMA);
            std::process::exit(1);
        }
    };
    if parsed.points.len() != study.points.len() {
        eprintln!(
            "FAIL: round trip lost points ({} -> {})",
            study.points.len(),
            parsed.points.len()
        );
        std::process::exit(1);
    }

    let mut failed = false;
    for p in study.points.iter().filter(|p| p.certified && p.rel_err > MAX_REL_ERR) {
        eprintln!(
            "FAIL: {} predicted {:.4} vs measured [{:.4}, {:.4}] — rel err {:.1}% > {:.0}%",
            p.label,
            p.predicted,
            p.measured_lo,
            p.measured_hi,
            100.0 * p.rel_err,
            100.0 * MAX_REL_ERR
        );
        failed = true;
    }
    match study.r {
        Some(r) if r >= MIN_R => {}
        Some(r) => {
            eprintln!("FAIL: predicted-vs-measured correlation r = {r:.4} < {MIN_R}");
            failed = true;
        }
        None => {
            eprintln!("FAIL: correlation undefined (degenerate study)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "analytic smoke OK: {} cases, max rel err {:.1}%, r = {}",
        study.points.len(),
        100.0 * study.max_rel_err,
        study.r.map(|r| format!("{r:.4}")).unwrap_or_else(|| "n/a".into()),
    );
}
