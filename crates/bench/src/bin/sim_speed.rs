//! Reports simulator speed (the paper's "minutes vs 88.5 hours" claim)
//! and writes the machine-readable `BENCH_sim_speed.json` used by CI
//! and by the perf-tracking workflow (see README "Performance
//! tracking").
//!
//! Set `BENCH_JSON=path` to redirect the JSON (empty string disables).
//! Set `BENCH_BASELINE=path` to compare against a previous
//! `BENCH_sim_speed.json` instead of the pinned in-tree baseline; a
//! missing or unrecognized baseline file degrades to "no baseline"
//! (the fresh JSON is still written so the next run has one).
use noc_eval::figures::SpeedBaseline;

fn main() {
    let e = noc_bench::effort_from_args();
    let baseline = SpeedBaseline::from_env();
    if let SpeedBaseline::Missing { why } = &baseline {
        eprintln!("sim_speed: no baseline ({why}); reporting raw numbers");
    }
    let report = noc_eval::figures::sim_speed_report(&e);
    print!("{}", report.render_vs(&baseline));
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_sim_speed.json".into());
    if path.is_empty() {
        return;
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
