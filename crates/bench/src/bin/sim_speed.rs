//! Reports simulator speed (the paper's "minutes vs 88.5 hours" claim)
//! and writes the machine-readable `BENCH_sim_speed.json` used by CI
//! and by the perf-tracking workflow (see README "Performance
//! tracking").
//!
//! Set `BENCH_JSON=path` to redirect the JSON (empty string disables).
//! Set `BENCH_BASELINE=path` to compare against a previous
//! `BENCH_sim_speed.json` instead of the pinned in-tree baseline; a
//! missing or unrecognized baseline file degrades to "no baseline"
//! (the fresh JSON is still written so the next run has one).
//!
//! Exits nonzero when the emitted report is missing any tracked
//! workload (`TRACKED_WORKLOADS`): a dropped workload would silently
//! truncate the perf trajectory CI records across runs.
use noc_eval::figures::{SpeedBaseline, TRACKED_WORKLOADS};

fn main() {
    let e = noc_bench::effort_from_args();
    let baseline = SpeedBaseline::from_env();
    if let SpeedBaseline::Missing { why } = &baseline {
        eprintln!("sim_speed: no baseline ({why}); reporting raw numbers");
    }
    let report = noc_eval::figures::sim_speed_report(&e);
    print!("{}", report.render_vs(&baseline));
    let missing: Vec<&str> = TRACKED_WORKLOADS
        .iter()
        .copied()
        .filter(|w| !report.entries.iter().any(|e| e.name == *w))
        .collect();
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_sim_speed.json".into());
    if !path.is_empty() {
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if !missing.is_empty() {
        eprintln!("sim_speed: tracked workload(s) missing from report: {}", missing.join(", "));
        std::process::exit(1);
    }
}
