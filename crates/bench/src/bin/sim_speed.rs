//! Reports simulator speed (the paper's "minutes vs 88.5 hours" claim)
//! and writes the machine-readable `BENCH_sim_speed.json` used by CI
//! and by the perf-tracking workflow (see README "Performance
//! tracking").
//!
//! Set `BENCH_JSON=path` to redirect the JSON (empty string disables).
fn main() {
    let e = noc_bench::effort_from_args();
    let report = noc_eval::figures::sim_speed_report(&e);
    print!("{}", report.render());
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_sim_speed.json".into());
    if path.is_empty() {
        return;
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
