//! Reports simulator speed (the paper's "minutes vs 88.5 hours" claim).
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::sim_speed(&e));
}
