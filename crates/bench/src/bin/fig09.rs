//! Regenerates Fig 9: routing algorithms, open-loop.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig09(&e).render());
}
