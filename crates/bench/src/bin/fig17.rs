//! Regenerates Fig 17: the enhanced reply model.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig17(&e).render());
}
