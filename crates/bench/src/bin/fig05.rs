//! Regenerates Fig 5: open-loop vs batch correlation scatter.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig05(&e).render());
}
