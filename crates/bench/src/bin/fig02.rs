//! Regenerates Fig 2: normalized runtime vs batch size for each m.
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::fig02(&e).render());
}
