//! Extension: trace-driven replay vs closed-loop (causality loss).
fn main() {
    let e = noc_bench::effort_from_args();
    print!("{}", noc_eval::figures::ext_trace(&e).render());
}
