//! `serve_replay` — the CI gate for `noc-serve`'s crash tolerance.
//!
//! Drives the real `noc-serve` binary through four lives:
//!
//! 1. **Reference** — an uninterrupted run of a scripted batch.
//! 2. **Kill and resume** — the same script against a WAL-backed
//!    service that is `SIGKILL`ed right after its first result line;
//!    a restarted service replaying the same script must produce a
//!    *complete* result set *bit-identical* to the reference.
//! 3. **Overload** — a queue-capacity-2 service fed 8 points: every
//!    point must get a typed answer (`Shed` with a reason, or a
//!    `degraded: true` analytic prediction) — no hangs, no drops.
//! 4. **Chaos retry** — `--chaos 2` injects two evaluation panics;
//!    with 3 attempts the final results must still be bit-identical
//!    to the reference.
//! 5. **Graceful drain** — `SIGTERM` with points queued must evaluate
//!    them, emit a final `status` record, and exit 0.
//!
//! Usage: `cargo run --release -p noc-bench --bin serve_replay -- [quick|full] [--serve-bin PATH]`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use noc_eval::serve::{parse_response, PointRequest, ServeOutcome, ServeRequest, ServeResponse};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::PatternKind;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn script_points(quick: bool) -> Vec<PointRequest> {
    let n = if quick { 12 } else { 24 };
    (0..n)
        .map(|i| PointRequest {
            batch: "replay".into(),
            net: NetConfig::baseline()
                .with_topology(TopologyKind::Mesh2D { k: 8 })
                .with_seed(0xA5E5_0000 + i as u64),
            pattern: PatternKind::Uniform,
            packet_size: 1,
            load: 0.05 + 0.02 * (i % 10) as f64,
            warmup: if quick { 2_000 } else { 5_000 },
            measure: if quick { 4_000 } else { 10_000 },
            drain_max: 40_000,
            budget: Some(5_000_000),
            allow_degraded: false,
        })
        .collect()
}

fn script_lines(points: &[PointRequest]) -> Vec<String> {
    points
        .iter()
        .map(|p| p.to_json())
        .chain([ServeRequest::Run {
            batch: "replay".into(),
            max_attempts: None,
            deadline_ms: None,
        }
        .to_json()])
        .collect()
}

fn spawn(bin: &PathBuf, extra: &[String]) -> Child {
    Command::new(bin)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", bin.display())))
}

fn send_lines(child: &mut Child, lines: &[String]) {
    let stdin = child.stdin.as_mut().expect("piped stdin");
    for l in lines {
        writeln!(stdin, "{l}").unwrap_or_else(|e| fail(&format!("writing to service: {e}")));
    }
    stdin.flush().unwrap();
}

/// Send the script, close stdin (EOF triggers a graceful drain), and
/// collect every response line until the service exits.
fn run_to_completion(bin: &PathBuf, extra: &[String], lines: &[String]) -> Vec<ServeResponse> {
    let mut child = spawn(bin, extra);
    send_lines(&mut child, lines);
    drop(child.stdin.take());
    let out = child.stdout.take().expect("piped stdout");
    let responses: Vec<ServeResponse> = BufReader::new(out)
        .lines()
        .map(|l| {
            let l = l.unwrap_or_else(|e| fail(&format!("reading from service: {e}")));
            parse_response(&l).unwrap_or_else(|e| fail(&format!("unparseable response {l:?}: {e}")))
        })
        .collect();
    let status = child.wait().expect("service exit status");
    if !status.success() {
        fail(&format!("service exited with {status}"));
    }
    responses
}

/// Point number -> (canonical outcome, cached flag). Volatile fields
/// (`cached`, `attempts`) are deliberately excluded from the identity.
fn result_map(resps: &[ServeResponse]) -> BTreeMap<u64, (String, bool)> {
    let mut map = BTreeMap::new();
    for r in resps {
        if let ServeResponse::Result(r) = r {
            if map.insert(r.point, (r.outcome.canonical(), r.cached)).is_some() {
                fail(&format!("point {} answered twice", r.point));
            }
        }
    }
    map
}

fn assert_identical(
    label: &str,
    reference: &BTreeMap<u64, (String, bool)>,
    got: &BTreeMap<u64, (String, bool)>,
) {
    if got.len() != reference.len() {
        fail(&format!(
            "{label}: incomplete results ({} of {} points answered)",
            got.len(),
            reference.len()
        ));
    }
    for (point, (want, _)) in reference {
        let Some((have, _)) = got.get(point) else {
            fail(&format!("{label}: point {point} missing"));
        };
        if have != want {
            fail(&format!(
                "{label}: point {point} differs\n  reference: {want}\n  got:       {have}"
            ));
        }
    }
    println!("  {label}: {} points bit-identical", reference.len());
}

fn main() {
    let mut quick = true;
    let mut bin: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "quick" => quick = true,
            "full" => quick = false,
            "--serve-bin" => {
                bin = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    fail("--serve-bin needs a path");
                })))
            }
            other => fail(&format!("unknown argument {other:?} (expected quick|full)")),
        }
    }
    // default: the noc-serve binary sitting next to this harness
    let bin = bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        me.parent().expect("target dir").join("noc-serve")
    });
    if !bin.exists() {
        fail(&format!(
            "{} not found; build it first (cargo build --release -p noc-serve)",
            bin.display()
        ));
    }
    let workers = vec!["--workers".to_string(), "2".to_string()];
    let points = script_points(quick);
    let script = script_lines(&points);

    // -- 1: uninterrupted reference ------------------------------------
    println!("[1/5] reference run ({} points)", points.len());
    let reference = result_map(&run_to_completion(&bin, &workers, &script));
    if reference.len() != points.len() {
        fail(&format!("reference run answered {} of {} points", reference.len(), points.len()));
    }
    if let Some(p) = reference.iter().find(|(_, (o, _))| !o.contains("\"outcome\": \"ok\"")) {
        fail(&format!("reference point {} not ok: {}", p.0, p.1 .0));
    }

    // -- 2: SIGKILL mid-batch, restart, resume -------------------------
    println!("[2/5] SIGKILL mid-batch, restart with the same WAL");
    let wal = std::env::temp_dir().join(format!("serve_replay_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let wal_args: Vec<String> =
        vec!["--wal".into(), wal.display().to_string(), "--workers".into(), "2".into()];
    {
        let mut child = spawn(&bin, &wal_args);
        send_lines(&mut child, &script);
        let out = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        let mut seen = 0usize;
        // kill the instant the first result appears: the rest of the
        // batch is still in flight
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                fail("service died before emitting any result");
            }
            if matches!(parse_response(line.trim()), Ok(ServeResponse::Result(_))) {
                seen += 1;
                break;
            }
        }
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        println!("  killed after {seen} result line(s)");
    }
    let resumed_resps = run_to_completion(&bin, &wal_args, &script);
    let resumed = result_map(&resumed_resps);
    assert_identical("kill-and-resume", &reference, &resumed);
    let cached = resumed.values().filter(|(_, c)| *c).count();
    println!(
        "  resume replayed {cached} point(s) from the WAL, recomputed {}",
        resumed.len() - cached
    );
    if cached == 0 {
        fail("resume replayed nothing from the WAL: durability is not working");
    }
    let _ = std::fs::remove_file(&wal);

    // -- 3: overload returns typed shed/degraded answers ---------------
    println!("[3/5] overload: queue capacity 2, 8 points");
    let mut overload_script = Vec::new();
    for i in 0..8u64 {
        let mut p = points[0].clone();
        p.batch = "ov".into();
        p.net.seed = 0xBEEF_0000 + i;
        p.allow_degraded = i % 2 == 1;
        overload_script.push(p.to_json());
    }
    overload_script.push(
        ServeRequest::Run { batch: "ov".into(), max_attempts: None, deadline_ms: None }.to_json(),
    );
    let mut small_q = vec!["--queue".to_string(), "2".to_string()];
    small_q.extend(workers.clone());
    let ov = run_to_completion(&bin, &small_q, &overload_script);
    let ov_results = result_map(&ov);
    if ov_results.len() != 8 {
        fail(&format!("overload: {} of 8 points answered (silent drop)", ov_results.len()));
    }
    let (mut n_ok, mut n_shed, mut n_degraded) = (0, 0, 0);
    for r in &ov {
        if let ServeResponse::Result(r) = r {
            match &r.outcome {
                ServeOutcome::Ok { .. } => n_ok += 1,
                ServeOutcome::Shed { reason } => {
                    if !reason.contains("queue full") {
                        fail(&format!("shed without a queue-full reason: {reason:?}"));
                    }
                    n_shed += 1;
                }
                ServeOutcome::Degraded { predicted_saturation, .. } => {
                    if !predicted_saturation.is_finite() || *predicted_saturation <= 0.0 {
                        fail("degraded answer with no saturation prediction");
                    }
                    if !r.to_json().contains("\"degraded\": true") {
                        fail("degraded answer missing the degraded tag");
                    }
                    n_degraded += 1;
                }
                other => fail(&format!("unexpected overload outcome: {other:?}")),
            }
        }
    }
    if n_ok != 2 || n_shed != 3 || n_degraded != 3 {
        fail(&format!(
            "overload mix wrong: {n_ok} ok / {n_shed} shed / {n_degraded} degraded \
             (expected 2/3/3)"
        ));
    }
    println!("  all 8 answered: {n_ok} ok, {n_shed} shed, {n_degraded} degraded");

    // -- 4: chaos-injected panics are retried deterministically --------
    println!("[4/5] chaos: 2 injected panics, 3 attempts");
    let mut chaos_args =
        vec!["--chaos".to_string(), "2".to_string(), "--max-attempts".to_string(), "3".to_string()];
    chaos_args.extend(workers.clone());
    let chaos = result_map(&run_to_completion(&bin, &chaos_args, &script));
    assert_identical("chaos-retry", &reference, &chaos);

    // -- 5: SIGTERM drains queued points gracefully --------------------
    println!("[5/5] SIGTERM graceful drain");
    {
        let mut child = spawn(&bin, &workers);
        let mut lines: Vec<String> = points[..2]
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.batch = "drain".into();
                p.to_json()
            })
            .collect();
        lines.push(ServeRequest::Health.to_json());
        send_lines(&mut child, &lines);
        let out = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        // the health answer proves both points were admitted before we
        // pull the trigger
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                fail("service died before answering health");
            }
            if let Ok(ServeResponse::Health(h)) = parse_response(line.trim()) {
                if h.queue_depth != 2 {
                    fail(&format!(
                        "expected 2 queued points before SIGTERM, got {}",
                        h.queue_depth
                    ));
                }
                break;
            }
        }
        let term = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .unwrap_or_else(|e| fail(&format!("cannot send SIGTERM: {e}")));
        if !term.success() {
            fail("kill -TERM failed");
        }
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        let resps: Vec<ServeResponse> = rest
            .lines()
            .map(|l| parse_response(l).unwrap_or_else(|e| fail(&format!("bad line {l:?}: {e}"))))
            .collect();
        let drained = resps.iter().filter(|r| matches!(r, ServeResponse::Result(_))).count();
        if drained != 2 {
            fail(&format!("SIGTERM drained {drained} of 2 queued points"));
        }
        let Some(ServeResponse::Status(h)) = resps.last() else {
            fail(&format!("final record must be a status, got {:?}", resps.last()));
        };
        if !h.draining || h.queue_depth != 0 {
            fail("final status should report a drained, empty service");
        }
        let status = child.wait().expect("exit status");
        if !status.success() {
            fail(&format!("SIGTERM exit status {status} (want 0)"));
        }
        println!("  drained 2 points, clean status, exit 0");
    }

    println!("serve_replay: all five lives PASS");
}
