//! `serve_replay` — the CI gate for `noc-serve`'s crash tolerance.
//!
//! Drives the real `noc-serve` binary through seven lives:
//!
//! 1. **Reference** — an uninterrupted run of a scripted batch.
//! 2. **Kill and resume** — the same script against a WAL-backed
//!    service that is `SIGKILL`ed right after its first result line;
//!    a restarted service replaying the same script must produce a
//!    *complete* result set *bit-identical* to the reference.
//! 3. **Overload** — a queue-capacity-2 service fed 8 points: every
//!    point must get a typed answer (`Shed` with a reason, or a
//!    `degraded: true` analytic prediction) — no hangs, no drops.
//! 4. **Chaos retry** — `--chaos 2` injects two evaluation panics;
//!    with 3 attempts the final results must still be bit-identical
//!    to the reference.
//! 5. **Graceful drain** — `SIGTERM` with points queued must evaluate
//!    them, emit a final `status` record, and exit 0.
//! 6. **Concurrent clients** — three socket clients with overlapping
//!    grids; the server is `SIGKILL`ed mid-load, restarted on the
//!    same WAL, and the resubmitted run's union of answers must be
//!    complete and bit-identical to the reference.
//! 7. **Sweep** — one server-side `sweep` request must stream exactly
//!    the bytes its expansion submitted point-by-point streams, plus
//!    one `sweep-done` summary record.
//!
//! Usage: `cargo run --release -p noc-bench --bin serve_replay -- [quick|full] [--serve-bin PATH]`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use noc_eval::serve::{
    parse_response, PointRequest, ServeOutcome, ServeRequest, ServeResponse, SweepRequest,
};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::PatternKind;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn script_points(quick: bool) -> Vec<PointRequest> {
    let n = if quick { 12 } else { 24 };
    (0..n)
        .map(|i| PointRequest {
            batch: "replay".into(),
            net: NetConfig::baseline()
                .with_topology(TopologyKind::Mesh2D { k: 8 })
                .with_seed(0xA5E5_0000 + i as u64),
            pattern: PatternKind::Uniform,
            packet_size: 1,
            load: 0.05 + 0.02 * (i % 10) as f64,
            warmup: if quick { 2_000 } else { 5_000 },
            measure: if quick { 4_000 } else { 10_000 },
            drain_max: 40_000,
            budget: Some(5_000_000),
            allow_degraded: false,
            analytic_admission: false,
        })
        .collect()
}

fn script_lines(points: &[PointRequest]) -> Vec<String> {
    points
        .iter()
        .map(|p| p.to_json())
        .chain([ServeRequest::Run {
            batch: "replay".into(),
            max_attempts: None,
            deadline_ms: None,
        }
        .to_json()])
        .collect()
}

fn spawn(bin: &PathBuf, extra: &[String]) -> Child {
    Command::new(bin)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", bin.display())))
}

fn send_lines(child: &mut Child, lines: &[String]) {
    let stdin = child.stdin.as_mut().expect("piped stdin");
    for l in lines {
        writeln!(stdin, "{l}").unwrap_or_else(|e| fail(&format!("writing to service: {e}")));
    }
    stdin.flush().unwrap();
}

/// Send the script, close stdin (EOF triggers a graceful drain), and
/// collect every raw response line until the service exits.
fn run_raw(bin: &PathBuf, extra: &[String], lines: &[String]) -> Vec<String> {
    let mut child = spawn(bin, extra);
    send_lines(&mut child, lines);
    drop(child.stdin.take());
    let out = child.stdout.take().expect("piped stdout");
    let raw: Vec<String> = BufReader::new(out)
        .lines()
        .map(|l| l.unwrap_or_else(|e| fail(&format!("reading from service: {e}"))))
        .collect();
    let status = child.wait().expect("service exit status");
    if !status.success() {
        fail(&format!("service exited with {status}"));
    }
    raw
}

/// [`run_raw`], parsed.
fn run_to_completion(bin: &PathBuf, extra: &[String], lines: &[String]) -> Vec<ServeResponse> {
    run_raw(bin, extra, lines)
        .iter()
        .map(|l| {
            parse_response(l).unwrap_or_else(|e| fail(&format!("unparseable response {l:?}: {e}")))
        })
        .collect()
}

/// Point number -> (canonical outcome, cached flag). Volatile fields
/// (`cached`, `attempts`) are deliberately excluded from the identity.
fn result_map(resps: &[ServeResponse]) -> BTreeMap<u64, (String, bool)> {
    let mut map = BTreeMap::new();
    for r in resps {
        if let ServeResponse::Result(r) = r {
            if map.insert(r.point, (r.outcome.canonical(), r.cached)).is_some() {
                fail(&format!("point {} answered twice", r.point));
            }
        }
    }
    map
}

fn assert_identical(
    label: &str,
    reference: &BTreeMap<u64, (String, bool)>,
    got: &BTreeMap<u64, (String, bool)>,
) {
    if got.len() != reference.len() {
        fail(&format!(
            "{label}: incomplete results ({} of {} points answered)",
            got.len(),
            reference.len()
        ));
    }
    for (point, (want, _)) in reference {
        let Some((have, _)) = got.get(point) else {
            fail(&format!("{label}: point {point} missing"));
        };
        if have != want {
            fail(&format!(
                "{label}: point {point} differs\n  reference: {want}\n  got:       {have}"
            ));
        }
    }
    println!("  {label}: {} points bit-identical", reference.len());
}

fn main() {
    let mut quick = true;
    let mut bin: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "quick" => quick = true,
            "full" => quick = false,
            "--serve-bin" => {
                bin = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    fail("--serve-bin needs a path");
                })))
            }
            other => fail(&format!("unknown argument {other:?} (expected quick|full)")),
        }
    }
    // default: the noc-serve binary sitting next to this harness
    let bin = bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        me.parent().expect("target dir").join("noc-serve")
    });
    if !bin.exists() {
        fail(&format!(
            "{} not found; build it first (cargo build --release -p noc-serve)",
            bin.display()
        ));
    }
    let workers = vec!["--workers".to_string(), "2".to_string()];
    let points = script_points(quick);
    let script = script_lines(&points);

    // -- 1: uninterrupted reference ------------------------------------
    println!("[1/7] reference run ({} points)", points.len());
    let reference = result_map(&run_to_completion(&bin, &workers, &script));
    if reference.len() != points.len() {
        fail(&format!("reference run answered {} of {} points", reference.len(), points.len()));
    }
    if let Some(p) = reference.iter().find(|(_, (o, _))| !o.contains("\"outcome\": \"ok\"")) {
        fail(&format!("reference point {} not ok: {}", p.0, p.1 .0));
    }

    // -- 2: SIGKILL mid-batch, restart, resume -------------------------
    println!("[2/7] SIGKILL mid-batch, restart with the same WAL");
    let wal = std::env::temp_dir().join(format!("serve_replay_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let wal_args: Vec<String> =
        vec!["--wal".into(), wal.display().to_string(), "--workers".into(), "2".into()];
    {
        let mut child = spawn(&bin, &wal_args);
        send_lines(&mut child, &script);
        let out = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        let mut seen = 0usize;
        // kill the instant the first result appears: the rest of the
        // batch is still in flight
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                fail("service died before emitting any result");
            }
            if matches!(parse_response(line.trim()), Ok(ServeResponse::Result(_))) {
                seen += 1;
                break;
            }
        }
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        println!("  killed after {seen} result line(s)");
    }
    let resumed_resps = run_to_completion(&bin, &wal_args, &script);
    let resumed = result_map(&resumed_resps);
    assert_identical("kill-and-resume", &reference, &resumed);
    let cached = resumed.values().filter(|(_, c)| *c).count();
    println!(
        "  resume replayed {cached} point(s) from the WAL, recomputed {}",
        resumed.len() - cached
    );
    if cached == 0 {
        fail("resume replayed nothing from the WAL: durability is not working");
    }
    let _ = std::fs::remove_file(&wal);

    // -- 3: overload returns typed shed/degraded answers ---------------
    println!("[3/7] overload: queue capacity 2, 8 points");
    let mut overload_script = Vec::new();
    for i in 0..8u64 {
        let mut p = points[0].clone();
        p.batch = "ov".into();
        p.net.seed = 0xBEEF_0000 + i;
        p.allow_degraded = i % 2 == 1;
        overload_script.push(p.to_json());
    }
    overload_script.push(
        ServeRequest::Run { batch: "ov".into(), max_attempts: None, deadline_ms: None }.to_json(),
    );
    let mut small_q = vec!["--queue".to_string(), "2".to_string()];
    small_q.extend(workers.clone());
    let ov = run_to_completion(&bin, &small_q, &overload_script);
    let ov_results = result_map(&ov);
    if ov_results.len() != 8 {
        fail(&format!("overload: {} of 8 points answered (silent drop)", ov_results.len()));
    }
    let (mut n_ok, mut n_shed, mut n_degraded) = (0, 0, 0);
    for r in &ov {
        if let ServeResponse::Result(r) = r {
            match &r.outcome {
                ServeOutcome::Ok { .. } => n_ok += 1,
                ServeOutcome::Shed { reason } => {
                    if !reason.contains("queue full") {
                        fail(&format!("shed without a queue-full reason: {reason:?}"));
                    }
                    n_shed += 1;
                }
                ServeOutcome::Degraded { predicted_saturation, .. } => {
                    if !predicted_saturation.is_finite() || *predicted_saturation <= 0.0 {
                        fail("degraded answer with no saturation prediction");
                    }
                    if !r.to_json().contains("\"degraded\": true") {
                        fail("degraded answer missing the degraded tag");
                    }
                    n_degraded += 1;
                }
                other => fail(&format!("unexpected overload outcome: {other:?}")),
            }
        }
    }
    if n_ok != 2 || n_shed != 3 || n_degraded != 3 {
        fail(&format!(
            "overload mix wrong: {n_ok} ok / {n_shed} shed / {n_degraded} degraded \
             (expected 2/3/3)"
        ));
    }
    println!("  all 8 answered: {n_ok} ok, {n_shed} shed, {n_degraded} degraded");

    // -- 4: chaos-injected panics are retried deterministically --------
    println!("[4/7] chaos: 2 injected panics, 3 attempts");
    let mut chaos_args =
        vec!["--chaos".to_string(), "2".to_string(), "--max-attempts".to_string(), "3".to_string()];
    chaos_args.extend(workers.clone());
    let chaos = result_map(&run_to_completion(&bin, &chaos_args, &script));
    assert_identical("chaos-retry", &reference, &chaos);

    // -- 5: SIGTERM drains queued points gracefully --------------------
    println!("[5/7] SIGTERM graceful drain");
    {
        let mut child = spawn(&bin, &workers);
        let mut lines: Vec<String> = points[..2]
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.batch = "drain".into();
                p.to_json()
            })
            .collect();
        lines.push(ServeRequest::Health.to_json());
        send_lines(&mut child, &lines);
        let out = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        // the health answer proves both points were admitted before we
        // pull the trigger
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                fail("service died before answering health");
            }
            if let Ok(ServeResponse::Health(h)) = parse_response(line.trim()) {
                if h.queue_depth != 2 {
                    fail(&format!(
                        "expected 2 queued points before SIGTERM, got {}",
                        h.queue_depth
                    ));
                }
                break;
            }
        }
        let term = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .unwrap_or_else(|e| fail(&format!("cannot send SIGTERM: {e}")));
        if !term.success() {
            fail("kill -TERM failed");
        }
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        let resps: Vec<ServeResponse> = rest
            .lines()
            .map(|l| parse_response(l).unwrap_or_else(|e| fail(&format!("bad line {l:?}: {e}"))))
            .collect();
        let drained = resps.iter().filter(|r| matches!(r, ServeResponse::Result(_))).count();
        if drained != 2 {
            fail(&format!("SIGTERM drained {drained} of 2 queued points"));
        }
        let Some(ServeResponse::Status(h)) = resps.last() else {
            fail(&format!("final record must be a status, got {:?}", resps.last()));
        };
        if !h.draining || h.queue_depth != 0 {
            fail("final status should report a drained, empty service");
        }
        let status = child.wait().expect("exit status");
        if !status.success() {
            fail(&format!("SIGTERM exit status {status} (want 0)"));
        }
        println!("  drained 2 points, clean status, exit 0");
    }

    // -- 6: concurrent clients, SIGKILL, WAL resume --------------------
    let key_ref: BTreeMap<String, String> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.key(), reference[&(i as u64)].0.clone()))
        .collect();
    life_concurrent(&bin, &points, &key_ref);

    // -- 7: server-side sweep expansion --------------------------------
    life_sweep(&bin, &workers, quick);

    println!("serve_replay: all seven lives PASS");
}

/// Life 6: three socket clients with overlapping grids hammer one
/// server; SIGKILL mid-load; a restarted server on the same WAL must
/// answer the resubmitted grids completely and bit-identically to the
/// stdio reference.
#[cfg(unix)]
fn life_concurrent(bin: &PathBuf, points: &[PointRequest], key_ref: &BTreeMap<String, String>) {
    use std::time::{Duration, Instant};
    println!("[6/7] three concurrent clients, SIGKILL mid-load, WAL resume");
    let dir = std::env::temp_dir();
    let sock = dir.join(format!("serve_replay_{}.sock", std::process::id()));
    let wal = dir.join(format!("serve_replay_mc_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_file(&wal);
    let args: Vec<String> = [
        "--socket",
        &sock.display().to_string(),
        "--wal",
        &wal.display().to_string(),
        "--workers",
        "2",
        "--max-clients",
        "4",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // overlapping windows: every adjacent pair of clients shares points
    let stride = points.len() / 3;
    let subsets: Vec<&[PointRequest]> =
        (0..3).map(|c| &points[c * stride..(points.len()).min((c + 2) * stride)]).collect();

    // first life: clients race until the WAL holds at least one record,
    // then the server dies mid-load
    let mut child = spawn_socket_server(bin, &args);
    wait_for_socket(&sock);
    std::thread::scope(|scope| {
        for (c, subset) in subsets.iter().enumerate() {
            let (sock, subset) = (&sock, *subset);
            scope.spawn(move || mc_client(sock, &format!("mc{c}"), subset, false));
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if std::fs::metadata(&wal).map(|m| m.len() > 0).unwrap_or(false) {
                break;
            }
            if Instant::now() > deadline {
                fail("no WAL record appeared under concurrent load");
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        // clients see EOF/EPIPE and return; the scope joins them
    });
    println!(
        "  killed mid-load ({} WAL bytes)",
        std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0)
    );

    // second life: same WAL, same grids, answers must be complete and
    // bit-identical to the reference
    let mut child = spawn_socket_server(bin, &args);
    wait_for_socket(&sock);
    let mut union: BTreeMap<String, String> = BTreeMap::new();
    let maps = std::thread::scope(|scope| {
        let handles: Vec<_> = subsets
            .iter()
            .enumerate()
            .map(|(c, subset)| {
                let (sock, subset) = (&sock, *subset);
                scope.spawn(move || mc_client(sock, &format!("mc{c}"), subset, true))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    for m in maps {
        for (k, v) in m {
            if let Some(prev) = union.insert(k.clone(), v.clone()) {
                if prev != v {
                    fail(&format!("concurrent clients disagreed on {k}"));
                }
            }
        }
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot send SIGTERM: {e}")));
    if !term.success() {
        fail("kill -TERM failed");
    }
    let status = child.wait().expect("exit status");
    if !status.success() {
        fail(&format!("socket server exit status {status} (want 0)"));
    }
    if union.len() != key_ref.len() {
        fail(&format!(
            "concurrent resume answered {} of {} distinct points",
            union.len(),
            key_ref.len()
        ));
    }
    for (k, want) in key_ref {
        match union.get(k) {
            Some(have) if have == want => {}
            Some(have) => fail(&format!(
                "concurrent resume differs for {k}\n  reference: {want}\n  got:       {have}"
            )),
            None => fail(&format!("concurrent resume missing {k}")),
        }
    }
    println!("  resumed run: {} distinct points bit-identical across 3 clients", union.len());
    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(&sock);
}

#[cfg(not(unix))]
fn life_concurrent(_bin: &PathBuf, _points: &[PointRequest], _key_ref: &BTreeMap<String, String>) {
    println!("[6/7] concurrent socket clients: skipped (requires Unix sockets)");
}

/// Spawn the server in socket mode (stdin/stdout unused; stderr shows
/// through so drain status records stay visible in CI logs).
#[cfg(unix)]
fn spawn_socket_server(bin: &PathBuf, args: &[String]) -> Child {
    Command::new(bin)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", bin.display())))
}

#[cfg(unix)]
fn wait_for_socket(path: &std::path::Path) {
    use std::time::{Duration, Instant};
    let deadline = Instant::now() + Duration::from_secs(30);
    while std::os::unix::net::UnixStream::connect(path).is_err() {
        if Instant::now() > deadline {
            fail(&format!("server socket never appeared at {}", path.display()));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One socket client: submit `pts` under `batch`, run it, read until
/// the batch-done marker, and return `key -> canonical outcome`. With
/// `strict` off, IO failures (the server being SIGKILLed under us)
/// return whatever was collected so far.
#[cfg(unix)]
fn mc_client(
    sock: &std::path::Path,
    batch: &str,
    pts: &[PointRequest],
    strict: bool,
) -> BTreeMap<String, String> {
    use std::os::unix::net::UnixStream;
    let mut map = BTreeMap::new();
    let stream = match UnixStream::connect(sock) {
        Ok(s) => s,
        Err(e) if !strict => {
            let _ = e;
            return map;
        }
        Err(e) => fail(&format!("client {batch} cannot connect: {e}")),
    };
    let mut out = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut lines: Vec<String> = pts
        .iter()
        .map(|p| {
            let mut q = p.clone();
            q.batch = batch.into();
            q.to_json()
        })
        .collect();
    lines.push(
        ServeRequest::Run { batch: batch.into(), max_attempts: None, deadline_ms: None }.to_json(),
    );
    for l in &lines {
        if let Err(e) = writeln!(out, "{l}") {
            if strict {
                fail(&format!("client {batch} write: {e}"));
            }
            return map;
        }
    }
    let _ = out.flush();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                if strict {
                    fail(&format!("server hung up on client {batch} before batch-done"));
                }
                return map;
            }
            Ok(_) => {}
            Err(e) => {
                if strict {
                    fail(&format!("client {batch} read: {e}"));
                }
                return map;
            }
        }
        match parse_response(line.trim()) {
            Ok(ServeResponse::Result(r)) => {
                map.insert(r.key, r.outcome.canonical());
            }
            Ok(ServeResponse::BatchDone { batch: b, .. }) if b == batch => return map,
            Ok(_) => {}
            Err(e) => {
                if strict {
                    fail(&format!("client {batch} got unparseable line {line:?}: {e}"));
                }
                return map;
            }
        }
    }
}

/// Life 7: one `sweep` line against the real binary must stream byte
/// for byte what its expansion submitted point-by-point streams, plus
/// exactly one `sweep-done` summary.
fn life_sweep(bin: &PathBuf, workers: &[String], quick: bool) {
    println!("[7/7] server-side sweep expansion");
    let sw = SweepRequest {
        batch: "sw".into(),
        net: NetConfig::baseline()
            .with_topology(TopologyKind::Mesh2D { k: 8 })
            .with_seed(0x5EED_0001),
        patterns: vec![PatternKind::Uniform, PatternKind::Transpose],
        loads: vec![0.05, 0.08],
        seeds: if quick { 1 } else { 2 },
        packet_size: 1,
        warmup: if quick { 2_000 } else { 5_000 },
        measure: if quick { 4_000 } else { 10_000 },
        drain_max: 40_000,
        budget: Some(5_000_000),
        allow_degraded: false,
        analytic_admission: false,
        max_attempts: None,
        deadline_ms: None,
    };
    let expanded = sw.expand();
    let mut point_lines: Vec<String> = expanded.iter().map(|p| p.to_json()).collect();
    point_lines.push(
        ServeRequest::Run { batch: sw.batch.clone(), max_attempts: None, deadline_ms: None }
            .to_json(),
    );
    let point_raw = run_raw(bin, workers, &point_lines);
    let sweep_raw = run_raw(bin, workers, &[sw.to_json()]);

    let mut summaries = Vec::new();
    let mut rest = Vec::new();
    for l in sweep_raw {
        match parse_response(&l) {
            Ok(ServeResponse::SweepDone { .. }) => summaries.push(l),
            _ => rest.push(l),
        }
    }
    if summaries.len() != 1 {
        fail(&format!("expected exactly one sweep-done record, got {}", summaries.len()));
    }
    let Ok(ServeResponse::SweepDone { expanded: n, ok, .. }) = parse_response(&summaries[0]) else {
        unreachable!()
    };
    if n != expanded.len() as u64 || ok != n {
        fail(&format!(
            "sweep summary wrong: expanded {n}, ok {ok} (want {} each): {}",
            expanded.len(),
            summaries[0]
        ));
    }
    if rest != point_raw {
        for (i, (a, b)) in rest.iter().zip(&point_raw).enumerate() {
            if a != b {
                fail(&format!(
                    "sweep stream diverges from point-by-point at line {i}\n  sweep: {a}\n  points: {b}"
                ));
            }
        }
        fail(&format!(
            "sweep stream has {} lines, point-by-point has {}",
            rest.len(),
            point_raw.len()
        ));
    }
    println!(
        "  sweep of {} points byte-identical to individual submission, summary verified",
        expanded.len()
    );
}
