//! The analytic performance model: ideal saturation throughput,
//! zero-load latency, and an M/D/1-style latency-vs-offered-load curve,
//! all derived from the static channel-load map.

use noc_sim::config::NetConfig;
use noc_sim::error::ConfigError;
use noc_traffic::{PatternKind, SizeKind};

use crate::load::LoadMap;
use crate::matrix::TrafficMatrix;

/// How much the model's predictions can be trusted for decisions like
/// grid pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// Exact route enumeration and exact traffic matrix: the channel
    /// loads are the true expectations, only the queueing curve is a
    /// model.
    High,
    /// The route set itself is approximated (adaptive routing's
    /// equal-split expected flow): predictions are indicative only and
    /// must not suppress simulation.
    Low,
}

/// Flow-control efficiency — the fraction of a channel's ideal 1
/// flit/cycle bandwidth the simulated router sustains before latency
/// diverges — for random traffic (uniform, hotspot spillover) on
/// topologies without wraparound links.
///
/// The load map's `1 / max_load` is a *capacity* bound: it assumes
/// perfect flow control. The simulated router loses throughput to
/// finite VC buffers (credit round-trips), switch allocation conflicts,
/// and head-of-line blocking (cf. Dally & Towles' 60-80% rule of thumb
/// for practical routers). All four regime constants below were
/// calibrated once against `noc-openloop`'s bisection search on the
/// baseline buffer configuration (2 VCs x 4 flits, t_r = 1); the
/// cross-validation study in `noc-eval` re-checks them on every CI run.
pub const RANDOM_EFFICIENCY: f64 = 0.79;

/// Flow-control efficiency on topologies with wraparound links: the
/// dateline VC restriction confines packets that cross (or may cross)
/// the wrap to half the VCs, roughly a 0.7x penalty on top of
/// [`RANDOM_EFFICIENCY`] across the torus calibration set.
pub const WRAP_EFFICIENCY: f64 = 0.55;

/// Flow-control efficiency for deterministic streams: a fixed
/// permutation under deterministic (DOR) routing offers each channel a
/// constant-rate flow with no arrival variance, so the hot channel
/// sustains essentially its full bandwidth.
pub const DETERMINISTIC_EFFICIENCY: f64 = 1.0;

/// Efficiency of the ejection (local-port) channel: the final hop is a
/// dedicated drain with no routing contention, so when the ejection
/// channel is the bottleneck (concentrating patterns like hotspot) the
/// measured saturation sits within a percent of its capacity.
pub const EJECT_EFFICIENCY: f64 = 0.99;

/// Static performance model of one `(network, pattern, size)` point.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    /// One-line description of what was modeled.
    pub config_desc: String,
    /// Node count.
    pub nodes: usize,
    /// The expected per-channel load map (per unit offered load).
    pub loads: LoadMap,
    /// Mean packet size in flits.
    pub mean_packet_size: f64,
    /// Router pipeline delay `t_r` in cycles.
    pub router_delay: f64,
    /// Per-hop link delay in cycles (uniform across our topologies).
    pub link_delay: f64,
    /// Zero-load latency `T0`: expected hops times per-hop delay, plus
    /// ejection and serialization.
    pub zero_load_latency: f64,
    /// Ideal saturation throughput `1 / max_channel_load` in
    /// flits/cycle/node (the max runs over router links *and* ejection
    /// channels): no offered load above this is sustainable no matter
    /// how good the router is.
    pub ideal_saturation: f64,
    /// Where the latency curve actually diverges: the tighter of the
    /// efficiency-scaled router-link bound and the ejection bound.
    pub effective_saturation: f64,
    /// The flow-control efficiency regime applied to router links
    /// (one of [`RANDOM_EFFICIENCY`], [`WRAP_EFFICIENCY`],
    /// [`DETERMINISTIC_EFFICIENCY`]).
    pub flow_efficiency: f64,
    /// Trustworthiness of the prediction.
    pub confidence: Confidence,
}

impl AnalyticModel {
    /// Build the model for `net` under `pattern` with packet sizes
    /// drawn from `size`. Fails only if the network configuration
    /// itself is invalid.
    pub fn of(net: &NetConfig, pattern: PatternKind, size: SizeKind) -> Result<Self, ConfigError> {
        net.validate()?;
        let topo = net.topology.build();
        let matrix = TrafficMatrix::new(pattern, topo.num_nodes(), topo.radix(0));
        let loads = LoadMap::build(net, &*topo, &matrix);
        let s = size.mean();
        let tr = net.router_delay as f64;
        let t_link = topo.link_delay(0, 1) as f64;
        let t0 = loads.avg_hops() * (tr + t_link) + tr + (s - 1.0);
        let gmax = loads.max();
        let gej = loads.max_eject();
        let ideal = match gmax.max(gej) {
            g if g > 0.0 => 1.0 / g,
            _ => f64::INFINITY,
        };
        // Efficiency regime: deterministic streams only arise from a
        // permutation under single-path deterministic routing; wrap
        // links (dateline VCs) dominate everything else.
        let eta = if topo.has_wrap() {
            WRAP_EFFICIENCY
        } else if matrix.is_permutation() && net.routing == noc_sim::config::RoutingKind::Dor {
            DETERMINISTIC_EFFICIENCY
        } else {
            RANDOM_EFFICIENCY
        };
        let sat_net = if gmax > 0.0 { eta / gmax } else { f64::INFINITY };
        let sat_ej = if gej > 0.0 { EJECT_EFFICIENCY / gej } else { f64::INFINITY };
        let confidence = if loads.exact() { Confidence::High } else { Confidence::Low };
        Ok(Self {
            config_desc: format!(
                "{:?}/{:?} {} on {} nodes, mean packet {s} flit(s)",
                net.routing,
                pattern,
                topo.name(),
                topo.num_nodes()
            ),
            nodes: topo.num_nodes(),
            loads,
            mean_packet_size: s,
            router_delay: tr,
            link_delay: t_link,
            zero_load_latency: t0,
            ideal_saturation: ideal,
            effective_saturation: sat_net.min(sat_ej),
            flow_efficiency: eta,
            confidence,
        })
    }

    /// Predicted average packet latency at offered load `load`
    /// (flits/cycle/node), or `None` at or beyond the effective
    /// saturation point where the queueing model diverges.
    ///
    /// Every channel is treated as an M/D/1 queue with deterministic
    /// service of one packet (`mean_packet_size` cycles at 1
    /// flit/cycle) and utilization `rho = load * gamma_c /`
    /// [`Self::flow_efficiency`]; a random packet pays the wait of each
    /// channel it crosses, weighted by its expected traversals.
    pub fn latency_at(&self, load: f64) -> Option<f64> {
        // NaN fails both comparisons, so it falls through to None
        if load.is_nan() || load < 0.0 || load >= self.effective_saturation {
            return None;
        }
        let s = self.mean_packet_size;
        let eta = self.flow_efficiency;
        let wait = |gamma: f64| {
            let rho = (load * gamma / eta).min(1.0 - 1e-9);
            rho * s / (2.0 * (1.0 - rho))
        };
        Some(self.zero_load_latency + self.loads.expected_wait(wait))
    }

    /// The predicted latency-load curve at the given offered loads;
    /// points at or past saturation are omitted.
    pub fn curve(&self, loads: &[f64]) -> Vec<(f64, f64)> {
        loads.iter().filter_map(|&l| self.latency_at(l).map(|lat| (l, lat))).collect()
    }

    /// Predicted saturation throughput: the offered load where the
    /// modeled latency crosses `latency_cap` cycles, never above the
    /// effective capacity bound. Mirrors the simulator-side
    /// `saturation_throughput` definition (stable and below the cap).
    pub fn predicted_saturation(&self, latency_cap: f64) -> f64 {
        let cap_ok = |l: f64| self.latency_at(l).is_some_and(|lat| lat <= latency_cap);
        let mut hi = self.effective_saturation.min(1.0);
        if cap_ok(hi * (1.0 - 1e-6)) {
            return hi;
        }
        let mut lo = 0.0;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if cap_ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Per-channel utilization `load * gamma_c` (against unit
    /// capacity), for the overload lint.
    pub fn overloaded_channels(&self, load: f64) -> Vec<crate::load::ChannelLoad> {
        self.loads.channels().into_iter().filter(|c| load * c.load >= 1.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn mesh4() -> AnalyticModel {
        AnalyticModel::of(
            &NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            PatternKind::Uniform,
            SizeKind::Fixed(1),
        )
        .unwrap()
    }

    #[test]
    fn zero_load_latency_matches_openloop_bound() {
        let net = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let m = mesh4();
        // uniform traffic, single-flit packets: T0 is exactly the
        // open-loop harness's analytic bound
        let bound = noc_openloop::zero_load_latency_bound(&net);
        assert!((m.zero_load_latency - bound).abs() < 1e-9, "{} vs {bound}", m.zero_load_latency);
    }

    #[test]
    fn latency_curve_is_monotone_and_diverges() {
        let m = mesh4();
        let t0 = m.latency_at(1e-9).unwrap();
        assert!((t0 - m.zero_load_latency).abs() < 1e-3);
        let mut prev = 0.0;
        for l in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let lat = m.latency_at(l).unwrap();
            assert!(lat > prev, "latency must grow with load");
            prev = lat;
        }
        assert!(m.latency_at(m.effective_saturation).is_none());
        assert!(m.latency_at(-0.1).is_none());
        assert!(m.latency_at(f64::NAN).is_none());
    }

    #[test]
    fn predicted_saturation_is_capped_by_capacity() {
        let m = mesh4();
        let sat = m.predicted_saturation(300.0);
        assert!(sat > 0.0 && sat <= m.effective_saturation + 1e-9, "sat = {sat}");
        // a tighter cap can only lower the prediction
        assert!(m.predicted_saturation(30.0) <= sat + 1e-12);
    }

    #[test]
    fn ideal_saturation_is_inverse_max_load() {
        let m = mesh4();
        assert!((m.ideal_saturation - 15.0 / 16.0).abs() < 1e-9);
        assert_eq!(m.confidence, Confidence::High);
    }

    #[test]
    fn adaptive_model_has_low_confidence() {
        let m = AnalyticModel::of(
            &NetConfig::baseline()
                .with_topology(TopologyKind::Mesh2D { k: 4 })
                .with_routing(noc_sim::config::RoutingKind::MinAdaptive),
            PatternKind::Uniform,
            SizeKind::Fixed(1),
        )
        .unwrap();
        assert_eq!(m.confidence, Confidence::Low);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = NetConfig::baseline().with_vc_buf(0);
        assert!(AnalyticModel::of(&bad, PatternKind::Uniform, SizeKind::Fixed(1)).is_err());
    }
}
