//! Static performance lints: findings derived from the load map alone,
//! reported through `noc-verify`'s `Finding` machinery so they compose
//! with the deadlock analysis in reports.

use noc_sim::config::{Arbitration, NetConfig};
use noc_verify::{Finding, Severity};

use crate::model::{AnalyticModel, Confidence};

/// Imbalance ratio past which the load distribution is flagged.
pub const IMBALANCE_WARNING: f64 = 3.0;

/// Run the analytic lints for `model` at offered load `load`
/// (flits/cycle/node). Findings use the same `check` identifiers
/// discipline as `noc_verify::verify`.
pub fn lints(model: &AnalyticModel, net: &NetConfig, load: f64) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Channels statically driven at or past 100% utilization: the
    // offered load is unsustainable regardless of router quality.
    let over = model.overloaded_channels(load);
    if let Some(worst) =
        over.iter().max_by(|a, b| a.load.partial_cmp(&b.load).expect("loads are finite"))
    {
        findings.push(Finding {
            severity: Severity::Warning,
            check: "channel-overload",
            message: format!(
                "offered load {load:.3} drives {} channel(s) at or past capacity; the worst \
                 (router {}, port {}) would need {:.2} flits/cycle against a capacity of 1 — \
                 no stable operating point exists above {:.3} flits/cycle/node",
                over.len(),
                worst.node,
                worst.port,
                load * worst.load,
                model.ideal_saturation,
            ),
        });
    }

    // Static load imbalance: a hot channel saturates long before the
    // average one, wasting most of the bisection bandwidth.
    let imb = model.loads.imbalance();
    if imb >= IMBALANCE_WARNING {
        let hot = model.loads.hottest().expect("imbalanced map has a hottest channel");
        findings.push(Finding {
            severity: Severity::Warning,
            check: "load-imbalance",
            message: format!(
                "expected channel loads are {imb:.1}x imbalanced (hottest: router {}, port {} \
                 at {:.3} per unit load); load-balanced routing (Valiant/ROMM) or adaptive \
                 routing would spread this pattern",
                hot.node, hot.port, hot.load,
            ),
        });
    }

    // Starvation-prone pairing: round-robin arbitration on a heavily
    // imbalanced load keeps granting the hot input ports in turn, so a
    // packet on a cold port behind a hot merge point can wait
    // unboundedly in the worst case; age-based arbitration bounds it.
    if net.arbitration == Arbitration::RoundRobin && imb >= IMBALANCE_WARNING {
        findings.push(Finding {
            severity: Severity::Info,
            check: "arbitration-starvation",
            message: format!(
                "round-robin arbitration with {imb:.1}x load imbalance is starvation-prone at \
                 the hot merge points; age-based arbitration bounds worst-case packet wait",
            ),
        });
    }

    if model.confidence == Confidence::Low {
        findings.push(Finding {
            severity: Severity::Info,
            check: "analytic-confidence",
            message: "adaptive routing: channel loads are an equal-split flow approximation; \
                      predictions are indicative and grid pruning is disabled"
                .into(),
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{RoutingKind, TopologyKind};
    use noc_traffic::{PatternKind, SizeKind};

    fn model(net: &NetConfig, pat: PatternKind) -> AnalyticModel {
        AnalyticModel::of(net, pat, SizeKind::Fixed(1)).unwrap()
    }

    #[test]
    fn overload_fires_past_capacity_only() {
        let net = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let m = model(&net, PatternKind::Uniform);
        let low = lints(&m, &net, 0.2);
        assert!(!low.iter().any(|f| f.check == "channel-overload"), "{low:?}");
        let over = lints(&m, &net, 1.0);
        assert!(over.iter().any(|f| f.check == "channel-overload"));
    }

    #[test]
    fn hotspot_triggers_imbalance_and_starvation_lints() {
        let net = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let m = model(&net, PatternKind::Hotspot { node: 5, frac: 0.6 });
        assert!(m.loads.imbalance() >= IMBALANCE_WARNING, "imbalance {}", m.loads.imbalance());
        let fs = lints(&m, &net, 0.1);
        assert!(fs.iter().any(|f| f.check == "load-imbalance"));
        assert!(fs.iter().any(|f| f.check == "arbitration-starvation"));
        // age-based arbitration clears the starvation pairing
        let aged = net.with_arbitration(Arbitration::AgeBased);
        let fs = lints(&m, &aged, 0.1);
        assert!(!fs.iter().any(|f| f.check == "arbitration-starvation"));
    }

    #[test]
    fn uniform_baseline_is_clean() {
        let net = NetConfig::baseline();
        let m = model(&net, PatternKind::Uniform);
        assert!(lints(&m, &net, 0.2).is_empty());
    }

    #[test]
    fn adaptive_confidence_note_present() {
        let net = NetConfig::baseline()
            .with_topology(TopologyKind::Mesh2D { k: 4 })
            .with_routing(RoutingKind::MinAdaptive);
        let m = model(&net, PatternKind::Uniform);
        assert!(lints(&m, &net, 0.1).iter().any(|f| f.check == "analytic-confidence"));
    }
}
