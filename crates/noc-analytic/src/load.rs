//! Expected channel-load maps: route enumeration (from `noc-verify`)
//! weighted by an exact traffic matrix.

use noc_sim::config::NetConfig;
use noc_sim::topology::Topology;
use noc_verify::routes::{enumerate_routes, Hop, RouteVisitor};

use crate::matrix::TrafficMatrix;

/// One physical channel and its expected load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelLoad {
    /// Upstream router driving the link.
    pub node: usize,
    /// Output port at `node` (1-based, never the local port).
    pub port: usize,
    /// Expected traversals per unit offered load: with every node
    /// injecting `L` flits/cycle, this channel carries `L * load`
    /// flits/cycle against a capacity of 1.
    pub load: f64,
}

/// Expected per-channel load of one `(config, pattern)` combination.
///
/// For channel `c`, `gamma_c = sum over (src, dst) pairs of
/// p(src, dst) * f_c(src, dst)`, where `p` is the traffic matrix and
/// `f_c` the expected number of times a `src -> dst` packet traverses
/// `c` under the configured routing (exact for deterministic and
/// oblivious routing; an equal-split flow approximation for adaptive).
/// Channels are physical links — all VCs of a link share its single
/// flit/cycle of bandwidth, so loads are accumulated per link.
#[derive(Debug, Clone)]
pub struct LoadMap {
    nodes: usize,
    ports: usize,
    gamma: Vec<f64>,
    eject: Vec<f64>,
    total_hops: f64,
    exact: bool,
}

/// Accumulates matrix-weighted route hops into per-link loads.
struct Accumulate<'a> {
    matrix: &'a TrafficMatrix,
    ports: usize,
    gamma: Vec<f64>,
    total_hops: f64,
}

impl Accumulate<'_> {
    fn add(&mut self, node: usize, port: usize, w: f64) {
        self.gamma[node * (self.ports - 1) + (port - 1)] += w;
        self.total_hops += w;
    }
}

impl RouteVisitor for Accumulate<'_> {
    fn path(&mut self, src: usize, dst: usize, weight: f64, hops: &[Hop]) {
        let p = self.matrix.prob(src, dst) * weight;
        if p <= 0.0 {
            return;
        }
        for hop in hops {
            self.add(hop.node, hop.port, p);
        }
    }

    fn flow(&mut self, src: usize, dst: usize, weight: f64, hop: Hop) {
        let p = self.matrix.prob(src, dst) * weight;
        if p > 0.0 {
            self.add(hop.node, hop.port, p);
        }
    }
}

impl LoadMap {
    /// Enumerate all routes of `cfg` and accumulate the expected load
    /// each channel sees under `matrix`.
    pub fn build(cfg: &NetConfig, topo: &dyn Topology, matrix: &TrafficMatrix) -> Self {
        let ports = topo.num_ports();
        let mut acc = Accumulate {
            matrix,
            ports,
            gamma: vec![0.0; topo.num_nodes() * (ports - 1)],
            total_hops: 0.0,
        };
        let e = enumerate_routes(cfg, topo, &mut acc);
        // Ejection (local-port) loads come straight from the matrix:
        // every network-crossing packet to `dst` drains through dst's
        // single 1 flit/cycle ejection channel, which concentrating
        // patterns (hotspot) can saturate long before any router link.
        let n = topo.num_nodes();
        let mut eject = vec![0.0f64; n];
        for src in 0..n {
            for (dst, e) in eject.iter_mut().enumerate() {
                if src != dst {
                    *e += matrix.prob(src, dst);
                }
            }
        }
        Self {
            nodes: n,
            ports,
            gamma: acc.gamma,
            eject,
            total_hops: acc.total_hops,
            exact: e.exact,
        }
    }

    /// Expected load of the channel leaving `node` through `port`.
    pub fn gamma(&self, node: usize, port: usize) -> f64 {
        self.gamma[node * (self.ports - 1) + (port - 1)]
    }

    /// True when the underlying route enumeration was exact (cleared
    /// for adaptive routing's expected-flow approximation).
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// Largest per-channel load over router-to-router links.
    pub fn max(&self) -> f64 {
        self.gamma.iter().cloned().fold(0.0, f64::max)
    }

    /// Expected ejection load of `node`'s local port per unit offered
    /// load.
    pub fn eject(&self, node: usize) -> f64 {
        self.eject[node]
    }

    /// Largest per-node ejection load.
    pub fn max_eject(&self) -> f64 {
        self.eject.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean load over channels that carry any traffic.
    pub fn mean_used(&self) -> f64 {
        let used: Vec<f64> = self.gamma.iter().cloned().filter(|&g| g > 0.0).collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        }
    }

    /// Max/mean load ratio over used channels — the static counterpart
    /// of the simulator's measured `channel_imbalance`.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_used();
        if mean > 0.0 {
            self.max() / mean
        } else {
            0.0
        }
    }

    /// Expected hop count of a random packet (network-entering traffic
    /// contributes its path length; self-traffic contributes zero).
    pub fn avg_hops(&self) -> f64 {
        self.total_hops / self.nodes as f64
    }

    /// The most loaded channel, if any traffic flows at all.
    pub fn hottest(&self) -> Option<ChannelLoad> {
        let (i, &g) = self
            .gamma
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))?;
        if g <= 0.0 {
            return None;
        }
        Some(ChannelLoad { node: i / (self.ports - 1), port: i % (self.ports - 1) + 1, load: g })
    }

    /// Every channel with nonzero load, unsorted.
    pub fn channels(&self) -> Vec<ChannelLoad> {
        self.gamma
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g > 0.0)
            .map(|(i, &g)| ChannelLoad {
                node: i / (self.ports - 1),
                port: i % (self.ports - 1) + 1,
                load: g,
            })
            .collect()
    }

    /// Per-router peak outgoing load, for `k x k` heatmaps (same shape
    /// as the observability layer's measured heatmap).
    pub fn per_router_peak(&self) -> Vec<f64> {
        (0..self.nodes)
            .map(|r| (1..self.ports).map(|p| self.gamma(r, p)).fold(0.0, f64::max))
            .collect()
    }

    /// Sum of per-packet expected waits weighted by traversal counts:
    /// `sum_c (gamma_c / n) * wait(gamma_c)`. Used by the latency model.
    pub(crate) fn expected_wait(&self, wait: impl Fn(f64) -> f64) -> f64 {
        self.gamma.iter().filter(|&&g| g > 0.0).map(|&g| g / self.nodes as f64 * wait(g)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;
    use noc_traffic::PatternKind;

    fn map(cfg: &NetConfig, pat: PatternKind) -> LoadMap {
        let topo = cfg.topology.build();
        let m = TrafficMatrix::new(pat, topo.num_nodes(), topo.radix(0));
        LoadMap::build(cfg, &*topo, &m)
    }

    #[test]
    fn uniform_mesh_bisection_load_matches_closed_form() {
        // 4-ary 2-mesh, DOR, uniform: the central +x channel in a row
        // carries traffic from the 2 sources on its left (same row, x
        // routed first) to the 2 x 4 destinations on its right:
        // 2 * 8 / 15 = 16/15.
        let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let lm = map(&cfg, PatternKind::Uniform);
        assert!((lm.max() - 16.0 / 15.0).abs() < 1e-9, "max = {}", lm.max());
        assert!(lm.exact());
    }

    #[test]
    fn avg_hops_matches_topology_average_for_uniform() {
        let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let topo = cfg.topology.build();
        let lm = map(&cfg, PatternKind::Uniform);
        // uniform excluding self is exactly the topology's average
        // minimal distance; DOR paths are minimal
        assert!((lm.avg_hops() - topo.avg_min_hops()).abs() < 1e-9);
    }

    #[test]
    fn neighbor_traffic_is_perfectly_balanced_on_a_torus() {
        let cfg = NetConfig::baseline().with_topology(TopologyKind::Torus2D { k: 4 });
        let lm = map(&cfg, PatternKind::Neighbor);
        // +1 in each dimension with wraparound: every +x and +y channel
        // carries exactly one flow; imbalance over *used* channels is 1
        assert!((lm.imbalance() - 1.0).abs() < 1e-9, "imbalance = {}", lm.imbalance());
        assert!((lm.max() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transpose_under_dor_is_imbalanced() {
        let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 });
        let uni = map(&cfg, PatternKind::Uniform);
        let tp = map(&cfg, PatternKind::Transpose);
        assert!(
            tp.imbalance() > uni.imbalance(),
            "transpose {} <= uniform {}",
            tp.imbalance(),
            uni.imbalance()
        );
    }

    #[test]
    fn adaptive_map_is_flagged_inexact_and_spreads_load() {
        let cfg = NetConfig::baseline()
            .with_topology(TopologyKind::Mesh2D { k: 4 })
            .with_routing(noc_sim::config::RoutingKind::MinAdaptive);
        let lm = map(&cfg, PatternKind::Transpose);
        assert!(!lm.exact());
        let dor = map(
            &NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            PatternKind::Transpose,
        );
        // adaptive routing spreads the transpose hot channels
        assert!(lm.max() <= dor.max() + 1e-9, "{} vs {}", lm.max(), dor.max());
    }

    #[test]
    fn hottest_and_heatmap_shapes() {
        let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
        let lm = map(&cfg, PatternKind::Uniform);
        let hot = lm.hottest().unwrap();
        assert!((hot.load - lm.max()).abs() < 1e-12);
        assert!((1..=4).contains(&hot.port));
        assert_eq!(lm.per_router_peak().len(), 16);
        assert!(!lm.channels().is_empty());
    }
}
