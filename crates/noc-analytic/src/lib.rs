//! Static channel-load analysis for the `noc-sim` core: predict
//! saturation throughput and the latency-load curve *without running a
//! single simulated cycle*, lint configurations for load pathologies,
//! and prune experiment grids down to the points that actually need the
//! simulator.
//!
//! The crate is the second static pass built on `noc-verify`'s public
//! route enumerator ([`noc_verify::routes::enumerate_routes`]): where
//! the verifier turns route walks into channel *dependency* edges, this
//! crate turns the same walks into expected channel *loads*:
//!
//! 1. [`TrafficMatrix`] — the exact per-pair destination probabilities
//!    a spatial pattern induces (closed form for random patterns, the
//!    pattern's own destination function for permutations).
//! 2. [`LoadMap`] — matrix-weighted route enumeration: `gamma_c`, the
//!    expected traversals of channel `c` per unit offered load.
//! 3. [`AnalyticModel`] — ideal saturation throughput
//!    `1 / max(gamma)`, zero-load latency, and an M/D/1-style
//!    latency-vs-load curve, with a calibrated flow-control efficiency
//!    factor bridging the capacity bound to what the simulated router
//!    sustains.
//! 4. [`lints`] — static findings (channel overload, load imbalance,
//!    starvation-prone arbitration pairings) through `noc-verify`'s
//!    [`Finding`] machinery.
//! 5. [`sweep_pruned`] — an open-loop load sweep that simulates only
//!    the points within a band of the predicted saturation; everything
//!    else is answered analytically, bit-identically preserving the
//!    simulated points.
//!
//! ```
//! use noc_sim::config::NetConfig;
//! use noc_traffic::{PatternKind, SizeKind};
//!
//! let report = noc_analytic::analyze(
//!     &NetConfig::baseline(),
//!     PatternKind::Uniform,
//!     SizeKind::Fixed(1),
//!     0.2,
//! )
//! .unwrap();
//! assert!(report.model.ideal_saturation > 0.4);
//! assert!(report.findings.is_empty());
//! ```

#![warn(missing_docs)]

mod lints;
mod load;
mod matrix;
mod model;
mod prune;

pub use lints::{lints, IMBALANCE_WARNING};
pub use load::{ChannelLoad, LoadMap};
pub use matrix::TrafficMatrix;
pub use model::{
    AnalyticModel, Confidence, DETERMINISTIC_EFFICIENCY, EJECT_EFFICIENCY, RANDOM_EFFICIENCY,
    WRAP_EFFICIENCY,
};
pub use prune::sweep_pruned;

use noc_sim::config::NetConfig;
use noc_sim::error::ConfigError;
use noc_traffic::{PatternKind, SizeKind};
use noc_verify::Finding;

/// Model plus findings for one analyzed point.
#[derive(Debug, Clone)]
pub struct AnalyticReport {
    /// The performance model.
    pub model: AnalyticModel,
    /// Static lints at the requested operating load.
    pub findings: Vec<Finding>,
}

impl AnalyticReport {
    /// Compact single-line summary, mirroring
    /// `noc_verify::VerifyReport::one_line`.
    pub fn one_line(&self) -> String {
        format!(
            "noc-analytic: {} — theta* = {:.3} (effective {:.3}), T0 = {:.1} cycles, \
             imbalance {:.2}x; {} finding(s)",
            self.model.config_desc,
            self.model.ideal_saturation,
            self.model.effective_saturation,
            self.model.zero_load_latency,
            self.model.loads.imbalance(),
            self.findings.len(),
        )
    }
}

/// Analyze one `(network, pattern, size)` point at operating load
/// `load`: build the model and run the static lints.
pub fn analyze(
    net: &NetConfig,
    pattern: PatternKind,
    size: SizeKind,
    load: f64,
) -> Result<AnalyticReport, ConfigError> {
    let model = AnalyticModel::of(net, pattern, size)?;
    let findings = lints(&model, net, load);
    Ok(AnalyticReport { model, findings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    #[test]
    fn analyze_baseline_is_clean_and_summarizes() {
        let r =
            analyze(&NetConfig::baseline(), PatternKind::Uniform, SizeKind::Fixed(1), 0.2).unwrap();
        assert!(r.findings.is_empty());
        let line = r.one_line();
        assert!(line.contains("theta*"), "{line}");
        assert!(line.contains("T0"), "{line}");
    }

    #[test]
    fn analyze_surfaces_overload() {
        let r = analyze(
            &NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }),
            PatternKind::Uniform,
            SizeKind::Fixed(1),
            0.9,
        )
        .unwrap();
        assert!(r.findings.iter().any(|f| f.check == "channel-overload"));
    }
}
