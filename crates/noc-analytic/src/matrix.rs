//! Exact traffic matrices: the per-pair destination probabilities each
//! spatial pattern induces, derived in closed form (random patterns) or
//! by evaluating the pattern's own destination function (permutations).

use noc_sim::rng::SimRng;
use noc_traffic::PatternKind;

/// Dense `n x n` destination-probability matrix: `prob(src, dst)` is
/// the probability that a packet sourced at `src` targets `dst`. Every
/// row sums to 1; permutation patterns may place mass on the diagonal
/// (e.g. transpose fixed points), which corresponds to traffic that
/// never enters the network.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    p: Vec<f64>,
    permutation: bool,
}

impl TrafficMatrix {
    /// Derive the exact matrix for `pattern` on `nodes` nodes arranged
    /// `k x k` (the same instantiation contract as
    /// [`PatternKind::build`]).
    pub fn new(pattern: PatternKind, nodes: usize, k: usize) -> Self {
        let n = nodes;
        let mut p = vec![0.0f64; n * n];
        let mut permutation = true;
        match pattern {
            PatternKind::Uniform => {
                permutation = false;
                let w = 1.0 / (n - 1).max(1) as f64;
                for src in 0..n {
                    for dst in 0..n {
                        if src != dst {
                            p[src * n + dst] = w;
                        }
                    }
                }
            }
            PatternKind::Hotspot { node: hot, frac } => {
                permutation = false;
                // dest(): with probability `frac` (and src != hot) the
                // hot node, otherwise uniform excluding self.
                let w = 1.0 / (n - 1).max(1) as f64;
                for src in 0..n {
                    if src == hot {
                        for dst in 0..n {
                            if dst != src {
                                p[src * n + dst] = w;
                            }
                        }
                    } else {
                        for dst in 0..n {
                            if dst == hot {
                                p[src * n + dst] = frac + (1.0 - frac) * w;
                            } else if dst != src {
                                p[src * n + dst] = (1.0 - frac) * w;
                            }
                        }
                    }
                }
            }
            // Every remaining kind is a fixed permutation: its dest()
            // ignores the RNG, so one evaluation per source is exact.
            _ => {
                let pat = pattern.build(nodes, k);
                debug_assert!(pat.is_permutation());
                let mut rng = SimRng::new(0);
                for src in 0..n {
                    let dst = pat.dest(src, &mut rng);
                    p[src * n + dst] = 1.0;
                }
            }
        }
        Self { n, p, permutation }
    }

    /// True for fixed-permutation patterns: every source has exactly
    /// one destination, so the flows (under deterministic routing) are
    /// deterministic streams rather than random arrivals.
    pub fn is_permutation(&self) -> bool {
        self.permutation
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Probability that a packet sourced at `src` targets `dst`.
    pub fn prob(&self, src: usize, dst: usize) -> f64 {
        self.p[src * self.n + dst]
    }

    /// Fraction of all injected traffic that targets its own source
    /// (diagonal mass averaged over sources) — it consumes injection
    /// bandwidth but never loads a network channel.
    pub fn self_traffic(&self) -> f64 {
        (0..self.n).map(|s| self.prob(s, s)).sum::<f64>() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_sums_to_one(m: &TrafficMatrix) {
        for src in 0..m.nodes() {
            let sum: f64 = (0..m.nodes()).map(|d| m.prob(src, d)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {src} sums to {sum}");
        }
    }

    #[test]
    fn all_patterns_rows_sum_to_one() {
        for pat in [
            PatternKind::Uniform,
            PatternKind::Transpose,
            PatternKind::BitComplement,
            PatternKind::BitReversal,
            PatternKind::Shuffle,
            PatternKind::Tornado,
            PatternKind::Neighbor,
            PatternKind::Hotspot { node: 3, frac: 0.2 },
        ] {
            row_sums_to_one(&TrafficMatrix::new(pat, 16, 4));
        }
    }

    #[test]
    fn uniform_excludes_self() {
        let m = TrafficMatrix::new(PatternKind::Uniform, 16, 4);
        assert_eq!(m.self_traffic(), 0.0);
        assert!((m.prob(0, 1) - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_diagonal_is_self_traffic() {
        let m = TrafficMatrix::new(PatternKind::Transpose, 16, 4);
        // k = 4: nodes (i, i) are fixed points -> 4 of 16 sources
        assert!((m.self_traffic() - 4.0 / 16.0).abs() < 1e-12);
        // (1, 0) = node 1 -> (0, 1) = node 4
        assert_eq!(m.prob(1, 4), 1.0);
    }

    #[test]
    fn hotspot_concentrates_on_the_hot_node() {
        let m = TrafficMatrix::new(PatternKind::Hotspot { node: 7, frac: 0.5 }, 16, 4);
        let w = 1.0 / 15.0;
        assert!((m.prob(0, 7) - (0.5 + 0.5 * w)).abs() < 1e-12);
        assert!((m.prob(0, 1) - 0.5 * w).abs() < 1e-12);
        // the hot node itself sprays uniformly
        assert!((m.prob(7, 0) - w).abs() < 1e-12);
    }
}
