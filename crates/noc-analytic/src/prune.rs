//! Analytic grid pruning: use the model to decide which load-sweep
//! points need the simulator at all.

use noc_exp::PrunedGrid;
use noc_openloop::{measure, OpenLoopConfig, OpenLoopResult, SweepPoint};
use noc_sim::error::ConfigError;

use crate::model::{AnalyticModel, Confidence};

/// Run an open-loop load sweep, simulating only points whose verdict
/// the analytic model cannot call: those within `band` (relative) of
/// the predicted saturation throughput. Points clearly below get an
/// analytic stable result; points clearly above get an analytic
/// unstable one. A low-confidence model (adaptive routing) disables
/// pruning entirely and every point is simulated.
///
/// Simulated points are **bit-identical** to a full
/// [`noc_openloop::sweep`] over the same `loads`: each evaluates at its
/// original grid index, so the per-point derived RNG seed is unchanged.
/// Skipped points are marked in [`PrunedGrid::skipped`] and carry
/// model-synthesized results (zero `measured_packets`, no metrics).
///
/// `latency_cap` follows `saturation_throughput`'s contract (positive,
/// finite); `band` must be non-negative and finite.
pub fn sweep_pruned(
    base: &OpenLoopConfig,
    loads: &[f64],
    latency_cap: f64,
    band: f64,
) -> Result<PrunedGrid<SweepPoint>, ConfigError> {
    if !(latency_cap > 0.0 && latency_cap.is_finite()) {
        return Err(ConfigError::Parameter {
            name: "latency_cap",
            why: format!("pruned sweep needs a positive finite latency cap, got {latency_cap}"),
        });
    }
    if !(band >= 0.0 && band.is_finite()) {
        return Err(ConfigError::Parameter {
            name: "band",
            why: format!("pruned sweep needs a non-negative finite band, got {band}"),
        });
    }
    let model = AnalyticModel::of(&base.net, base.pattern, base.size)?;
    let sat = model.predicted_saturation(latency_cap);
    let prune = |_i: usize, &load: &f64| -> Option<SweepPoint> {
        if model.confidence == Confidence::Low {
            return None;
        }
        if (load - sat).abs() <= band * sat {
            return None; // too close to the predicted edge: simulate
        }
        Some(SweepPoint { load, result: synthesize(&model, load, sat, latency_cap) })
    };
    let eval = |i: usize, &load: &f64| -> SweepPoint {
        // identical to noc_openloop::sweep's per-point configuration:
        // base at `load` with the seed derived from the ORIGINAL index
        let mut cfg = base.clone().with_load(load);
        cfg.net.seed = noc_exp::derive_seed(base.net.seed, i as u64);
        let result = measure(&cfg).expect("sweep point must be a valid config");
        SweepPoint { load, result }
    };
    Ok(noc_exp::run_grid_pruned(loads, prune, eval))
}

/// Model-synthesized stand-in for a skipped measurement. Fields a
/// static model cannot know (percentiles, queue decomposition, metrics)
/// are zeroed or absent; `measured_packets == 0` marks the point as
/// analytic.
fn synthesize(model: &AnalyticModel, load: f64, sat: f64, latency_cap: f64) -> OpenLoopResult {
    let stable = load < sat;
    let latency = if stable {
        model.latency_at(load).unwrap_or(latency_cap).min(latency_cap)
    } else {
        latency_cap
    };
    OpenLoopResult {
        offered: load,
        avg_latency: latency,
        max_latency: latency,
        node_avg_latency: Vec::new(),
        worst_node_latency: latency,
        throughput: if stable { load } else { sat },
        latency_percentiles: None,
        latency_ci95: 0.0,
        avg_queue_time: 0.0,
        avg_network_time: latency,
        channel_imbalance: model.loads.imbalance(),
        measured_packets: 0,
        drained: stable,
        stable,
        cycles: 0,
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};

    fn base() -> OpenLoopConfig {
        OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
    }

    #[test]
    fn pruned_points_match_full_sweep_bit_for_bit() {
        let loads: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
        let full = noc_openloop::sweep(&base(), &loads);
        let pruned = sweep_pruned(&base(), &loads, 300.0, 0.25).unwrap();
        assert!(pruned.skipped_count() > 0, "expected the model to prune something");
        for (i, (p, f)) in pruned.results.iter().zip(&full).enumerate() {
            if pruned.skipped[i] {
                assert_eq!(p.result.measured_packets, 0, "skipped points are analytic");
                continue;
            }
            assert_eq!(
                p.result.avg_latency.to_bits(),
                f.result.avg_latency.to_bits(),
                "load {}",
                p.load
            );
            assert_eq!(p.result.throughput.to_bits(), f.result.throughput.to_bits());
            assert_eq!(p.result.stable, f.result.stable);
            assert_eq!(p.result.cycles, f.result.cycles);
        }
    }

    #[test]
    fn skipped_verdicts_agree_with_the_simulator() {
        let loads: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
        let full = noc_openloop::sweep(&base(), &loads);
        let pruned = sweep_pruned(&base(), &loads, 300.0, 0.25).unwrap();
        for (i, p) in pruned.results.iter().enumerate() {
            if pruned.skipped[i] {
                assert_eq!(
                    p.result.stable, full[i].result.stable,
                    "analytic verdict at load {} disagrees with the simulator",
                    p.load
                );
            }
        }
    }

    #[test]
    fn low_confidence_disables_pruning() {
        let mut cfg = base();
        cfg.net = cfg.net.with_routing(RoutingKind::MinAdaptive);
        let loads = [0.05, 0.2, 0.8];
        let pruned = sweep_pruned(&cfg, &loads, 300.0, 0.25).unwrap();
        assert_eq!(pruned.skipped_count(), 0, "adaptive model must simulate everything");
    }

    #[test]
    fn bad_parameters_rejected() {
        let loads = [0.1];
        assert!(sweep_pruned(&base(), &loads, f64::NAN, 0.2).is_err());
        assert!(sweep_pruned(&base(), &loads, 0.0, 0.2).is_err());
        assert!(sweep_pruned(&base(), &loads, 300.0, -0.1).is_err());
        assert!(sweep_pruned(&base(), &loads, 300.0, f64::INFINITY).is_err());
    }
}
