//! The calibration scan behind the model's flow-control efficiency
//! regime constants ([`noc_analytic::RANDOM_EFFICIENCY`] and friends).
//! Ignored by default — it simulates a minute's worth of bisection
//! searches. Rerun it when the router microarchitecture changes:
//!
//! ```text
//! cargo test --release -p noc-analytic --test calibrate -- --ignored --nocapture
//! ```
//!
//! `meas/ideal` is the empirical efficiency for each regime; if a
//! constant has drifted, the final assertion (the same 15% contract CI
//! enforces) fails.

use noc_analytic::AnalyticModel;
use noc_openloop::{saturation_throughput, OpenLoopConfig};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::{PatternKind, SizeKind};

#[test]
#[ignore]
fn calibration_scan() {
    let cases: Vec<(&str, NetConfig, PatternKind)> = vec![
        (
            "mesh4/uniform",
            NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            PatternKind::Uniform,
        ),
        (
            "mesh8/uniform",
            NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }),
            PatternKind::Uniform,
        ),
        (
            "torus4/uniform",
            NetConfig::baseline().with_topology(TopologyKind::Torus2D { k: 4 }),
            PatternKind::Uniform,
        ),
        (
            "torus8/uniform",
            NetConfig::baseline().with_topology(TopologyKind::Torus2D { k: 8 }),
            PatternKind::Uniform,
        ),
        (
            "mesh4/transpose",
            NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            PatternKind::Transpose,
        ),
        (
            "mesh8/transpose",
            NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }),
            PatternKind::Transpose,
        ),
        (
            "torus8/tornado",
            NetConfig::baseline().with_topology(TopologyKind::Torus2D { k: 8 }),
            PatternKind::Tornado,
        ),
        (
            "mesh8/hotspot",
            NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }),
            PatternKind::Hotspot { node: 27, frac: 0.2 },
        ),
    ];
    for (label, net, pat) in cases {
        let model = AnalyticModel::of(&net, pat, SizeKind::Fixed(1)).unwrap();
        let cfg = OpenLoopConfig {
            net: net.clone(),
            pattern: pat,
            warmup: 3_000,
            measure: 8_000,
            drain_max: 50_000,
            ..OpenLoopConfig::default()
        };
        let (lo, hi) = saturation_throughput(&cfg, 300.0, 0.02).unwrap();
        let measured = 0.5 * (lo + hi);
        let ideal = model.ideal_saturation;
        let pred = model.predicted_saturation(300.0);
        println!(
            "{label:16} ideal {ideal:.4}  pred {pred:.4}  measured {measured:.4}  \
             meas/ideal {:.3}  pred/meas {:.3}  T0 {:.1}",
            measured / ideal,
            pred / measured,
            model.zero_load_latency,
        );
        let rel_err = (pred - measured).abs() / measured;
        assert!(
            rel_err < 0.15,
            "{label}: rel err {:.1}% — a regime constant has drifted",
            100.0 * rel_err
        );
    }
}
