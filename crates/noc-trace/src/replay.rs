//! Trace replay: inject recorded packets at their recorded times,
//! regardless of network state — faithfully reproducing trace-driven
//! simulation *including* its causality blindness.

use std::collections::VecDeque;

use noc_sim::config::NetConfig;
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::{Network, NodeBehavior};
use noc_stats::OnlineStats;
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// The replaying [`NodeBehavior`]: per-source queues of records,
/// released when their recorded cycle arrives. An overloaded network
/// simply accumulates them in the (infinite) source queues — recorded
/// timestamps are never stretched, which is precisely the methodology's
/// documented weakness.
pub struct Replayer {
    queues: Vec<VecDeque<(Cycle, u32, u16, u8)>>,
    /// Per-packet latency relative to the *recorded* generation time.
    pub latency: OnlineStats,
    /// Cycle of the last delivery.
    pub last_delivery: Cycle,
    /// Packets delivered.
    pub delivered: u64,
}

impl Replayer {
    /// Build a replayer from a trace.
    pub fn new(trace: &Trace) -> Self {
        let mut queues = vec![VecDeque::new(); trace.nodes];
        for r in &trace.records {
            queues[r.src as usize].push_back((r.cycle, r.dst, r.size, r.class));
        }
        Self { queues, latency: OnlineStats::new(), last_delivery: 0, delivered: 0 }
    }
}

impl NodeBehavior for Replayer {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        let &(ready, dst, size, class) = self.queues[node].front()?;
        if ready > cycle {
            return None;
        }
        self.queues[node].pop_front();
        Some(PacketSpec { dst: dst as usize, size, class, payload: ready })
    }

    fn deliver(&mut self, _node: usize, d: &Delivered, cycle: Cycle) {
        // payload carries the recorded generation time
        self.latency.push((cycle - d.payload) as f64);
        self.last_delivery = cycle;
        self.delivered += 1;
    }

    fn quiescent(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

/// Result of replaying a trace on a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Cycle the last packet was delivered.
    pub runtime: u64,
    /// Average latency relative to recorded generation times.
    pub avg_latency: f64,
    /// Worst packet latency.
    pub max_latency: f64,
    /// Packets delivered.
    pub delivered: u64,
    /// True when the replay drained before the cycle cap.
    pub drained: bool,
}

/// Replay `trace` on a network configured by `net` (message classes are
/// sized to cover every class in the trace).
pub fn replay(net: &NetConfig, trace: &Trace) -> Result<ReplayResult, noc_sim::ConfigError> {
    let mut cfg = net.clone();
    let max_class = trace.records.iter().map(|r| r.class).max().unwrap_or(0);
    cfg.classes = cfg.classes.max(max_class as usize + 1);
    let mut network = Network::new(cfg)?;
    let mut rep = Replayer::new(trace);
    // generous cap: traces replayed on slower networks stretch, but a
    // replay can never legitimately exceed ~makespan + full drain
    let cap = trace.duration().max(1) * 4 + 1_000_000;
    let drained = network.drain(&mut rep, cap);
    Ok(ReplayResult {
        runtime: rep.last_delivery,
        avg_latency: rep.latency.mean(),
        max_latency: rep.latency.max().unwrap_or(0.0),
        delivered: rep.delivered,
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record_batch;
    use crate::trace::TraceRecord;
    use noc_closedloop::BatchConfig;
    use noc_sim::config::TopologyKind;

    fn net4() -> NetConfig {
        NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 })
    }

    #[test]
    fn replay_delivers_everything() {
        let mut trace = Trace::new(16);
        for i in 0..50u64 {
            trace.push(TraceRecord {
                cycle: i,
                src: (i % 16) as u32,
                dst: ((i * 7 + 3) % 16) as u32,
                size: 1 + (i % 3) as u16,
                class: 0,
            });
        }
        let r = replay(&net4(), &trace).unwrap();
        assert!(r.drained);
        assert_eq!(r.delivered, 50);
        assert!(r.runtime >= trace.duration());
        assert!(r.avg_latency > 0.0 && r.max_latency >= r.avg_latency);
    }

    #[test]
    fn replay_of_batch_trace_matches_closed_loop_on_same_network() {
        let cfg =
            BatchConfig { net: net4(), batch: 60, max_outstanding: 2, ..BatchConfig::default() };
        let (trace, closed_rt) = record_batch(&cfg).unwrap();
        let r = replay(&cfg.net, &trace).unwrap();
        assert!(r.drained);
        assert_eq!(r.delivered as usize, trace.len());
        let ratio = r.runtime as f64 / closed_rt as f64;
        assert!((0.85..1.15).contains(&ratio), "same-network replay ratio {ratio}");
    }

    #[test]
    fn replay_ignores_causality_and_underestimates_degradation() {
        // the paper's core criticism of trace-driven evaluation: capture
        // at tr=1, replay at tr=8 — the trace keeps injecting on the
        // tr=1 schedule, so the measured runtime barely grows, while the
        // closed-loop model slows dramatically.
        let base =
            BatchConfig { net: net4(), batch: 80, max_outstanding: 1, ..BatchConfig::default() };
        let (trace, closed_rt1) = record_batch(&base).unwrap();

        let slow_cfg = BatchConfig { net: base.net.clone().with_router_delay(8), ..base.clone() };
        let closed_rt8 = noc_closedloop::run_batch(&slow_cfg).unwrap().runtime;
        let closed_slowdown = closed_rt8 as f64 / closed_rt1 as f64;

        let replay_rt8 = replay(&slow_cfg.net, &trace).unwrap().runtime;
        let replay_slowdown = replay_rt8 as f64 / closed_rt1 as f64;

        assert!(closed_slowdown > 2.0, "closed loop must feel tr=8: {closed_slowdown}");
        assert!(
            replay_slowdown < 0.6 * closed_slowdown,
            "trace replay should hide most of the degradation: replay {replay_slowdown:.2} \
             vs closed {closed_slowdown:.2}"
        );
    }

    #[test]
    fn empty_trace_replays_trivially() {
        let r = replay(&net4(), &Trace::new(16)).unwrap();
        assert!(r.drained);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.avg_latency, 0.0);
    }
}
