//! Trace capture: wrap any [`NodeBehavior`] and record every packet it
//! generates.

use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::NodeBehavior;

use crate::trace::{Trace, TraceRecord};

/// Wraps a workload and records its packet generations. Capture order
/// follows the engine's per-cycle node sweep, so records are in
/// non-decreasing cycle order automatically.
pub struct Recorder<B> {
    /// The wrapped workload.
    pub inner: B,
    /// The trace being captured.
    pub trace: Trace,
}

impl<B: NodeBehavior> Recorder<B> {
    /// Start recording around `inner` for a `nodes`-node network.
    pub fn new(inner: B, nodes: usize) -> Self {
        Self { inner, trace: Trace::new(nodes) }
    }

    /// Finish and take the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<B: NodeBehavior> NodeBehavior for Recorder<B> {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        let spec = self.inner.pull(node, cycle)?;
        self.trace.push(TraceRecord {
            cycle,
            src: node as u32,
            dst: spec.dst as u32,
            size: spec.size,
            class: spec.class,
        });
        Some(spec)
    }

    fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
        self.inner.deliver(node, d, cycle);
    }

    fn quiescent(&self) -> bool {
        self.inner.quiescent()
    }
}

/// Convenience: run the batch model once while capturing its trace.
/// Returns the trace and the closed-loop runtime it exhibited.
pub fn record_batch(
    cfg: &noc_closedloop::BatchConfig,
) -> Result<(Trace, u64), noc_sim::ConfigError> {
    use noc_sim::network::Network;

    let mut net_cfg = cfg.net.clone();
    net_cfg.classes = 2;
    let mut net = Network::new(net_cfg)?;
    let nodes = net.num_nodes();
    let k = net.topo().radix(0);
    let behavior = noc_closedloop::BatchBehavior::new(cfg, nodes, k);
    let mut rec = Recorder::new(behavior, nodes);
    net.drain(&mut rec, cfg.max_cycles);
    let runtime = rec.inner.runtime();
    Ok((rec.into_trace(), runtime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_closedloop::BatchConfig;
    use noc_sim::config::{NetConfig, TopologyKind};

    #[test]
    fn batch_trace_captures_requests_and_replies() {
        let cfg = BatchConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            batch: 25,
            max_outstanding: 2,
            ..BatchConfig::default()
        };
        let (trace, runtime) = record_batch(&cfg).unwrap();
        assert_eq!(trace.nodes, 16);
        assert_eq!(trace.len() as u64, 2 * 16 * 25);
        assert!(runtime > 0);
        assert!(trace.duration() <= runtime);
        // both classes present
        assert!(trace.records.iter().any(|r| r.class == 0));
        assert!(trace.records.iter().any(|r| r.class == 1));
    }

    #[test]
    fn trace_timing_reflects_feedback() {
        // an m=1 trace has request gaps >= the round-trip time; the same
        // batch at m=8 packs requests much closer together
        let gap = |m: usize| {
            let cfg = BatchConfig {
                net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
                batch: 30,
                max_outstanding: m,
                ..BatchConfig::default()
            };
            let (trace, _) = record_batch(&cfg).unwrap();
            // average inter-request gap at node 0
            let cycles: Vec<u64> = trace
                .records
                .iter()
                .filter(|r| r.src == 0 && r.class == 0)
                .map(|r| r.cycle)
                .collect();
            let span = cycles.last().unwrap() - cycles[0];
            span as f64 / (cycles.len() - 1) as f64
        };
        assert!(gap(1) > 2.0 * gap(8), "m=1 gap {} vs m=8 gap {}", gap(1), gap(8));
    }
}
