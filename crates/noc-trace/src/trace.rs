//! The trace format: one record per packet generation event.

use noc_sim::flit::Cycle;
use serde::{Deserialize, Serialize};

/// One captured packet-generation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Generation cycle in the captured run.
    pub cycle: Cycle,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Packet length in flits.
    pub size: u16,
    /// Message class (preserved so replays keep VC partitioning).
    pub class: u8,
}

/// A captured packet trace: the paper's "abstract information of
/// network packets such as the timestamp, packet size, and source and
/// destination".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Number of nodes in the captured network.
    pub nodes: usize,
    /// Records in capture order (non-decreasing `cycle`).
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { nodes, records: Vec::new() }
    }

    /// Append a record (must be pushed in non-decreasing cycle order).
    pub fn push(&mut self, rec: TraceRecord) {
        debug_assert!(
            self.records.last().is_none_or(|last| last.cycle <= rec.cycle),
            "trace records must be captured in time order"
        );
        self.records.push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no packets were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Cycle of the last generation event (the trace's makespan lower
    /// bound).
    pub fn duration(&self) -> Cycle {
        self.records.last().map_or(0, |r| r.cycle)
    }

    /// Total flits across all records.
    pub fn total_flits(&self) -> u64 {
        self.records.iter().map(|r| r.size as u64).sum()
    }

    /// Serialize to a compact line-oriented text format
    /// (`cycle src dst size class` per line, header `nodes N`).
    pub fn to_text(&self) -> String {
        let mut out = format!("nodes {}\n", self.nodes);
        for r in &self.records {
            out.push_str(&format!("{} {} {} {} {}\n", r.cycle, r.src, r.dst, r.size, r.class));
        }
        out
    }

    /// Parse the text format produced by [`Trace::to_text`].
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut lines = s.lines();
        let header = lines.next().ok_or("empty trace")?;
        let nodes = header
            .strip_prefix("nodes ")
            .ok_or("missing `nodes` header")?
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("bad node count: {e}"))?;
        let mut trace = Trace::new(nodes);
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let mut next = |what: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("line {}: missing {what}", i + 2))?
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", i + 2))
            };
            let rec = TraceRecord {
                cycle: next("cycle")?,
                src: next("src")? as u32,
                dst: next("dst")? as u32,
                size: next("size")? as u16,
                class: next("class")? as u8,
            };
            if rec.src as usize >= nodes || rec.dst as usize >= nodes {
                return Err(format!("line {}: node out of range", i + 2));
            }
            trace.push(rec);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, src: u32, dst: u32) -> TraceRecord {
        TraceRecord { cycle, src, dst, size: 1, class: 0 }
    }

    #[test]
    fn push_and_stats() {
        let mut t = Trace::new(4);
        assert!(t.is_empty());
        t.push(rec(0, 0, 1));
        t.push(TraceRecord { cycle: 5, src: 2, dst: 3, size: 4, class: 1 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.duration(), 5);
        assert_eq!(t.total_flits(), 5);
    }

    #[test]
    fn text_roundtrip() {
        let mut t = Trace::new(8);
        t.push(rec(0, 0, 7));
        t.push(rec(3, 1, 2));
        t.push(TraceRecord { cycle: 9, src: 5, dst: 6, size: 4, class: 1 });
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.nodes, 8);
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("nodes x\n").is_err());
        assert!(Trace::from_text("nodes 4\n1 9 0 1 0\n").is_err(), "src out of range");
        assert!(Trace::from_text("nodes 4\n1 0\n").is_err(), "truncated line");
        assert!(Trace::from_text("nodes 4\n\n1 0 1 1 0\n").is_ok(), "blank lines ok");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_order_push_panics_in_debug() {
        let mut t = Trace::new(2);
        t.push(rec(5, 0, 1));
        t.push(rec(3, 1, 0));
    }
}
