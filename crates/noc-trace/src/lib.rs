//! # noc-trace — trace-driven NoC simulation
//!
//! The third evaluation methodology in the paper's taxonomy (Section
//! II): capture the packet stream of an execution- or model-driven run
//! once, then replay it on network variants much faster. The crate also
//! makes the methodology's *limitation* reproducible: "since the traces
//! are captured in advance, feedback from the network does not affect
//! the workload and ignores the causality of messages" — a replayed
//! trace injects packets at their recorded times no matter how slow the
//! network under test is, so it underestimates the runtime impact of
//! network degradation that a closed-loop model captures
//! (see the `ext_trace` experiment in `noc-eval`).
//!
//! ```
//! use noc_sim::config::{NetConfig, TopologyKind};
//! use noc_closedloop::BatchConfig;
//! use noc_trace::{record_batch, replay};
//!
//! let cfg = BatchConfig {
//!     net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
//!     batch: 20,
//!     max_outstanding: 2,
//!     ..BatchConfig::default()
//! };
//! let (trace, closed_runtime) = record_batch(&cfg).unwrap();
//! assert_eq!(trace.records.len() as u64, 2 * 16 * 20); // requests + replies
//! let result = replay(&cfg.net, &trace).unwrap();
//! // replay of the same network tracks the closed-loop runtime closely
//! let ratio = result.runtime as f64 / closed_runtime as f64;
//! assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
//! ```

#![warn(missing_docs)]

mod record;
mod replay;
mod trace;

pub use record::{record_batch, Recorder};
pub use replay::{replay, ReplayResult, Replayer};
pub use trace::{Trace, TraceRecord};
