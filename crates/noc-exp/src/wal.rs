//! Keyed write-ahead journal for long-running services.
//!
//! [`crate::run_grid_journal`]'s journal is indexed by grid position —
//! right for one grid, useless for a service that answers arbitrary
//! interleaved requests. [`Wal`] generalizes it to an append-only,
//! *keyed* record log with the durability properties a crash-tolerant
//! service needs:
//!
//! * **Atomic append** — each record is one `write(2)` of one complete
//!   line to an `O_APPEND` descriptor, so concurrent appenders (the
//!   worker pool) never interleave bytes and a crash can only lose or
//!   tear the *final* record, never corrupt an earlier one.
//! * **Torn-tail recovery** — on open, a partial final record (no
//!   trailing newline: the signature of `SIGKILL` or power loss mid
//!   `write`) is detected, reported, and **truncated away**, so the next
//!   append starts on a clean line instead of gluing new data onto
//!   garbage.
//! * **Batched fsync** — appends are flushed to the OS immediately
//!   (surviving process death) and `fsync`ed every
//!   [`WAL_SYNC_BATCH`] records and at every [`Wal::commit`] (batch
//!   boundary), bounding what a *machine* crash can lose without paying
//!   a disk round-trip per record.
//!
//! Records are `(key, payload)` string pairs, tab-separated with the
//! same escaping as the grid journal; replay returns them in append
//! order so "last record wins" deduplication is the caller's one-liner
//! ([`WalReplay::into_map`]).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::robust::{escape, unescape};

/// Appends between automatic `fsync`s: a machine crash loses at most
/// this many acknowledged records (a process crash loses none past the
/// OS page cache). [`Wal::commit`] forces the sync earlier at batch
/// boundaries.
pub const WAL_SYNC_BATCH: usize = 64;

/// What [`Wal::open`] recovered from an existing journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Every parseable `(key, payload)` record, in append order.
    pub records: Vec<(String, String)>,
    /// Complete lines that failed to parse (foreign schema, bit rot).
    /// They are skipped, not fatal: their keys simply recompute.
    pub corrupt: usize,
    /// True when the file ended in a partial record (no trailing
    /// newline) — the expected signature of a `SIGKILL` mid-append. The
    /// torn bytes were truncated away before reopening for append.
    pub torn_tail: bool,
}

impl WalReplay {
    /// Collapse the replay into a key → payload map, last record wins.
    pub fn into_map(self) -> HashMap<String, String> {
        self.records.into_iter().collect()
    }
}

/// Read a line-oriented journal tolerantly: all complete lines, plus
/// whether a torn (newline-less) final record was present and dropped.
/// Non-UTF8 bytes are replaced, which makes the affected line fail its
/// record parse and be skipped — never a panic.
pub(crate) fn read_lines_tolerant(path: &Path) -> std::io::Result<(Vec<String>, bool)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let text = String::from_utf8_lossy(&bytes);
    let torn = !text.is_empty() && !text.ends_with('\n');
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if torn {
        lines.pop();
    }
    Ok((lines, torn))
}

struct WalInner {
    file: std::fs::File,
    unsynced: usize,
    records: u64,
}

/// A keyed, crash-tolerant, append-only journal (see module docs).
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
}

fn parse_record(line: &str) -> Option<(String, String)> {
    let (k, v) = line.split_once('\t')?;
    Some((unescape(k)?, unescape(v)?))
}

impl Wal {
    /// Open (creating if absent) the journal at `path`, replaying every
    /// complete record and truncating a torn final record so appends
    /// resume on a clean line.
    pub fn open(path: &Path) -> std::io::Result<(Self, WalReplay)> {
        let mut records = Vec::new();
        let mut corrupt = 0usize;
        let mut torn_tail = false;
        if path.exists() {
            let mut bytes = Vec::new();
            std::fs::File::open(path)?.read_to_end(&mut bytes)?;
            // valid region: everything up to and including the last
            // newline; anything past it is a torn record
            let valid_len = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
            torn_tail = valid_len < bytes.len();
            for line in String::from_utf8_lossy(&bytes[..valid_len]).lines() {
                match parse_record(line) {
                    Some(kv) => records.push(kv),
                    None => corrupt += 1,
                }
            }
            if torn_tail {
                // drop the torn bytes before reopening for append
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(valid_len as u64)?;
                f.sync_data()?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let n = records.len() as u64;
        Ok((
            Self {
                path: path.to_path_buf(),
                inner: Mutex::new(WalInner { file, unsynced: 0, records: n }),
            },
            WalReplay { records, corrupt, torn_tail },
        ))
    }

    /// Append one record. The escaped line is written with a single
    /// `write` call on an append-mode descriptor (atomic with respect
    /// to other appenders); the OS has the bytes when this returns, and
    /// an `fsync` happens automatically every [`WAL_SYNC_BATCH`]
    /// appends.
    pub fn append(&self, key: &str, payload: &str) -> std::io::Result<()> {
        let line = format!("{}\t{}\n", escape(key), escape(payload));
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.file.write_all(line.as_bytes())?;
        g.records += 1;
        g.unsynced += 1;
        if g.unsynced >= WAL_SYNC_BATCH {
            g.file.sync_data()?;
            g.unsynced = 0;
        }
        Ok(())
    }

    /// Force an `fsync` of any unsynced appends — called at batch
    /// boundaries (end of a request batch, graceful shutdown) so
    /// durability lines up with the points the service has acknowledged.
    pub fn commit(&self) -> std::io::Result<()> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.unsynced > 0 {
            g.file.sync_data()?;
            g.unsynced = 0;
        }
        Ok(())
    }

    /// Records written over the journal's lifetime (replayed + appended).
    pub fn records(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).records
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current on-disk size in bytes (diagnostics; 0 if unreadable).
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noc_exp_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round_trip.wal");
        {
            let (wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty() && !replay.torn_tail);
            wal.append("k1", "payload one").unwrap();
            wal.append("k2", "tabs\tand\nnewlines\\").unwrap();
            wal.append("k1", "updated").unwrap();
            wal.commit().unwrap();
            assert_eq!(wal.records(), 3);
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.corrupt, 0);
        assert!(!replay.torn_tail);
        assert_eq!(
            replay.records,
            vec![
                ("k1".into(), "payload one".into()),
                ("k2".into(), "tabs\tand\nnewlines\\".into()),
                ("k1".into(), "updated".into()),
            ]
        );
        let map = replay.into_map();
        assert_eq!(map.get("k1").map(String::as_str), Some("updated"), "last record wins");
        assert_eq!(wal.records(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = tmp("torn.wal");
        {
            let (wal, _) = Wal::open(&path).unwrap();
            wal.append("a", "1").unwrap();
            wal.append("b", "2").unwrap();
            wal.commit().unwrap();
        }
        // simulate SIGKILL mid-append: a partial record with no newline
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"c\thalf-writ").unwrap();
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.torn_tail, "partial final record must be detected");
        assert_eq!(replay.corrupt, 0, "a torn tail is tolerated, not counted as corruption");
        assert_eq!(replay.records.len(), 2);
        wal.append("c", "rewritten").unwrap();
        wal.commit().unwrap();
        drop(wal);
        // the torn bytes are gone: the new record is intact, not glued
        // onto the old partial line
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.corrupt, 0);
        assert_eq!(replay.records.last().unwrap(), &("c".into(), "rewritten".into()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_skipped_and_counted() {
        let path = tmp("corrupt.wal");
        std::fs::write(&path, "a\t1\nnot a record line\nb\t2\n").unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.corrupt, 1);
        assert_eq!(replay.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_opens_empty() {
        let path = tmp("fresh.wal");
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay, WalReplay { records: vec![], corrupt: 0, torn_tail: false });
        assert_eq!(wal.records(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
