//! Grid progress telemetry: per-point completion events with elapsed
//! time, completion rate, and an ETA, emitted to stderr while a sweep
//! runs.
//!
//! Long paper-scale grids previously ran silent for minutes; the only
//! sign of life was the journal file growing. [`Progress`] gives the
//! robust and journal runners a heartbeat without touching results:
//! it only *counts* completions, so enabling or disabling it cannot
//! change what a sweep computes.
//!
//! Emission policy: `NOC_PROGRESS=1` forces lines on, `NOC_PROGRESS=0`
//! forces them off, and with the variable unset lines appear only when
//! stderr is a terminal — so CI logs and test harnesses stay clean by
//! default while an interactive run gets feedback. Lines are throttled
//! to one every few hundred milliseconds (plus a final one at 100%) so
//! a grid of ten thousand cheap points cannot flood the console.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum gap between two emitted progress lines.
const THROTTLE: Duration = Duration::from_millis(250);

/// Decide whether to emit given the `NOC_PROGRESS` value (if any) and
/// whether stderr is a terminal. Split out from the environment for
/// testability: `"0"`/`"false"`/`"off"` disable, any other non-empty
/// value enables, unset falls back to the terminal check.
pub(crate) fn emission_policy(var: Option<&str>, stderr_is_terminal: bool) -> bool {
    match var.map(str::trim) {
        Some("0") | Some("false") | Some("off") => false,
        Some("") | None => stderr_is_terminal,
        Some(_) => true,
    }
}

/// Render one progress line; pure so the format is testable.
pub(crate) fn status_line(label: &str, done: usize, total: usize, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
    let pct = if total > 0 { 100.0 * done as f64 / total as f64 } else { 100.0 };
    let eta = if rate > 0.0 && done < total {
        format!("{:.0}s", (total - done) as f64 / rate)
    } else {
        "--".to_string()
    };
    format!(
        "{label}: {done}/{total} points ({pct:.0}%) | {rate:.1} pts/s | elapsed {secs:.1}s | eta {eta}"
    )
}

/// Render the end-of-grid throughput summary; pure for testability.
pub(crate) fn summary_line(label: &str, total: usize, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 { total as f64 / secs } else { 0.0 };
    format!("{label}: {total} points in {secs:.1}s ({rate:.1} pts/s)")
}

/// A thread-safe grid progress meter.
///
/// Workers call [`Progress::point_done`] as each point completes (from
/// any thread); the meter throttles and prints to stderr when emission
/// is enabled. Call [`Progress::finish`] once at the end for the
/// throughput summary; it also *returns* the summary line so callers
/// (bench binaries, reports) can log it elsewhere.
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    emit: bool,
    last_emit: Mutex<Instant>,
}

impl Progress {
    /// A meter with explicit emission control (no environment access).
    pub fn new(label: &str, total: usize, emit: bool) -> Self {
        let now = Instant::now();
        Self {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(0),
            started: now,
            emit,
            // backdate so the very first completion may emit immediately
            last_emit: Mutex::new(now.checked_sub(THROTTLE).unwrap_or(now)),
        }
    }

    /// A meter whose emission follows `NOC_PROGRESS` / the terminal
    /// check described at the module level.
    pub fn from_env(label: &str, total: usize) -> Self {
        let var = std::env::var("NOC_PROGRESS").ok();
        let emit = emission_policy(var.as_deref(), std::io::stderr().is_terminal());
        Self::new(label, total, emit)
    }

    /// Record one completed point; possibly emit a throttled line.
    pub fn point_done(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.emit {
            return;
        }
        let now = Instant::now();
        let mut last = self.last_emit.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if done < self.total && now.duration_since(*last) < THROTTLE {
            return;
        }
        *last = now;
        drop(last);
        eprintln!("{}", status_line(&self.label, done, self.total, self.started.elapsed()));
    }

    /// Points completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Emit (when enabled) and return the throughput summary line.
    pub fn finish(&self) -> String {
        let line = summary_line(&self.label, self.completed(), self.started.elapsed());
        if self.emit {
            eprintln!("{line}");
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_policy_honors_override_then_terminal() {
        assert!(!emission_policy(Some("0"), true));
        assert!(!emission_policy(Some("false"), true));
        assert!(!emission_policy(Some("off"), true));
        assert!(emission_policy(Some("1"), false));
        assert!(emission_policy(Some("yes"), false));
        assert!(emission_policy(None, true));
        assert!(!emission_policy(None, false));
        assert!(emission_policy(Some(""), true), "empty value falls back to the terminal check");
    }

    #[test]
    fn status_line_reports_rate_and_eta() {
        let line = status_line("sweep", 25, 100, Duration::from_secs(5));
        assert_eq!(line, "sweep: 25/100 points (25%) | 5.0 pts/s | elapsed 5.0s | eta 15s");
        let done = status_line("sweep", 100, 100, Duration::from_secs(10));
        assert!(done.contains("100/100"));
        assert!(done.contains("eta --"), "{done}");
        let zero = status_line("s", 0, 0, Duration::ZERO);
        assert!(zero.contains("(100%)"), "empty grid is trivially complete: {zero}");
    }

    #[test]
    fn summary_line_reports_throughput() {
        let line = summary_line("grid", 40, Duration::from_secs(8));
        assert_eq!(line, "grid: 40 points in 8.0s (5.0 pts/s)");
    }

    #[test]
    fn meter_counts_from_many_threads_without_emitting() {
        let p = Progress::new("t", 64, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        p.point_done();
                    }
                });
            }
        });
        assert_eq!(p.completed(), 64);
        assert!(p.finish().contains("64 points"));
    }
}
