//! # noc-exp — the experiment engine
//!
//! Independent simulation points (sweep loads, batch replicates, figure
//! grids) are embarrassingly parallel: each builds its own `Network`,
//! draws from its own RNG, and shares nothing. This crate fans such
//! points out across OS threads while keeping results **bit-identical
//! to serial execution**:
//!
//! * [`run_grid`] evaluates `f(i, &points[i])` for every point on a
//!   work-stealing pool and returns results in point order — the
//!   schedule affects only *when* a point runs, never its inputs, so
//!   parallel output equals serial output exactly.
//! * [`derive_seed`] derives a per-point RNG seed from `(base seed,
//!   point index)` with a SplitMix64 mix. Experiment drivers seed point
//!   `i` with `derive_seed(base, i)` in both their serial and parallel
//!   paths, which (a) decorrelates points that previously shared one
//!   seed and (b) makes determinism independent of evaluation order.
//! * [`run_grid_pruned`] adds a cheap serial pre-pass (e.g. the
//!   `noc-analytic` model) that can answer points outright; only the
//!   remaining points are simulated, each under its original index so
//!   evaluated results stay bit-identical to the unpruned grid.
//!
//! The build environment has no registry access, so instead of rayon
//! this is a ~100-line scoped-thread pool. The thread count honors
//! `NOC_THREADS`, then rayon's conventional `RAYON_NUM_THREADS`, then
//! the machine's available parallelism; `NOC_THREADS=1` forces the
//! exact serial code path (useful for timing and for bisecting any
//! suspected parallelism bug).

#![warn(missing_docs)]

pub mod progress;
pub mod robust;
pub mod wal;

pub use progress::Progress;
pub use robust::{run_grid_journal, run_grid_robust, Diverged, PointCodec, PointOutcome};
pub use wal::{Wal, WalReplay};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One warning per process about a malformed thread-count variable, so
/// a typo cannot silently change the parallelism *and* cannot spam
/// stderr once per grid either.
static THREADS_WARNED: std::sync::Once = std::sync::Once::new();

/// Read one worker-count environment variable: `Some(n)` for a positive
/// integer, `None` when unset **or** malformed. A malformed value (not a
/// positive integer) warns once per process — the shared behavior of
/// every worker-count override in this workspace (`NOC_THREADS`,
/// `RAYON_NUM_THREADS`, `NOC_SERVE_WORKERS`), so a typo never silently
/// changes the parallelism.
fn env_workers(var: &str) -> Option<usize> {
    let s = std::env::var(var).ok()?;
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            THREADS_WARNED.call_once(|| {
                eprintln!(
                    "noc-exp: ignoring {var}={s:?} (not a positive integer); \
                     falling back to the next thread-count source"
                );
            });
            None
        }
    }
}

/// Number of worker threads the engine will use.
///
/// Resolution order: `NOC_THREADS`, `RAYON_NUM_THREADS`, available
/// hardware parallelism, 1. A value that fails to parse (or is 0) falls
/// through to the next source — with a one-line stderr warning naming
/// the variable and the bad value, so a typo like `NOC_THREADS=fuor`
/// does not silently run at a different width.
pub fn threads() -> usize {
    ["NOC_THREADS", "RAYON_NUM_THREADS"]
        .into_iter()
        .find_map(env_workers)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Worker-pool width for the long-running evaluation service
/// (`noc-serve`): `NOC_SERVE_WORKERS` when set and valid, else the
/// regular [`threads`] resolution. Malformed values warn once and fall
/// through, exactly like the other worker-count variables (the parsing
/// is shared, not duplicated).
pub fn serve_workers() -> usize {
    env_workers("NOC_SERVE_WORKERS").unwrap_or_else(threads)
}

/// Derive the RNG seed of grid point `index` from `base`.
///
/// SplitMix64 finalizer over `base + (index+1) * golden-gamma`: cheap,
/// stateless, and well-mixed, so adjacent indices produce uncorrelated
/// streams and `derive_seed(base, 0) != base` (point 0 is *not* the
/// legacy shared-seed stream). Every experiment driver — serial or
/// parallel — must use this same derivation for results to agree.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluate `eval(i, &points[i])` for every grid point, in parallel,
/// returning results in point order.
///
/// Workers pull the next unclaimed index from a shared atomic counter
/// (work stealing at point granularity), so an expensive point never
/// serializes the cheap ones behind it. With one worker (or one point)
/// no threads are spawned and the loop runs inline.
///
/// # Panics
/// Propagates a panic from `eval` (the scope unwinds once every other
/// in-flight point finishes).
pub fn run_grid<T, R, F>(points: &[T], eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_grid_with(points, threads(), eval)
}

/// [`run_grid`] with an explicit worker count instead of the
/// [`threads`] environment resolution — the building block for callers
/// that manage their own pool width (the evaluation service sizes its
/// pool from [`serve_workers`]). `workers` is clamped to at least 1;
/// results are bit-identical to serial execution for any width, exactly
/// as for [`run_grid`].
pub fn run_grid_with<T, R, F>(points: &[T], workers: usize, eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = points.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return points.iter().enumerate().map(|(i, p)| eval(i, p)).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, eval(i, &points[i])));
                }
                // merge under the lock only after all work is done, so
                // workers never contend mid-computation
                done.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend(local);
            });
        }
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in done.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every grid index evaluated exactly once")).collect()
}

/// Result of [`run_grid_pruned`]: every point's result plus which
/// points were answered by the (cheap) prune pass instead of being
/// evaluated.
#[derive(Debug, Clone)]
pub struct PrunedGrid<R> {
    /// One result per input point, in point order. Pruned points carry
    /// the prune closure's answer; the rest carry `eval`'s.
    pub results: Vec<R>,
    /// `skipped[i]` is true iff point `i` was answered by the prune
    /// pass (i.e. `eval` never ran for it).
    pub skipped: Vec<bool>,
}

impl<R> PrunedGrid<R> {
    /// Number of points answered without evaluation.
    pub fn skipped_count(&self) -> usize {
        self.skipped.iter().filter(|&&s| s).count()
    }

    /// Number of points that were actually evaluated.
    pub fn evaluated_count(&self) -> usize {
        self.skipped.len() - self.skipped_count()
    }

    /// One-line `"simulated X of Y points (Z skipped)"` summary.
    pub fn summary(&self) -> String {
        format!(
            "simulated {} of {} points ({} skipped by the analytic model)",
            self.evaluated_count(),
            self.skipped.len(),
            self.skipped_count()
        )
    }
}

/// [`run_grid`] with a cheap pre-pass that can answer points without
/// evaluating them.
///
/// `prune(i, &points[i])` runs serially first (it is expected to cost
/// microseconds — e.g. an analytic model); every `Some(result)` answers
/// that point outright. Only the `None` points are then evaluated via
/// [`run_grid`], **with their original point indices**, so an evaluated
/// point's result is bit-identical to what the unpruned grid would have
/// produced for it (seed derivation keys on the index, not on the
/// schedule).
pub fn run_grid_pruned<T, R, P, F>(points: &[T], prune: P, eval: F) -> PrunedGrid<R>
where
    T: Sync,
    R: Send,
    P: Fn(usize, &T) -> Option<R>,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = points.iter().map(|_| None).collect();
    let mut skipped = vec![false; points.len()];
    let mut to_eval: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        match prune(i, p) {
            Some(r) => {
                slots[i] = Some(r);
                skipped[i] = true;
            }
            None => to_eval.push(i),
        }
    }
    let evaluated = run_grid(&to_eval, |_, &i| eval(i, &points[i]));
    for (&i, r) in to_eval.iter().zip(evaluated) {
        slots[i] = Some(r);
    }
    PrunedGrid {
        results: slots.into_iter().map(|r| r.expect("every point answered")).collect(),
        skipped,
    }
}

/// Run two independent closures concurrently and return both results.
///
/// The heterogeneous companion to [`run_grid`] — e.g. an open-loop
/// measurement and a closed-loop batch run of the same configuration.
/// With a single thread available, `a` then `b` run inline.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join arm panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_serial_map_in_order() {
        let points: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = points.iter().map(|&p| p * p + 1).collect();
        let parallel = run_grid(&points, |_, &p| p * p + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_passes_the_point_index() {
        let points = vec!["a", "b", "c"];
        let out = run_grid(&points, |i, &p| format!("{i}{p}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn grid_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_grid(&empty, |_, &x| x).is_empty());
        assert_eq!(run_grid(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "seed collisions");
        assert_ne!(derive_seed(42, 0), 42, "point 0 must not reuse the base seed");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed must matter");
    }

    #[test]
    fn pruned_grid_matches_unpruned_on_evaluated_points() {
        let points: Vec<u64> = (0..50).collect();
        let full = run_grid(&points, |i, &p| (i as u64) * 1000 + p);
        // prune every even point with a sentinel answer
        let pruned = run_grid_pruned(
            &points,
            |_, &p| (p % 2 == 0).then_some(u64::MAX - p),
            |i, &p| (i as u64) * 1000 + p,
        );
        assert_eq!(pruned.skipped_count(), 25);
        assert_eq!(pruned.evaluated_count(), 25);
        for (i, &p) in points.iter().enumerate() {
            if pruned.skipped[i] {
                assert_eq!(pruned.results[i], u64::MAX - p);
            } else {
                // evaluated with the original index => bit-identical
                assert_eq!(pruned.results[i], full[i]);
            }
        }
        assert!(pruned.summary().contains("25 of 50"));
    }

    #[test]
    fn pruned_grid_handles_all_and_none_skipped() {
        let points: Vec<u32> = (0..9).collect();
        let all = run_grid_pruned(&points, |_, &p| Some(p), |_, &p| p + 100);
        assert_eq!(all.skipped_count(), 9);
        assert_eq!(all.results, points);
        let none = run_grid_pruned(&points, |_, _| None::<u32>, |_, &p| p + 100);
        assert_eq!(none.skipped_count(), 0);
        assert!(none.results.iter().zip(&points).all(|(&r, &p)| r == p + 100));
    }

    #[test]
    fn run_grid_with_matches_serial_at_any_width() {
        let points: Vec<u64> = (0..41).collect();
        let serial: Vec<u64> = points.iter().map(|&p| p * 7 + 3).collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            assert_eq!(run_grid_with(&points, workers, |_, &p| p * 7 + 3), serial);
        }
    }

    #[test]
    fn serve_workers_honors_its_override_and_falls_back_when_malformed() {
        // NOC_SERVE_WORKERS is read only by serve_workers(), so this
        // cannot race with the grid tests (which resolve via threads()).
        std::env::set_var("NOC_SERVE_WORKERS", "3");
        assert_eq!(serve_workers(), 3);
        std::env::set_var("NOC_SERVE_WORKERS", "three");
        assert_eq!(serve_workers(), threads(), "malformed value must fall back to threads()");
        std::env::set_var("NOC_SERVE_WORKERS", "0");
        assert_eq!(serve_workers(), threads(), "zero is not a valid worker count");
        std::env::remove_var("NOC_SERVE_WORKERS");
        assert_eq!(serve_workers(), threads());
    }

    #[test]
    fn join_returns_both_arms() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn many_points_under_contention_still_complete() {
        // more points than any plausible worker count; values depend on
        // the index so a mis-slotted result would be caught
        let points: Vec<usize> = (0..1000).collect();
        let out = run_grid(&points, |i, &p| {
            assert_eq!(i, p);
            i * 3
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }
}
