//! Crash-proof grid evaluation: panic isolation, divergence budgets,
//! and a resumable on-disk journal.
//!
//! [`crate::run_grid`] propagates a panic — correct for verified
//! production sweeps, fatal for exploratory ones where one degenerate
//! configuration (a deadlocking fault scenario, a diverging search)
//! should not poison the other 99 points. [`run_grid_robust`] wraps
//! every point in [`std::panic::catch_unwind`] and reports a typed
//! [`PointOutcome`] per point instead; the evaluation closure can also
//! *cooperatively* give up by returning [`Diverged`] when a cycle
//! budget runs out (the engine cannot preempt a stuck simulation from
//! outside — budget checks belong in the point's own stepping loop).
//!
//! [`run_grid_journal`] adds a line-oriented journal file: every
//! finished point is appended (and flushed) as it completes, and a
//! rerun against the same file replays recorded outcomes instead of
//! re-evaluating them — resuming a partially completed grid after a
//! crash or an interrupt. Corrupt or half-written lines are skipped, so
//! a torn final line from a killed process just re-runs that point.
//!
//! Panics escaping a worker still print the default panic-hook message
//! to stderr before being caught; that noise is deliberate (silencing
//! it would require swapping the process-global hook, which races with
//! concurrent tests).

use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;

use crate::run_grid;

/// Cooperative divergence marker: the point's evaluation loop exhausted
/// its cycle budget without converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diverged {
    /// The budget (in whatever unit the evaluator counts — typically
    /// simulated cycles) that was exhausted.
    pub budget: u64,
}

/// The result of one robustly-evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome<R> {
    /// The point evaluated normally.
    Ok(R),
    /// The point's evaluation panicked; the sweep continued without it.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The point gave up after exhausting its cycle budget.
    Diverged {
        /// The exhausted budget.
        budget: u64,
    },
}

impl<R> PointOutcome<R> {
    /// The successful result, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            PointOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// The successful result by reference, if any.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            PointOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// True for [`PointOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, PointOutcome::Ok(_))
    }
}

/// Render a caught panic payload (usually a `&str` or `String`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Evaluate every grid point like [`run_grid`], but isolate failures:
/// a panicking point yields [`PointOutcome::Panicked`], a point whose
/// evaluator returns `Err(Diverged)` yields [`PointOutcome::Diverged`],
/// and every other point completes normally. Results are in point
/// order and parallel evaluation is bit-identical to serial, exactly
/// as for [`run_grid`].
pub fn run_grid_robust<T, R, F>(points: &[T], eval: F) -> Vec<PointOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, Diverged> + Sync,
{
    let progress = crate::Progress::from_env("grid", points.len());
    let out = run_grid(points, |i, p| {
        let outcome = match catch_unwind(AssertUnwindSafe(|| eval(i, p))) {
            Ok(Ok(r)) => PointOutcome::Ok(r),
            Ok(Err(d)) => PointOutcome::Diverged { budget: d.budget },
            Err(payload) => PointOutcome::Panicked { message: panic_message(payload.as_ref()) },
        };
        progress.point_done();
        outcome
    });
    progress.finish();
    out
}

/// Serializer for journaled point results: one line of text per result.
///
/// Implementations must round-trip (`decode(encode(r)) == Some(r)`) and
/// should return `None` from `decode` on schema mismatch — the point is
/// then re-evaluated instead of resuming with garbage.
pub trait PointCodec<R> {
    /// Encode a result as a single-line payload (newlines/tabs are
    /// escaped by the journal, not the codec).
    fn encode(&self, r: &R) -> String;
    /// Decode a payload; `None` re-runs the point.
    fn decode(&self, s: &str) -> Option<R>;
}

/// Escape a payload for the one-line-per-record journal format (shared
/// with the keyed service WAL in [`crate::wal`]).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape.
pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Parse one journal line into `(index, outcome)`; `None` skips it.
fn parse_line<R, C: PointCodec<R>>(line: &str, codec: &C) -> Option<(usize, PointOutcome<R>)> {
    let mut parts = line.splitn(3, '\t');
    let index: usize = parts.next()?.parse().ok()?;
    let kind = parts.next()?;
    let payload = unescape(parts.next()?)?;
    let outcome = match kind {
        "ok" => PointOutcome::Ok(codec.decode(&payload)?),
        "panicked" => PointOutcome::Panicked { message: payload },
        "diverged" => PointOutcome::Diverged { budget: payload.parse().ok()? },
        _ => return None,
    };
    Some((index, outcome))
}

/// Render one journal line (without the trailing newline).
fn render_line<R, C: PointCodec<R>>(i: usize, outcome: &PointOutcome<R>, codec: &C) -> String {
    match outcome {
        PointOutcome::Ok(r) => format!("{i}\tok\t{}", escape(&codec.encode(r))),
        PointOutcome::Panicked { message } => format!("{i}\tpanicked\t{}", escape(message)),
        PointOutcome::Diverged { budget } => format!("{i}\tdiverged\t{budget}"),
    }
}

/// Appends between `fsync`s while a journaled grid runs; the final
/// record batch is always synced before [`run_grid_journal`] returns.
const JOURNAL_SYNC_BATCH: usize = 64;

/// [`run_grid_robust`] with a resumable journal at `path`.
///
/// Outcomes already recorded in the journal (of **any** kind — a
/// recorded panic is not retried; delete the journal to retry) are
/// replayed without re-evaluation; the rest run through the robust
/// grid, and each is appended to the journal and flushed as soon as it
/// completes, with an `fsync` every `JOURNAL_SYNC_BATCH` (64) records and
/// once at the end of the grid, so even a machine crash loses at most
/// one batch of finished points.
///
/// A **torn final record** — a line without a trailing newline, the
/// signature of a process killed mid-append — is explicitly tolerated:
/// the partial record is dropped and its point re-runs. Complete lines
/// that fail to parse (unknown schema, bit rot, an index beyond this
/// grid) are likewise skipped and their points re-run.
///
/// # Errors
/// Only on journal I/O failure (open/append); evaluation failures are
/// values, per [`run_grid_robust`].
pub fn run_grid_journal<T, R, F, C>(
    points: &[T],
    path: &Path,
    codec: &C,
    eval: F,
) -> std::io::Result<Vec<PointOutcome<R>>>
where
    T: Sync,
    R: Send,
    C: PointCodec<R> + Sync,
    F: Fn(usize, &T) -> Result<R, Diverged> + Sync,
{
    let mut recorded: HashMap<usize, PointOutcome<R>> = HashMap::new();
    if path.exists() {
        // the torn tail (if any) has already been dropped here; it is
        // an expected crash artifact, not corruption
        let (lines, _torn) = crate::wal::read_lines_tolerant(path)?;
        for line in lines {
            if let Some((i, outcome)) = parse_line(&line, codec) {
                if i < points.len() {
                    recorded.insert(i, outcome);
                }
            }
        }
    }
    struct JournalWriter {
        file: std::fs::File,
        unsynced: usize,
    }
    let writer = Mutex::new(JournalWriter {
        file: std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        unsynced: 0,
    });
    let recorded = Mutex::new(recorded);
    let progress = crate::Progress::from_env("journal grid", points.len());
    let outcomes = run_grid(points, |i, p| {
        if let Some(prior) =
            recorded.lock().unwrap_or_else(std::sync::PoisonError::into_inner).remove(&i)
        {
            progress.point_done();
            return Ok(prior);
        }
        let outcome = match catch_unwind(AssertUnwindSafe(|| eval(i, p))) {
            Ok(Ok(r)) => PointOutcome::Ok(r),
            Ok(Err(d)) => PointOutcome::Diverged { budget: d.budget },
            Err(payload) => PointOutcome::Panicked { message: panic_message(payload.as_ref()) },
        };
        let line = render_line(i, &outcome, codec);
        {
            let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // one write call per record: a crash can only tear the tail
            w.file.write_all(format!("{line}\n").as_bytes())?;
            w.unsynced += 1;
            if w.unsynced >= JOURNAL_SYNC_BATCH {
                w.file.sync_data()?;
                w.unsynced = 0;
            }
        }
        progress.point_done();
        Ok(outcome)
    });
    progress.finish();
    {
        // final batch boundary: everything acknowledged is on disk
        let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.unsynced > 0 {
            w.file.sync_data()?;
            w.unsynced = 0;
        }
    }
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct U64Codec;
    impl PointCodec<u64> for U64Codec {
        fn encode(&self, r: &u64) -> String {
            r.to_string()
        }
        fn decode(&self, s: &str) -> Option<u64> {
            s.parse().ok()
        }
    }

    fn eval_with_failures(i: usize, &p: &u64) -> Result<u64, Diverged> {
        if i == 3 {
            panic!("deliberate failure at point 3");
        }
        if i == 5 {
            return Err(Diverged { budget: 1_000 });
        }
        Ok(p * 10)
    }

    #[test]
    fn robust_isolates_panics_and_divergence() {
        let points: Vec<u64> = (0..8).collect();
        let out = run_grid_robust(&points, eval_with_failures);
        assert_eq!(out.len(), 8);
        for (i, o) in out.iter().enumerate() {
            match i {
                3 => assert_eq!(
                    o,
                    &PointOutcome::Panicked { message: "deliberate failure at point 3".into() }
                ),
                5 => assert_eq!(o, &PointOutcome::Diverged { budget: 1_000 }),
                _ => assert_eq!(o, &PointOutcome::Ok(i as u64 * 10)),
            }
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "tab\there", "line\nbreak", "back\\slash", "\\t\\n\\\\"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None, "unknown escape is rejected");
        assert_eq!(unescape("trailing\\"), None, "truncated escape is rejected");
    }

    #[test]
    fn journal_resumes_without_reevaluating() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = std::env::temp_dir().join(format!("noc_exp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.journal");
        let _ = std::fs::remove_file(&path);

        let points: Vec<u64> = (0..8).collect();
        let first = run_grid_journal(&points, &path, &U64Codec, eval_with_failures).unwrap();
        assert_eq!(first.iter().filter(|o| o.is_ok()).count(), 6);

        // second run must replay every outcome from the journal
        let evals = AtomicUsize::new(0);
        let second = run_grid_journal(&points, &path, &U64Codec, |i, p| {
            evals.fetch_add(1, Ordering::Relaxed);
            eval_with_failures(i, p)
        })
        .unwrap();
        assert_eq!(evals.load(Ordering::Relaxed), 0, "all points must come from the journal");
        assert_eq!(first, second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_tolerates_a_torn_final_record() {
        let dir = std::env::temp_dir().join(format!("noc_exp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        // two complete records, then a record torn mid-payload by a
        // simulated SIGKILL: no trailing newline
        std::fs::write(&path, "0\tok\t100\n1\tok\t200\n2\tok\t3").unwrap();
        let points: Vec<u64> = (0..3).collect();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evals = AtomicUsize::new(0);
        let out = run_grid_journal(&points, &path, &U64Codec, |_, &p| {
            evals.fetch_add(1, Ordering::Relaxed);
            Ok(p * 10 + 7)
        })
        .unwrap();
        assert_eq!(out[0], PointOutcome::Ok(100), "complete records replay");
        assert_eq!(out[1], PointOutcome::Ok(200));
        assert_eq!(out[2], PointOutcome::Ok(27), "the torn point re-runs");
        assert_eq!(evals.load(Ordering::Relaxed), 1, "only the torn point is re-evaluated");
        // the re-run's record was appended on its own line: a fresh
        // resume replays all three without evaluating anything
        let evals2 = AtomicUsize::new(0);
        let again = run_grid_journal(&points, &path, &U64Codec, |_, &p| {
            evals2.fetch_add(1, Ordering::Relaxed);
            Ok(p)
        })
        .unwrap();
        assert_eq!(evals2.load(Ordering::Relaxed), 1, "torn bytes still on disk tear one line");
        assert_eq!(again[0], PointOutcome::Ok(100));
        assert_eq!(again[1], PointOutcome::Ok(200));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_skips_corrupt_lines_and_reruns_them() {
        let dir = std::env::temp_dir().join(format!("noc_exp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.journal");
        // a valid record for point 1, a garbage index, and a torn line
        // missing its payload field
        std::fs::write(&path, "1\tok\t999\nzz\tok\t5\n3\tok\n").unwrap();
        let points: Vec<u64> = (0..4).collect();
        let out = run_grid_journal(&points, &path, &U64Codec, |_, &p| Ok(p + 1)).unwrap();
        assert_eq!(out[1], PointOutcome::Ok(999), "valid record replays");
        assert_eq!(out[0], PointOutcome::Ok(1), "unrecorded point evaluates");
        assert_eq!(out[3], PointOutcome::Ok(4), "corrupt record re-runs its point");
        let _ = std::fs::remove_file(&path);
    }
}
