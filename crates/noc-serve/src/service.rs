//! The request engine: admission → deadline → retry → WAL → drain.
//!
//! A [`Service`] owns the admission queue, the result cache, the WAL,
//! and the robustness counters. [`Service::handle_line`] consumes one
//! `noc-eval/serve/v1` request line and writes response lines (flushed
//! per line, so a client — or the smoke harness's mid-run `SIGKILL` —
//! always observes a whole-line prefix of the response stream).
//!
//! Evaluation runs in chunks of `workers` points through
//! [`noc_exp::run_grid_with`]; each evaluated outcome is appended to
//! the WAL *before* its result line is emitted, so any answer a client
//! has seen is durable (modulo the batched-fsync window, which only a
//! machine crash can lose — a killed process loses nothing).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use noc_analytic::AnalyticModel;
use noc_eval::serve::{
    parse_request, HealthSnapshot, PointRequest, ServeOutcome, ServeRequest, ServeResponse,
    ServeResult,
};
use noc_exp::{run_grid_with, serve_workers, Wal};
use noc_openloop::measure_budgeted;
use noc_sim::error::ConfigError;
use noc_traffic::SizeKind;

use crate::retry::{run_with_retry, Retried, RetryError, RetryPolicy};
use crate::ServeConfig;

#[derive(Default)]
struct Counters {
    completed: AtomicU64,
    cache_hits: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
}

/// Only outcomes that are pure functions of `(config, seed)` enter the
/// cache and the WAL: a fully simulated answer and a cycle-budget
/// timeout. Transient failures (panics, wall-clock deadline misses)
/// and admission verdicts are re-derived on the next request instead
/// of being replayed as if they were facts about the point.
fn cacheable(outcome: &ServeOutcome) -> bool {
    matches!(outcome, ServeOutcome::Ok { .. } | ServeOutcome::Timeout { wall: false, .. })
}

/// Per-`run` evaluation context: the effective retry policy plus the
/// wall-clock deadline (absolute, and the raw millisecond value for
/// reporting), shared by every point in the batch.
struct EvalCtx<'a> {
    policy: &'a RetryPolicy,
    deadline: Option<Instant>,
    deadline_ms: Option<u64>,
}

/// The long-running evaluation service (see module docs).
pub struct Service {
    cfg: ServeConfig,
    workers: usize,
    queue: VecDeque<(u64, PointRequest)>,
    next_seq: HashMap<String, u64>,
    cache: HashMap<String, ServeOutcome>,
    wal: Option<Wal>,
    counters: Counters,
    draining: bool,
    chaos_left: AtomicU64,
}

impl Service {
    /// Build a service: validate the config, spawn nothing (workers are
    /// per-batch), and — when a WAL path is configured — replay every
    /// durable record into the result cache so finished points survive
    /// a kill.
    pub fn new(cfg: ServeConfig) -> io::Result<Self> {
        cfg.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let workers = if cfg.workers == 0 { serve_workers() } else { cfg.workers };
        let mut cache = HashMap::new();
        let wal = match &cfg.wal {
            Some(path) => {
                let (wal, replay) = Wal::open(path)?;
                if replay.torn_tail {
                    eprintln!("noc-serve: WAL ended in a torn record (truncated; point re-runs)");
                }
                if replay.corrupt > 0 {
                    eprintln!("noc-serve: skipped {} corrupt WAL line(s)", replay.corrupt);
                }
                for (key, frag) in replay.records {
                    match ServeOutcome::parse(&frag) {
                        Ok(o) => {
                            cache.insert(key, o);
                        }
                        Err(e) => eprintln!("noc-serve: unreadable WAL record for {key}: {e}"),
                    }
                }
                Some(wal)
            }
            None => None,
        };
        let chaos_left = AtomicU64::new(cfg.chaos);
        Ok(Self {
            workers,
            queue: VecDeque::new(),
            next_seq: HashMap::new(),
            cache,
            wal,
            counters: Counters::default(),
            draining: false,
            chaos_left,
            cfg,
        })
    }

    /// Worker threads a `run` fans out across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Results currently answerable from cache (WAL replay + this
    /// process's evaluations).
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Handle one request line, writing responses to `out` (flushed per
    /// line). Returns `false` when the line was a `shutdown` request
    /// and the service has finished draining.
    pub fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        match parse_request(line) {
            Err(reason) => self.emit(out, &ServeResponse::Error { reason })?,
            Ok(ServeRequest::Point(p)) => self.admit(*p, out)?,
            Ok(ServeRequest::Run { batch, max_attempts, deadline_ms }) => {
                self.run_batch(&batch, max_attempts, deadline_ms, out)?
            }
            Ok(ServeRequest::Cancel { batch }) => {
                let before = self.queue.len();
                self.queue.retain(|(_, p)| p.batch != batch);
                let dropped = (before - self.queue.len()) as u64;
                self.emit(out, &ServeResponse::Cancelled { batch, dropped })?;
            }
            Ok(ServeRequest::Health) => self.emit(out, &ServeResponse::Health(self.snapshot()))?,
            Ok(ServeRequest::Shutdown) => {
                self.shutdown(out)?;
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Admission control: typed rejection for invalid configs, load
    /// shedding (or the degraded analytic answer) when the queue is
    /// full, shedding while draining — and silence (until `run`) when
    /// the point is accepted.
    fn admit(&mut self, p: PointRequest, out: &mut dyn Write) -> io::Result<()> {
        let seq = self.next_point(&p.batch);
        if self.draining {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return self.answer(
                out,
                &p,
                seq,
                ServeOutcome::Shed {
                    reason: "service is draining; resubmit to the next instance".into(),
                },
            );
        }
        if let Err(e) = validate_point(&p) {
            return self.answer(out, &p, seq, ServeOutcome::Invalid { reason: e.to_string() });
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            let outcome = if p.allow_degraded {
                match self.degraded_answer(&p) {
                    Some(o) => {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        o
                    }
                    None => {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                        ServeOutcome::Shed {
                            reason: format!(
                                "queue full (capacity {}) and no analytic fallback for this \
                                 configuration",
                                self.cfg.queue_capacity
                            ),
                        }
                    }
                }
            } else {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                ServeOutcome::Shed {
                    reason: format!(
                        "queue full ({} queued, capacity {})",
                        self.queue.len(),
                        self.cfg.queue_capacity
                    ),
                }
            };
            return self.answer(out, &p, seq, outcome);
        }
        self.queue.push_back((seq, p));
        Ok(())
    }

    /// The degradation ladder's last rung before shedding: a static
    /// analytic prediction, tagged `degraded` on the wire.
    fn degraded_answer(&self, p: &PointRequest) -> Option<ServeOutcome> {
        let size = SizeKind::Fixed(p.packet_size.min(u16::MAX as u64) as u16);
        let m = AnalyticModel::of(&p.net, p.pattern, size).ok()?;
        Some(ServeOutcome::Degraded {
            predicted_latency: m.latency_at(p.load),
            predicted_saturation: m.effective_saturation,
            stable: p.load < m.effective_saturation,
        })
    }

    /// Evaluate every queued point of `batch` and emit results in
    /// submission order, then a `batch-done` marker. Evaluation fans
    /// out `workers` wide in chunks, so result lines stream out as the
    /// batch progresses rather than all at the end.
    fn run_batch(
        &mut self,
        batch: &str,
        max_attempts: Option<u32>,
        deadline_ms: Option<u64>,
        out: &mut dyn Write,
    ) -> io::Result<()> {
        let mut mine = Vec::new();
        let mut rest = VecDeque::with_capacity(self.queue.len());
        for (seq, p) in self.queue.drain(..) {
            if p.batch == batch {
                mine.push((seq, p));
            } else {
                rest.push_back((seq, p));
            }
        }
        self.queue = rest;

        let mut policy = self.cfg.retry.clone();
        if let Some(a) = max_attempts {
            policy.max_attempts = a.max(1);
        }
        let ctx = EvalCtx {
            policy: &policy,
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            deadline_ms,
        };
        let items: Vec<(u64, PointRequest, String, Option<ServeOutcome>)> = mine
            .into_iter()
            .map(|(seq, p)| {
                let key = p.key();
                let cached = self.cache.get(&key).cloned();
                (seq, p, key, cached)
            })
            .collect();

        let (mut points, mut ok) = (0u64, 0u64);
        for chunk in items.chunks(self.workers.max(1)) {
            let results: Vec<ServeResult> =
                run_grid_with(chunk, self.workers, |_, (seq, p, key, cached)| {
                    self.eval_point(*seq, p, key, cached.as_ref(), &ctx)
                });
            for r in results {
                points += 1;
                if matches!(r.outcome, ServeOutcome::Ok { .. }) {
                    ok += 1;
                }
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                if !r.cached && cacheable(&r.outcome) {
                    self.cache.insert(r.key.clone(), r.outcome.clone());
                }
                self.emit(out, &ServeResponse::Result(r))?;
            }
        }
        if let Some(w) = &self.wal {
            w.commit()?;
        }
        self.emit(out, &ServeResponse::BatchDone { batch: batch.to_string(), points, ok })
    }

    /// Evaluate (or replay) one point. Runs on a worker thread; every
    /// failure mode funnels into a typed outcome.
    fn eval_point(
        &self,
        seq: u64,
        p: &PointRequest,
        key: &str,
        cached: Option<&ServeOutcome>,
        ctx: &EvalCtx<'_>,
    ) -> ServeResult {
        let result = |cached, attempts, outcome| ServeResult {
            batch: p.batch.clone(),
            point: seq,
            key: key.to_string(),
            cached,
            attempts,
            outcome,
        };
        if let Some(outcome) = cached {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return result(true, 0, outcome.clone());
        }
        let budget = p.budget.unwrap_or(self.cfg.default_budget);
        let cfg = p.open_loop();
        let evaluated = run_with_retry(ctx.policy, p.net.seed, ctx.deadline, |_attempt| {
            self.maybe_chaos_panic(key);
            match measure_budgeted(&cfg, budget) {
                Ok(Ok(r)) => Ok(Ok(r)),
                Ok(Err(d)) => Err(d),
                // config errors are deterministic: passing them through
                // as values keeps them off the retry path
                Err(e) => Ok(Err(e)),
            }
        });
        let (attempts, outcome) = match evaluated {
            Ok(Retried { value: Ok(r), attempts }) => (
                attempts,
                ServeOutcome::Ok {
                    avg_latency: r.avg_latency,
                    throughput: r.throughput,
                    stable: r.stable,
                    measured: r.measured_packets,
                    cycles: r.cycles,
                },
            ),
            Ok(Retried { value: Err(e), attempts }) => {
                (attempts, ServeOutcome::Invalid { reason: e.to_string() })
            }
            Err(RetryError::Diverged { budget, attempts }) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                (attempts, ServeOutcome::Timeout { budget, wall: false })
            }
            Err(RetryError::Panicked { message, attempts }) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                (attempts, ServeOutcome::Panicked { message })
            }
            Err(RetryError::Deadline { attempts }) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                (
                    attempts,
                    ServeOutcome::Timeout { budget: ctx.deadline_ms.unwrap_or(0), wall: true },
                )
            }
        };
        if attempts > 1 {
            self.counters.retries.fetch_add((attempts - 1) as u64, Ordering::Relaxed);
        }
        if cacheable(&outcome) {
            if let Some(w) = &self.wal {
                // durable before reported; an append failure degrades
                // durability, not availability
                if let Err(e) = w.append(key, &outcome.canonical()) {
                    eprintln!("noc-serve: WAL append failed for {key}: {e}");
                }
            }
        }
        result(false, attempts, outcome)
    }

    /// Chaos injection: panic on the first `cfg.chaos` evaluation
    /// attempts process-wide (the smoke harness's way of proving the
    /// retry path against the real binary).
    fn maybe_chaos_panic(&self, key: &str) {
        let fired = self
            .chaos_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if fired {
            panic!("chaos: injected evaluation fault for {key}");
        }
    }

    /// Graceful drain: evaluate everything still queued (every batch,
    /// admission order), flush the WAL, and emit the final `status`
    /// record. New points arriving after this are shed.
    pub fn shutdown(&mut self, out: &mut dyn Write) -> io::Result<()> {
        self.draining = true;
        while let Some((_, p)) = self.queue.front() {
            let batch = p.batch.clone();
            self.run_batch(&batch, None, None, out)?;
        }
        if let Some(w) = &self.wal {
            w.commit()?;
        }
        self.emit(out, &ServeResponse::Status(self.snapshot()))
    }

    /// Current queue/worker/counter snapshot (the `health` answer).
    pub fn snapshot(&self) -> HealthSnapshot {
        let c = &self.counters;
        HealthSnapshot {
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.cfg.queue_capacity as u64,
            workers: self.workers as u64,
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            wal_records: self.wal.as_ref().map(|w| w.records()).unwrap_or(0),
            draining: self.draining,
        }
    }

    fn answer(
        &self,
        out: &mut dyn Write,
        p: &PointRequest,
        seq: u64,
        outcome: ServeOutcome,
    ) -> io::Result<()> {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.emit(
            out,
            &ServeResponse::Result(ServeResult {
                batch: p.batch.clone(),
                point: seq,
                key: p.key(),
                cached: false,
                attempts: 0,
                outcome,
            }),
        )
    }

    fn emit(&self, out: &mut dyn Write, resp: &ServeResponse) -> io::Result<()> {
        writeln!(out, "{}", resp.to_json())?;
        out.flush()
    }

    fn next_point(&mut self, batch: &str) -> u64 {
        let c = self.next_seq.entry(batch.to_string()).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }
}

/// Admission-time validation: everything the evaluator would reject is
/// rejected here instead, as a typed `Invalid` outcome, before the
/// point can occupy queue space.
fn validate_point(p: &PointRequest) -> Result<(), ConfigError> {
    p.net.validate()?;
    if p.packet_size == 0 {
        return Err(ConfigError::Parameter {
            name: "packet_size",
            why: "packets are at least one flit".into(),
        });
    }
    if p.budget == Some(0) {
        return Err(ConfigError::Parameter {
            name: "cycle_budget",
            why: "cycle budget must be >= 1; a zero budget can never complete the warmup".into(),
        });
    }
    let prob = p.load / p.packet_size as f64;
    if !(0.0..=1.0).contains(&prob) {
        return Err(ConfigError::Parameter {
            name: "load",
            why: format!(
                "load {} with packet size {} needs per-cycle generation probability {prob}",
                p.load, p.packet_size
            ),
        });
    }
    Ok(())
}
