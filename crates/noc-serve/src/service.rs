//! The request engine: admission → deadline → retry → WAL → drain.
//!
//! A [`Service`] owns the admission queue, the result cache, the WAL,
//! and the robustness counters — all behind interior synchronization,
//! so one service instance is shared by every connection thread in
//! socket mode ([`crate::socket`]) exactly as it is by the single
//! stdin loop. [`Service::handle_line`] consumes one
//! `noc-eval/serve/v1` request line and writes response lines (flushed
//! per line, so a client — or the smoke harness's mid-run `SIGKILL` —
//! always observes a whole-line prefix of the response stream).
//!
//! **Concurrency model.** The queue, per-batch sequence counters,
//! result cache, and draining flag live under one mutex that is held
//! only for queue surgery and cache lookups — never across an
//! evaluation or a write to a client. Evaluation runs lock-free in
//! chunks of `workers` points through [`noc_exp::run_grid_with`]; the
//! WAL serializes internally ([`noc_exp::Wal`] appends are single
//! `write(2)` calls on an `O_APPEND` descriptor); counters are
//! atomics. Two clients racing the same `(config digest, seed)` key
//! may both evaluate it, but the simulator is a pure function of the
//! key, so both compute — and both journal — the *same bytes*; the
//! cache insert and WAL "last record wins" replay are idempotent.
//! That is the whole correctness argument, and
//! `tests/concurrent.rs` checks it against a serial reference.
//!
//! Each evaluated outcome is appended to the WAL *before* its result
//! line is emitted, so any answer a client has seen is durable (modulo
//! the batched-fsync window, which only a machine crash can lose — a
//! killed process loses nothing).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use noc_analytic::{AnalyticModel, Confidence};
use noc_eval::serve::{
    parse_request, HealthSnapshot, PointRequest, ServeOutcome, ServeRequest, ServeResponse,
    ServeResult, SweepRequest,
};
use noc_exp::{run_grid_with, serve_workers, Wal};
use noc_openloop::measure_budgeted;
use noc_sim::error::ConfigError;
use noc_traffic::SizeKind;

use crate::retry::{run_with_retry, Retried, RetryError, RetryPolicy};
use crate::ServeConfig;

/// WAL key prefix for service metadata records (drain status
/// snapshots); replay skips these instead of parsing them as outcomes.
const META_KEY_PREFIX: char = '@';

/// WAL key for the status record a socket-mode final drain journals.
const STATUS_KEY: &str = "@status";

#[derive(Default)]
struct Counters {
    completed: AtomicU64,
    cache_hits: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    clients: AtomicU64,
    busy: AtomicU64,
}

/// Only outcomes that are pure functions of `(config, seed)` enter the
/// cache and the WAL: a fully simulated answer and a cycle-budget
/// timeout. Transient failures (panics, wall-clock deadline misses)
/// and admission verdicts are re-derived on the next request instead
/// of being replayed as if they were facts about the point.
fn cacheable(outcome: &ServeOutcome) -> bool {
    matches!(outcome, ServeOutcome::Ok { .. } | ServeOutcome::Timeout { wall: false, .. })
}

/// Per-`run` evaluation context: the effective retry policy plus the
/// wall-clock deadline (absolute, and the raw millisecond value for
/// reporting), shared by every point in the batch.
struct EvalCtx<'a> {
    policy: &'a RetryPolicy,
    deadline: Option<Instant>,
    deadline_ms: Option<u64>,
}

/// Outcome-kind counts for one batch or sweep (what `sweep-done`
/// summarizes).
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    points: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    invalid: u64,
    timeout: u64,
}

impl Tally {
    fn count(&mut self, outcome: &ServeOutcome) {
        self.points += 1;
        match outcome {
            ServeOutcome::Ok { .. } => self.ok += 1,
            ServeOutcome::Degraded { .. } => self.degraded += 1,
            ServeOutcome::Shed { .. } => self.shed += 1,
            ServeOutcome::Invalid { .. } => self.invalid += 1,
            ServeOutcome::Timeout { .. } => self.timeout += 1,
            ServeOutcome::Panicked { .. } => {}
        }
    }

    fn merge(&mut self, other: Tally) {
        self.points += other.points;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.invalid += other.invalid;
        self.timeout += other.timeout;
    }
}

/// The mutable service state one mutex guards (see module docs).
struct ServeState {
    queue: VecDeque<(u64, PointRequest)>,
    next_seq: HashMap<String, u64>,
    cache: HashMap<String, ServeOutcome>,
    draining: bool,
}

/// The long-running evaluation service (see module docs).
pub struct Service {
    cfg: ServeConfig,
    workers: usize,
    state: Mutex<ServeState>,
    wal: Option<Wal>,
    counters: Counters,
    chaos_left: AtomicU64,
}

impl Service {
    /// Build a service: validate the config, spawn nothing (workers are
    /// per-batch), and — when a WAL path is configured — replay every
    /// durable record into the result cache so finished points survive
    /// a kill.
    pub fn new(cfg: ServeConfig) -> io::Result<Self> {
        cfg.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let workers = if cfg.workers == 0 { serve_workers() } else { cfg.workers };
        let mut cache = HashMap::new();
        let wal = match &cfg.wal {
            Some(path) => {
                let (wal, replay) = Wal::open(path)?;
                if replay.torn_tail {
                    eprintln!("noc-serve: WAL ended in a torn record (truncated; point re-runs)");
                }
                if replay.corrupt > 0 {
                    eprintln!("noc-serve: skipped {} corrupt WAL line(s)", replay.corrupt);
                }
                for (key, frag) in replay.records {
                    if key.starts_with(META_KEY_PREFIX) {
                        // service metadata (drain status records), not
                        // a point outcome
                        continue;
                    }
                    match ServeOutcome::parse(&frag) {
                        Ok(o) => {
                            cache.insert(key, o);
                        }
                        Err(e) => eprintln!("noc-serve: unreadable WAL record for {key}: {e}"),
                    }
                }
                Some(wal)
            }
            None => None,
        };
        let chaos_left = AtomicU64::new(cfg.chaos);
        Ok(Self {
            workers,
            state: Mutex::new(ServeState {
                queue: VecDeque::new(),
                next_seq: HashMap::new(),
                cache,
                draining: false,
            }),
            wal,
            counters: Counters::default(),
            chaos_left,
            cfg,
        })
    }

    /// Lock the mutable state, tolerating poison: the guarded sections
    /// never unwind mid-invariant (evaluation panics are caught on the
    /// worker side of [`run_with_retry`], outside this lock).
    fn st(&self) -> MutexGuard<'_, ServeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Worker threads a `run` fans out across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Client-connection bound for socket mode (`--max-clients`).
    pub fn max_clients(&self) -> usize {
        self.cfg.max_clients
    }

    /// Results currently answerable from cache (WAL replay + this
    /// process's evaluations).
    pub fn cached_results(&self) -> usize {
        self.st().cache.len()
    }

    /// A connection was accepted; returns the new live-client count.
    pub fn client_connected(&self) -> u64 {
        self.counters.clients.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// A connection closed.
    pub fn client_disconnected(&self) {
        self.counters.clients.fetch_sub(1, Ordering::SeqCst);
    }

    /// A connection was turned away at the `--max-clients` bound;
    /// returns the live-client count it saw.
    pub fn client_rejected(&self) -> u64 {
        self.counters.busy.fetch_add(1, Ordering::SeqCst);
        self.counters.clients.load(Ordering::SeqCst)
    }

    /// Handle one request line, writing responses to `out` (flushed per
    /// line). Returns `false` when the line was a `shutdown` request
    /// and the service has finished draining.
    pub fn handle_line(&self, line: &str, out: &mut dyn Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        match parse_request(line) {
            Err(reason) => self.emit(out, &ServeResponse::Error { reason })?,
            Ok(ServeRequest::Point(p)) => {
                self.admit(*p, out)?;
            }
            Ok(ServeRequest::Sweep(sw)) => self.run_sweep(&sw, out)?,
            Ok(ServeRequest::Run { batch, max_attempts, deadline_ms }) => {
                self.run_batch(&batch, max_attempts, deadline_ms, out)?;
            }
            Ok(ServeRequest::Cancel { batch }) => {
                let dropped = {
                    let mut st = self.st();
                    let before = st.queue.len();
                    st.queue.retain(|(_, p)| p.batch != batch);
                    (before - st.queue.len()) as u64
                };
                self.emit(out, &ServeResponse::Cancelled { batch, dropped })?;
            }
            Ok(ServeRequest::Health) => self.emit(out, &ServeResponse::Health(self.snapshot()))?,
            Ok(ServeRequest::Shutdown) => {
                self.shutdown(out)?;
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Admission control: typed rejection for invalid configs, the
    /// analytic admission prune (opt-in), load shedding (or the
    /// degraded analytic answer) when the queue is full, shedding while
    /// draining — and silence (until `run`) when the point is accepted.
    /// Returns the outcome answered immediately, `None` if queued.
    fn admit(&self, p: PointRequest, out: &mut dyn Write) -> io::Result<Option<ServeOutcome>> {
        // everything derivable from the point alone happens before the
        // lock; only queue surgery holds it
        let verdict = match validate_point(&p) {
            Err(e) => Some(ServeOutcome::Invalid { reason: e.to_string() }),
            Ok(()) => self.admission_prune(&p),
        };
        let (seq, answer) = {
            let mut st = self.st();
            let seq = {
                let c = st.next_seq.entry(p.batch.clone()).or_insert(0);
                let seq = *c;
                *c += 1;
                seq
            };
            let answer = if st.draining {
                Some(ServeOutcome::Shed {
                    reason: "service is draining; resubmit to the next instance".into(),
                })
            } else if let Some(v) = verdict {
                Some(v)
            } else if st.queue.len() >= self.cfg.queue_capacity {
                Some(self.overflow_answer(&p, st.queue.len()))
            } else {
                st.queue.push_back((seq, p.clone()));
                None
            };
            (seq, answer)
        };
        let Some(outcome) = answer else { return Ok(None) };
        match &outcome {
            ServeOutcome::Shed { .. } => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
            }
            ServeOutcome::Degraded { .. } => {
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.answer(out, &p, seq, outcome.clone())?;
        Ok(Some(outcome))
    }

    /// The queue-full answer: a degraded analytic prediction when the
    /// client opted in and the model covers the config, else a typed
    /// shed with the capacity in the reason.
    fn overflow_answer(&self, p: &PointRequest, queued: usize) -> ServeOutcome {
        if p.allow_degraded {
            if let Some(o) = self.degraded_answer(p) {
                return o;
            }
            return ServeOutcome::Shed {
                reason: format!(
                    "queue full (capacity {}) and no analytic fallback for this configuration",
                    self.cfg.queue_capacity
                ),
            };
        }
        ServeOutcome::Shed {
            reason: format!("queue full ({} queued, capacity {})", queued, self.cfg.queue_capacity),
        }
    }

    /// Analytic admission control: when the point opted in and the
    /// model (at usable confidence) puts the requested load at or past
    /// effective saturation, answer the closed-form prediction now
    /// instead of spending a cycle budget discovering divergence.
    ///
    /// Pure-accelerator guarantee: interception depends only on the
    /// point itself (never on queue state), and a point *not*
    /// intercepted takes the identical path it would have taken with
    /// the flag off — so enabling the flag can only turn answers into
    /// `degraded` ones, never alter a non-degraded answer
    /// (property-tested in `tests/sweep_equiv.rs`). Mirroring
    /// `noc_analytic::sweep_pruned`, [`Confidence::Low`] disables the
    /// prune entirely.
    fn admission_prune(&self, p: &PointRequest) -> Option<ServeOutcome> {
        if !p.analytic_admission {
            return None;
        }
        let size = SizeKind::Fixed(p.packet_size.min(u16::MAX as u64) as u16);
        let m = AnalyticModel::of(&p.net, p.pattern, size).ok()?;
        if matches!(m.confidence, Confidence::Low) || p.load < m.effective_saturation {
            return None;
        }
        Some(ServeOutcome::Degraded {
            predicted_latency: m.latency_at(p.load),
            predicted_saturation: m.effective_saturation,
            stable: false,
        })
    }

    /// The degradation ladder's last rung before shedding: a static
    /// analytic prediction, tagged `degraded` on the wire.
    fn degraded_answer(&self, p: &PointRequest) -> Option<ServeOutcome> {
        let size = SizeKind::Fixed(p.packet_size.min(u16::MAX as u64) as u16);
        let m = AnalyticModel::of(&p.net, p.pattern, size).ok()?;
        Some(ServeOutcome::Degraded {
            predicted_latency: m.latency_at(p.load),
            predicted_saturation: m.effective_saturation,
            stable: p.load < m.effective_saturation,
        })
    }

    /// Expand a sweep spec server-side: admit every expanded point (in
    /// grid order, through the byte-identical admission path a `point`
    /// line takes), run the batch, and emit the `sweep-done` summary
    /// after the `batch-done` marker.
    fn run_sweep(&self, sw: &SweepRequest, out: &mut dyn Write) -> io::Result<()> {
        if let Err(reason) = sw.validate_spec() {
            return self.emit(out, &ServeResponse::Error { reason: format!("sweep: {reason}") });
        }
        let mut tally = Tally::default();
        for p in sw.expand() {
            if let Some(outcome) = self.admit(p, out)? {
                tally.count(&outcome);
            }
        }
        tally.merge(self.run_batch(&sw.batch, sw.max_attempts, sw.deadline_ms, out)?);
        self.emit(
            out,
            &ServeResponse::SweepDone {
                batch: sw.batch.clone(),
                expanded: sw.expanded_len(),
                ok: tally.ok,
                degraded: tally.degraded,
                shed: tally.shed,
                invalid: tally.invalid,
                timeout: tally.timeout,
            },
        )
    }

    /// Evaluate every queued point of `batch` and emit results in
    /// submission order, then a `batch-done` marker. Evaluation fans
    /// out `workers` wide in chunks, so result lines stream out as the
    /// batch progresses rather than all at the end; the state lock is
    /// held only to extract the batch and to insert cache entries,
    /// never across evaluation or client IO.
    fn run_batch(
        &self,
        batch: &str,
        max_attempts: Option<u32>,
        deadline_ms: Option<u64>,
        out: &mut dyn Write,
    ) -> io::Result<Tally> {
        let items: Vec<(u64, PointRequest, String, Option<ServeOutcome>)> = {
            let mut st = self.st();
            let mut mine = Vec::new();
            let mut rest = VecDeque::with_capacity(st.queue.len());
            for (seq, p) in st.queue.drain(..) {
                if p.batch == batch {
                    mine.push((seq, p));
                } else {
                    rest.push_back((seq, p));
                }
            }
            st.queue = rest;
            mine.into_iter()
                .map(|(seq, p)| {
                    let key = p.key();
                    let cached = st.cache.get(&key).cloned();
                    (seq, p, key, cached)
                })
                .collect()
        };

        let mut policy = self.cfg.retry.clone();
        if let Some(a) = max_attempts {
            policy.max_attempts = a.max(1);
        }
        let ctx = EvalCtx {
            policy: &policy,
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            deadline_ms,
        };

        let mut tally = Tally::default();
        for chunk in items.chunks(self.workers.max(1)) {
            let results: Vec<ServeResult> =
                run_grid_with(chunk, self.workers, |_, (seq, p, key, cached)| {
                    self.eval_point(*seq, p, key, cached.as_ref(), &ctx)
                });
            {
                let mut st = self.st();
                for r in &results {
                    if !r.cached && cacheable(&r.outcome) {
                        st.cache.insert(r.key.clone(), r.outcome.clone());
                    }
                }
            }
            for r in results {
                tally.count(&r.outcome);
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                self.emit(out, &ServeResponse::Result(r))?;
            }
        }
        if let Some(w) = &self.wal {
            w.commit()?;
        }
        self.emit(
            out,
            &ServeResponse::BatchDone {
                batch: batch.to_string(),
                points: tally.points,
                ok: tally.ok,
            },
        )?;
        Ok(tally)
    }

    /// Evaluate (or replay) one point. Runs on a worker thread; every
    /// failure mode funnels into a typed outcome.
    fn eval_point(
        &self,
        seq: u64,
        p: &PointRequest,
        key: &str,
        cached: Option<&ServeOutcome>,
        ctx: &EvalCtx<'_>,
    ) -> ServeResult {
        let result = |cached, attempts, outcome| ServeResult {
            batch: p.batch.clone(),
            point: seq,
            key: key.to_string(),
            cached,
            attempts,
            outcome,
        };
        if let Some(outcome) = cached {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return result(true, 0, outcome.clone());
        }
        let budget = p.budget.unwrap_or(self.cfg.default_budget);
        let cfg = p.open_loop();
        let evaluated = run_with_retry(ctx.policy, p.net.seed, ctx.deadline, |_attempt| {
            self.maybe_chaos_panic(key);
            match measure_budgeted(&cfg, budget) {
                Ok(Ok(r)) => Ok(Ok(r)),
                Ok(Err(d)) => Err(d),
                // config errors are deterministic: passing them through
                // as values keeps them off the retry path
                Err(e) => Ok(Err(e)),
            }
        });
        let (attempts, outcome) = match evaluated {
            Ok(Retried { value: Ok(r), attempts }) => (
                attempts,
                ServeOutcome::Ok {
                    avg_latency: r.avg_latency,
                    throughput: r.throughput,
                    stable: r.stable,
                    measured: r.measured_packets,
                    cycles: r.cycles,
                },
            ),
            Ok(Retried { value: Err(e), attempts }) => {
                (attempts, ServeOutcome::Invalid { reason: e.to_string() })
            }
            Err(RetryError::Diverged { budget, attempts }) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                (attempts, ServeOutcome::Timeout { budget, wall: false })
            }
            Err(RetryError::Panicked { message, attempts }) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                (attempts, ServeOutcome::Panicked { message })
            }
            Err(RetryError::Deadline { attempts }) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                (
                    attempts,
                    ServeOutcome::Timeout { budget: ctx.deadline_ms.unwrap_or(0), wall: true },
                )
            }
        };
        if attempts > 1 {
            self.counters.retries.fetch_add((attempts - 1) as u64, Ordering::Relaxed);
        }
        if cacheable(&outcome) {
            if let Some(w) = &self.wal {
                // durable before reported; an append failure degrades
                // durability, not availability
                if let Err(e) = w.append(key, &outcome.canonical()) {
                    eprintln!("noc-serve: WAL append failed for {key}: {e}");
                }
            }
        }
        result(false, attempts, outcome)
    }

    /// Chaos injection: panic on the first `cfg.chaos` evaluation
    /// attempts process-wide (the smoke harness's way of proving the
    /// retry path against the real binary).
    fn maybe_chaos_panic(&self, key: &str) {
        let fired = self
            .chaos_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if fired {
            panic!("chaos: injected evaluation fault for {key}");
        }
    }

    /// Graceful drain: evaluate everything still queued (every batch,
    /// admission order), flush the WAL, and emit the final `status`
    /// record. New points arriving after this are shed.
    pub fn shutdown(&self, out: &mut dyn Write) -> io::Result<()> {
        self.drain(None, out)
    }

    /// Drain: set the draining flag, evaluate queued points — every
    /// batch in admission order when `batches` is `None`, else exactly
    /// the named batches (a socket connection drains its own batches
    /// to its own stream on `SIGTERM`) — then emit a `status` record.
    /// Concurrent drains are safe: the queue mutex hands each batch to
    /// exactly one drainer.
    pub fn drain(&self, batches: Option<&[String]>, out: &mut dyn Write) -> io::Result<()> {
        self.st().draining = true;
        match batches {
            Some(bs) => {
                for b in bs {
                    self.run_batch(b, None, None, out)?;
                }
            }
            None => loop {
                let Some(batch) = self.st().queue.front().map(|(_, p)| p.batch.clone()) else {
                    break;
                };
                self.run_batch(&batch, None, None, out)?;
            },
        }
        if let Some(w) = &self.wal {
            w.commit()?;
        }
        self.emit(out, &ServeResponse::Status(self.snapshot()))
    }

    /// The socket listener's final drain, after the last connection is
    /// gone: evaluate orphaned points (clients that disconnected with
    /// work queued), emit the status record to `out` (stderr in the
    /// binary — an operator must see what the drain completed, so it
    /// never goes to a sink), and journal a copy of the status into
    /// the WAL when one is configured.
    pub fn drain_to_operator(&self, out: &mut dyn Write) -> io::Result<()> {
        self.drain(None, out)?;
        if let Some(w) = &self.wal {
            w.append(STATUS_KEY, &ServeResponse::Status(self.snapshot()).to_json())?;
            w.commit()?;
        }
        Ok(())
    }

    /// Current queue/worker/counter snapshot (the `health` answer).
    pub fn snapshot(&self) -> HealthSnapshot {
        let (queue_depth, draining) = {
            let st = self.st();
            (st.queue.len() as u64, st.draining)
        };
        let c = &self.counters;
        HealthSnapshot {
            queue_depth,
            queue_capacity: self.cfg.queue_capacity as u64,
            workers: self.workers as u64,
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            wal_records: self.wal.as_ref().map(|w| w.records()).unwrap_or(0),
            clients: c.clients.load(Ordering::SeqCst),
            busy: c.busy.load(Ordering::SeqCst),
            draining,
        }
    }

    fn answer(
        &self,
        out: &mut dyn Write,
        p: &PointRequest,
        seq: u64,
        outcome: ServeOutcome,
    ) -> io::Result<()> {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.emit(
            out,
            &ServeResponse::Result(ServeResult {
                batch: p.batch.clone(),
                point: seq,
                key: p.key(),
                cached: false,
                attempts: 0,
                outcome,
            }),
        )
    }

    fn emit(&self, out: &mut dyn Write, resp: &ServeResponse) -> io::Result<()> {
        writeln!(out, "{}", resp.to_json())?;
        out.flush()
    }
}

/// Admission-time validation: everything the evaluator would reject is
/// rejected here instead, as a typed `Invalid` outcome, before the
/// point can occupy queue space.
fn validate_point(p: &PointRequest) -> Result<(), ConfigError> {
    p.net.validate()?;
    if p.packet_size == 0 {
        return Err(ConfigError::Parameter {
            name: "packet_size",
            why: "packets are at least one flit".into(),
        });
    }
    if p.budget == Some(0) {
        return Err(ConfigError::Parameter {
            name: "cycle_budget",
            why: "cycle budget must be >= 1; a zero budget can never complete the warmup".into(),
        });
    }
    let prob = p.load / p.packet_size as f64;
    if !(0.0..=1.0).contains(&prob) {
        return Err(ConfigError::Parameter {
            name: "load",
            why: format!(
                "load {} with packet size {} needs per-cycle generation probability {prob}",
                p.load, p.packet_size
            ),
        });
    }
    Ok(())
}
