//! Bounded retry with capped exponential backoff and deterministic,
//! seed-derived jitter.
//!
//! Retrying a simulation point is only sound because a `(config, seed)`
//! pair fully determines its answer: a retried evaluation reruns with
//! the *same* seed and must produce bit-identical results, so a
//! transient panic (a cosmic-ray box, a chaos-injected fault) costs an
//! attempt, never determinism. The backoff jitter likewise comes from
//! the point's own seed family via [`noc_exp::derive_seed`], not a
//! clock or a global RNG, so a replayed request schedules the exact
//! same sleeps — retries are part of the deterministic record, not
//! noise on top of it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use noc_exp::derive_seed;
use noc_exp::robust::{panic_message, Diverged};
use noc_sim::error::ConfigError;

/// Domain tag mixed into [`noc_exp::derive_seed`] for backoff jitter,
/// so the jitter stream never collides with the seeds the simulator
/// itself consumes.
const JITTER_DOMAIN: u64 = 0x6a69_7474_6572_0000; // "jitter"

/// Capped exponential backoff with bounded attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total evaluation attempts per point (first try included). Must
    /// be >= 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// subsequent retry.
    pub base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub cap_ms: u64,
    /// Actually sleep between attempts. The service sets this; tests
    /// and the drain path disable it to stay fast (the *schedule* is
    /// still computed and deterministic either way).
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_ms: 10, cap_ms: 1_000, sleep: true }
    }
}

impl RetryPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts == 0 {
            return Err(ConfigError::Parameter {
                name: "max_attempts",
                why: "at least one evaluation attempt is required".into(),
            });
        }
        if self.base_ms > self.cap_ms {
            return Err(ConfigError::Parameter {
                name: "base_ms",
                why: format!("backoff base {} exceeds cap {}", self.base_ms, self.cap_ms),
            });
        }
        Ok(())
    }

    /// Backoff before retry number `retry` (1-based) of the point
    /// seeded `seed`: `base * 2^(retry-1)` capped at `cap_ms`, jittered
    /// into `[half, full]` by the seed family. Pure function of
    /// `(policy, seed, retry)`.
    pub fn backoff_ms(&self, seed: u64, retry: u32) -> u64 {
        let full =
            self.base_ms.checked_shl(retry.saturating_sub(1)).unwrap_or(u64::MAX).min(self.cap_ms);
        let half = full / 2;
        half + derive_seed(seed, JITTER_DOMAIN + retry as u64) % (full - half + 1)
    }
}

/// Why a point ran out of attempts (or time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError {
    /// Every permitted attempt panicked; carries the last message.
    Panicked {
        /// The final attempt's panic payload.
        message: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Every permitted attempt exhausted its cycle budget.
    Diverged {
        /// The budget the final attempt exceeded.
        budget: u64,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The wall-clock deadline passed before an attempt could start.
    Deadline {
        /// Attempts consumed before the deadline hit.
        attempts: u32,
    },
}

/// A successful evaluation plus the attempts it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Retried<R> {
    /// The evaluation result.
    pub value: R,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
}

/// Run `eval` under the policy: panics are caught, cooperative
/// [`Diverged`] give-ups are retried, and each retry waits its
/// deterministic backoff. `eval` receives the 1-based attempt number.
/// An optional `deadline` is checked before every attempt (and before
/// every sleep), so a point never oversleeps its batch.
pub fn run_with_retry<R, F>(
    policy: &RetryPolicy,
    seed: u64,
    deadline: Option<Instant>,
    mut eval: F,
) -> Result<Retried<R>, RetryError>
where
    F: FnMut(u32) -> Result<R, Diverged>,
{
    let mut attempt = 0u32;
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(RetryError::Deadline { attempts: attempt });
        }
        attempt += 1;
        let failure = match catch_unwind(AssertUnwindSafe(|| eval(attempt))) {
            Ok(Ok(value)) => return Ok(Retried { value, attempts: attempt }),
            Ok(Err(d)) => RetryError::Diverged { budget: d.budget, attempts: attempt },
            Err(payload) => {
                RetryError::Panicked { message: panic_message(payload.as_ref()), attempts: attempt }
            }
        };
        if attempt >= policy.max_attempts {
            return Err(failure);
        }
        if policy.sleep {
            let wait = std::time::Duration::from_millis(policy.backoff_ms(seed, attempt));
            if let Some(d) = deadline {
                let now = Instant::now();
                if now + wait >= d {
                    return Err(RetryError::Deadline { attempts: attempt });
                }
            }
            std::thread::sleep(wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nosleep() -> RetryPolicy {
        RetryPolicy { sleep: false, ..RetryPolicy::default() }
    }

    #[test]
    fn clean_first_try_costs_one_attempt() {
        let r = run_with_retry(&nosleep(), 1, None, |_| Ok::<_, Diverged>(42)).unwrap();
        assert_eq!(r, Retried { value: 42, attempts: 1 });
    }

    #[test]
    fn panic_then_success_is_retried() {
        let r = run_with_retry(&nosleep(), 1, None, |attempt| {
            if attempt == 1 {
                panic!("injected");
            }
            Ok::<_, Diverged>(attempt)
        })
        .unwrap();
        assert_eq!(r, Retried { value: 2, attempts: 2 });
    }

    #[test]
    fn persistent_panic_exhausts_attempts_with_last_message() {
        let err = run_with_retry(&nosleep(), 1, None, |attempt| {
            panic!("boom {attempt}");
            #[allow(unreachable_code)]
            Ok::<u32, Diverged>(0)
        })
        .unwrap_err();
        assert_eq!(err, RetryError::Panicked { message: "boom 3".into(), attempts: 3 });
    }

    #[test]
    fn divergence_is_retried_then_reported_with_budget() {
        let err = run_with_retry(&nosleep(), 1, None, |_| Err::<u32, _>(Diverged { budget: 777 }))
            .unwrap_err();
        assert_eq!(err, RetryError::Diverged { budget: 777, attempts: 3 });
    }

    #[test]
    fn expired_deadline_preempts_the_first_attempt() {
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = run_with_retry(&nosleep(), 1, Some(past), |_| Ok::<_, Diverged>(1)).unwrap_err();
        assert_eq!(err, RetryError::Deadline { attempts: 0 });
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let p = RetryPolicy { max_attempts: 10, base_ms: 10, cap_ms: 100, sleep: false };
        for retry in 1..=8 {
            let a = p.backoff_ms(0xdead_beef, retry);
            let b = p.backoff_ms(0xdead_beef, retry);
            assert_eq!(a, b, "same (seed, retry) -> same jitter");
            let full = (10u64 << (retry - 1)).min(100);
            assert!(a >= full / 2 && a <= full, "retry {retry}: {a} not in [{}, {full}]", full / 2);
        }
        // different seeds jitter differently somewhere in the family
        assert!((1..=8).any(|r| p.backoff_ms(1, r) != p.backoff_ms(2, r)));
        // overflow-proof at absurd retry counts
        assert!(p.backoff_ms(1, 63) <= 100);
        assert!(p.backoff_ms(1, u32::MAX) <= 100);
    }
}
