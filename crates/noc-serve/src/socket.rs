//! Concurrent Unix-socket serving: per-connection threads over one
//! shared [`Service`].
//!
//! The listener accepts up to [`ServeConfig::max_clients`] concurrent
//! connections and hands each to a scoped thread running the same
//! line loop stdio mode uses; a connection past the bound receives a
//! single typed `busy` response and is closed (a client retries
//! later — overload is data, never a hang or a silent drop). All
//! sharing lives inside [`Service`] (see its module docs for the
//! concurrency model); this module only owns sockets and threads.
//!
//! **Shutdown.** The accept loop and every connection reader poll the
//! caller's TERM flag every 50 ms (with `load`, not `swap` — every
//! thread must observe the one signal). On TERM each connection
//! drains *its own* batches to *its own* stream, so every live client
//! receives the results it was promised; the listener then runs a
//! final drain for orphaned points (clients that disconnected with
//! work queued), emits the status record to stderr — an operator must
//! see what the drain completed, so it never goes to a sink — and
//! journals a copy into the WAL when one is configured. A `shutdown`
//! request from any client drains the whole queue to that client and
//! stops the listener.
//!
//! [`ServeConfig::max_clients`]: crate::ServeConfig::max_clients

#![cfg(unix)]

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use noc_eval::serve::{parse_request, ServeRequest, ServeResponse};

use crate::Service;

/// How often idle loops poll the TERM flag (both the accept loop and
/// each connection's read timeout). Keep in sync with the binary's
/// usage text.
pub const TERM_POLL: Duration = Duration::from_millis(50);

/// Run the socket server until TERM or a `shutdown` request. Binds
/// (replacing any stale socket file), serves concurrently, and
/// finishes with the orphan drain + operator status record described
/// in the module docs.
pub fn serve(service: &Service, path: &Path, term: &AtomicBool) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    // set by a `shutdown` request; TERM-like for the accept loop, but
    // connection threads exit without draining (the queue is already
    // empty — the shutdown handler drained it to the requester)
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if term.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let live = service.client_connected();
                    if live > service.max_clients() as u64 {
                        service.client_disconnected();
                        reject(service, stream);
                        continue;
                    }
                    let stop = &stop;
                    scope.spawn(move || {
                        if let Err(e) = handle_connection(service, stream, term, stop) {
                            eprintln!("noc-serve: connection error: {e}");
                        }
                        service.client_disconnected();
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(TERM_POLL);
                }
                Err(e) => return Err(e),
            }
        }
        // scope joins every connection thread here, so per-connection
        // drains finish before the final orphan drain below
    })?;
    let _ = std::fs::remove_file(path);
    service.drain_to_operator(&mut io::stderr().lock())
}

/// Turn away a connection past the client bound: one `busy` line,
/// then close. Write errors are ignored — the client may already be
/// gone, and the listener must keep accepting.
fn reject(service: &Service, stream: UnixStream) {
    let active = service.client_rejected();
    let mut out = stream;
    let resp = ServeResponse::Busy { active, max: service.max_clients() as u64 };
    let _ = writeln!(out, "{}", resp.to_json());
    let _ = out.flush();
}

/// One connection's line loop: read with a [`TERM_POLL`] timeout so
/// the TERM flag stays responsive mid-connection (partial bytes stay
/// buffered across timeouts), remember which batches this client
/// touched, and on TERM drain exactly those batches back to it.
fn handle_connection(
    service: &Service,
    stream: UnixStream,
    term: &AtomicBool,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(TERM_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    let mut batches: Vec<String> = Vec::new();
    loop {
        if term.load(Ordering::SeqCst) {
            return service.drain(Some(&batches), &mut out);
        }
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {
                note_batch(&line, &mut batches);
                if !service.handle_line(&line, &mut out)? {
                    stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => return Ok(()),
        }
    }
}

/// Record the batch a `point`/`sweep` line names, so a TERM drain can
/// flush this connection's work to this connection. Unparseable lines
/// are ignored here — [`Service::handle_line`] answers them with the
/// typed error.
fn note_batch(line: &str, batches: &mut Vec<String>) {
    let batch = match parse_request(line.trim()) {
        Ok(ServeRequest::Point(p)) => Some(p.batch),
        Ok(ServeRequest::Sweep(s)) => Some(s.batch),
        _ => None,
    };
    if let Some(b) = batch {
        if !batches.contains(&b) {
            batches.push(b);
        }
    }
}
