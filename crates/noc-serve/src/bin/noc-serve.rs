//! The `noc-serve` binary: a persistent evaluation service speaking
//! the `noc-eval/serve/v1` line protocol on stdin/stdout, or serving
//! up to `--max-clients` concurrent connections on a Unix socket with
//! `--socket PATH`.
//!
//! ```text
//! noc-serve [--wal PATH] [--queue N] [--workers N] [--max-attempts N]
//!           [--budget CYCLES] [--backoff-ms N] [--backoff-cap-ms N]
//!           [--no-backoff-sleep] [--chaos N]
//!           [--socket PATH] [--max-clients N]
//! ```
//!
//! `SIGTERM`/`SIGINT` (and EOF on stdin) trigger a graceful drain:
//! queued points are evaluated (in socket mode, each live connection
//! receives its own batches), the WAL is flushed, and a final
//! `status` record is emitted before exit. `SIGKILL` is survivable by
//! design: restart with the same `--wal` and finished points replay
//! from the journal instead of recomputing. Idle loops poll the TERM
//! flag every 50 ms.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use noc_serve::{ServeConfig, Service};

/// Set from the signal handler; polled (with `load`, never `swap` —
/// every connection thread must observe the one signal) by the
/// request loops.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        // async-signal-safe: one atomic store
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler: extern "C" fn(i32) = on_term;
    let addr = handler as *const () as usize;
    unsafe {
        signal(SIGTERM, addr);
        signal(SIGINT, addr);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: noc-serve [--wal PATH] [--queue N] [--workers N] [--max-attempts N]\n\
         \u{20}                [--budget CYCLES] [--backoff-ms N] [--backoff-cap-ms N]\n\
         \u{20}                [--no-backoff-sleep] [--chaos N]\n\
         \u{20}                [--socket PATH] [--max-clients N]\n\
         Speaks noc-eval/serve/v1, one JSON object per line, on stdin/stdout\n\
         (or on --socket PATH, serving up to --max-clients connections\n\
         concurrently; further clients get a typed `busy` response).\n\
         Requests: point, sweep (server-side grid expansion), run, cancel,\n\
         health, shutdown. SIGTERM/EOF drain gracefully; --wal makes\n\
         finished points survive SIGKILL."
    );
    std::process::exit(2);
}

fn next_val(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("noc-serve: {flag} needs a value");
        usage();
    })
}

fn parse_num(flag: &str, raw: &str) -> u64 {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("noc-serve: {flag} wants an unsigned integer, got {raw:?}");
        usage();
    })
}

/// Like [`parse_num`] but range-checked: a value that does not fit the
/// flag's actual width is a usage error, never a silent wrap (a bare
/// `as u32` would turn `--max-attempts 4294967297` into 1).
fn parse_checked<T: TryFrom<u64>>(flag: &str, raw: &str) -> T {
    let v = parse_num(flag, raw);
    T::try_from(v).unwrap_or_else(|_| {
        eprintln!(
            "noc-serve: {flag} value {v} is out of range (max {})",
            match std::mem::size_of::<T>() {
                4 => u32::MAX as u64,
                _ => usize::MAX as u64,
            }
        );
        usage();
    })
}

fn main() {
    install_signal_handlers();
    let mut cfg = ServeConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wal" => cfg.wal = Some(PathBuf::from(next_val(&mut args, "--wal"))),
            "--queue" => {
                cfg.queue_capacity = parse_checked("--queue", &next_val(&mut args, "--queue"))
            }
            "--workers" => {
                cfg.workers = parse_checked("--workers", &next_val(&mut args, "--workers"))
            }
            "--max-attempts" => {
                cfg.retry.max_attempts =
                    parse_checked("--max-attempts", &next_val(&mut args, "--max-attempts"))
            }
            "--budget" => {
                cfg.default_budget = parse_num("--budget", &next_val(&mut args, "--budget"))
            }
            "--backoff-ms" => {
                cfg.retry.base_ms = parse_num("--backoff-ms", &next_val(&mut args, "--backoff-ms"))
            }
            "--backoff-cap-ms" => {
                cfg.retry.cap_ms =
                    parse_num("--backoff-cap-ms", &next_val(&mut args, "--backoff-cap-ms"))
            }
            "--no-backoff-sleep" => cfg.retry.sleep = false,
            "--chaos" => cfg.chaos = parse_num("--chaos", &next_val(&mut args, "--chaos")),
            "--socket" => socket = Some(PathBuf::from(next_val(&mut args, "--socket"))),
            "--max-clients" => {
                cfg.max_clients =
                    parse_checked("--max-clients", &next_val(&mut args, "--max-clients"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("noc-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    let service = match Service::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("noc-serve: {e}");
            std::process::exit(1);
        }
    };
    let result = match socket {
        Some(path) => serve_socket(&service, &path),
        None => serve_stdio(&service),
    };
    if let Err(e) = result {
        eprintln!("noc-serve: {e}");
        std::process::exit(1);
    }
}

/// stdin/stdout mode. A reader thread feeds a channel so the main loop
/// can poll the TERM flag every 50 ms even while stdin is idle.
fn serve_stdio(service: &Service) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in BufReader::new(stdin.lock()).lines() {
            let Ok(line) = line else { return };
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        if TERM.load(Ordering::SeqCst) {
            return service.shutdown(&mut out);
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                if !service.handle_line(&line, &mut out)? {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // EOF: drain exactly like SIGTERM
                return service.shutdown(&mut out);
            }
        }
    }
}

/// Unix-socket mode: the concurrent server in [`noc_serve::socket`].
#[cfg(unix)]
fn serve_socket(service: &Service, path: &std::path::Path) -> std::io::Result<()> {
    noc_serve::socket::serve(service, path, &TERM)
}

#[cfg(not(unix))]
fn serve_socket(_service: &Service, _path: &std::path::Path) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a Unix platform; use stdin/stdout mode",
    ))
}
