//! The `noc-serve` binary: a persistent evaluation service speaking
//! the `noc-eval/serve/v1` line protocol on stdin/stdout, or on a Unix
//! socket with `--socket PATH`.
//!
//! ```text
//! noc-serve [--wal PATH] [--queue N] [--workers N] [--max-attempts N]
//!           [--budget CYCLES] [--backoff-ms N] [--backoff-cap-ms N]
//!           [--no-backoff-sleep] [--chaos N] [--socket PATH]
//! ```
//!
//! `SIGTERM`/`SIGINT` (and EOF on stdin) trigger a graceful drain:
//! queued points are evaluated, the WAL is flushed, and a final
//! `status` record is emitted before exit. `SIGKILL` is survivable by
//! design: restart with the same `--wal` and finished points replay
//! from the journal instead of recomputing.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use noc_serve::{ServeConfig, Service};

/// Set from the signal handler; polled by the request loops.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        // async-signal-safe: one atomic store
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler: extern "C" fn(i32) = on_term;
    let addr = handler as *const () as usize;
    unsafe {
        signal(SIGTERM, addr);
        signal(SIGINT, addr);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: noc-serve [--wal PATH] [--queue N] [--workers N] [--max-attempts N]\n\
         \u{20}                [--budget CYCLES] [--backoff-ms N] [--backoff-cap-ms N]\n\
         \u{20}                [--no-backoff-sleep] [--chaos N] [--socket PATH]\n\
         Speaks noc-eval/serve/v1, one JSON object per line, on stdin/stdout\n\
         (or on --socket PATH). SIGTERM/EOF drain gracefully; --wal makes\n\
         finished points survive SIGKILL."
    );
    std::process::exit(2);
}

fn next_val(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("noc-serve: {flag} needs a value");
        usage();
    })
}

fn parse_num(flag: &str, raw: &str) -> u64 {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("noc-serve: {flag} wants an unsigned integer, got {raw:?}");
        usage();
    })
}

fn main() {
    install_signal_handlers();
    let mut cfg = ServeConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wal" => cfg.wal = Some(PathBuf::from(next_val(&mut args, "--wal"))),
            "--queue" => {
                cfg.queue_capacity = parse_num("--queue", &next_val(&mut args, "--queue")) as usize
            }
            "--workers" => {
                cfg.workers = parse_num("--workers", &next_val(&mut args, "--workers")) as usize
            }
            "--max-attempts" => {
                cfg.retry.max_attempts =
                    parse_num("--max-attempts", &next_val(&mut args, "--max-attempts")) as u32
            }
            "--budget" => {
                cfg.default_budget = parse_num("--budget", &next_val(&mut args, "--budget"))
            }
            "--backoff-ms" => {
                cfg.retry.base_ms = parse_num("--backoff-ms", &next_val(&mut args, "--backoff-ms"))
            }
            "--backoff-cap-ms" => {
                cfg.retry.cap_ms =
                    parse_num("--backoff-cap-ms", &next_val(&mut args, "--backoff-cap-ms"))
            }
            "--no-backoff-sleep" => cfg.retry.sleep = false,
            "--chaos" => cfg.chaos = parse_num("--chaos", &next_val(&mut args, "--chaos")),
            "--socket" => socket = Some(PathBuf::from(next_val(&mut args, "--socket"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("noc-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    let service = match Service::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("noc-serve: {e}");
            std::process::exit(1);
        }
    };
    let result = match socket {
        Some(path) => serve_socket(service, &path),
        None => serve_stdio(service),
    };
    if let Err(e) = result {
        eprintln!("noc-serve: {e}");
        std::process::exit(1);
    }
}

/// stdin/stdout mode. A reader thread feeds a channel so the main loop
/// can poll the TERM flag every 50 ms even while stdin is idle.
fn serve_stdio(mut service: Service) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in BufReader::new(stdin.lock()).lines() {
            let Ok(line) = line else { return };
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        if TERM.swap(false, Ordering::SeqCst) {
            return service.shutdown(&mut out);
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                if !service.handle_line(&line, &mut out)? {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // EOF: drain exactly like SIGTERM
                return service.shutdown(&mut out);
            }
        }
    }
}

/// Unix-socket mode: one client at a time, same protocol. Read
/// timeouts keep the TERM flag responsive mid-connection.
#[cfg(unix)]
fn serve_socket(mut service: Service, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    loop {
        if TERM.swap(false, Ordering::SeqCst) {
            return service.shutdown(&mut std::io::sink());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut out = stream;
                let mut line = String::new();
                loop {
                    if TERM.swap(false, Ordering::SeqCst) {
                        return service.shutdown(&mut out);
                    }
                    match reader.read_line(&mut line) {
                        Ok(0) => break, // client hung up; await the next one
                        Ok(_) => {
                            if !service.handle_line(&line, &mut out)? {
                                return Ok(());
                            }
                            line.clear();
                        }
                        // timeout: partial bytes stay buffered in `line`
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_service: Service, _path: &std::path::Path) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a Unix platform; use stdin/stdout mode",
    ))
}
