//! # noc-serve — the crash-tolerant long-running evaluation service
//!
//! The rest of the workspace runs fire-and-forget batch binaries; this
//! crate turns the evaluator into a *persistent process* that accepts
//! batched experiment requests over the `noc-eval/serve/v1` line
//! protocol (stdin/stdout, or an optional Unix socket) and hardens
//! every stage of the request path:
//!
//! 1. **Admission + backpressure** — a bounded queue; when it is full a
//!    point is either rejected with a typed `Shed` reason or, if the
//!    client opted in, answered from the `noc-analytic` predictor with
//!    a `degraded: true` tag. Overload becomes data, never a hang.
//! 2. **Deadlines + cancellation** — every point runs under the cycle
//!    budget watchdog ([`noc_openloop::measure_budgeted`]) and an
//!    optional batch wall-clock deadline; exhaustion yields a typed
//!    `Timeout`. Queued batches can be cancelled wholesale.
//! 3. **Retry with capped exponential backoff** — `Panicked` and
//!    `Diverged` points are re-attempted a bounded number of times,
//!    with jitter derived from the point's own seed family
//!    ([`noc_exp::derive_seed`]) so retry schedules are deterministic
//!    and replayable.
//! 4. **Durable write-ahead journal** — every evaluated outcome is
//!    appended to a [`noc_exp::Wal`] before it is reported; a killed
//!    service replays the WAL on restart and answers finished points
//!    from cache, bit-identical to the uninterrupted run.
//! 5. **Graceful shutdown + health** — `SIGTERM`/`shutdown` drains
//!    queued points, flushes the WAL, and emits a final `status`
//!    record; `health` reports queue depth, worker count, and the
//!    shed/retry/timeout counters.
//!
//! The schema types live in [`noc_eval::serve`]; this crate is the
//! engine behind them plus the `noc-serve` binary.

#![warn(missing_docs)]

mod retry;
mod service;
pub mod socket;

use std::path::PathBuf;

use noc_sim::error::ConfigError;

pub use retry::{run_with_retry, Retried, RetryError, RetryPolicy};
pub use service::Service;

/// Service-level configuration (queue, workers, retry, WAL, chaos).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission queue capacity in points; beyond it, points are shed
    /// or answered degraded. Must be >= 1.
    pub queue_capacity: usize,
    /// Simulator worker threads; `0` means auto
    /// ([`noc_exp::serve_workers`]).
    pub workers: usize,
    /// Retry policy for `Panicked`/`Diverged` points.
    pub retry: RetryPolicy,
    /// Cycle budget for points that do not carry their own. Must be
    /// >= 1 (the watchdog cannot run on a zero budget).
    pub default_budget: u64,
    /// Write-ahead journal path; `None` disables durability (answers
    /// are still cached in memory for the process lifetime).
    pub wal: Option<PathBuf>,
    /// Fault-injection knob for the smoke harness: the first `chaos`
    /// evaluation attempts (process-wide) panic before touching the
    /// simulator, exercising the retry path end-to-end. `0` in
    /// production.
    pub chaos: u64,
    /// Socket-mode connection bound: at most this many clients are
    /// served concurrently; further connections get a typed `busy`
    /// response and are closed. Must be >= 1. Ignored in stdio mode.
    pub max_clients: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            workers: 0,
            retry: RetryPolicy::default(),
            default_budget: 50_000_000,
            wal: None,
            chaos: 0,
            max_clients: 8,
        }
    }
}

impl ServeConfig {
    /// Validate the configuration: zero capacities and budgets are
    /// rejected up front with the same [`ConfigError`] vocabulary as
    /// the simulator's own knobs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::Parameter {
                name: "queue_capacity",
                why: "admission queue must hold at least one point".into(),
            });
        }
        if self.max_clients == 0 {
            return Err(ConfigError::Parameter {
                name: "max_clients",
                why: "socket mode must admit at least one client".into(),
            });
        }
        if self.default_budget == 0 {
            return Err(ConfigError::Parameter {
                name: "default_budget",
                why: "cycle budget must be >= 1; a zero budget can never complete a warmup".into(),
            });
        }
        self.retry.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_knobs_are_rejected() {
        let c = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(c.validate().is_err());
        let c = ServeConfig { max_clients: 0, ..ServeConfig::default() };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("max_clients"), "{err}");
        let c = ServeConfig { default_budget: 0, ..ServeConfig::default() };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("default_budget"), "{err}");
        let mut c = ServeConfig::default();
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());
    }
}
