//! In-process tests of the full request path: admission, backpressure,
//! degraded answers, deadlines, retry, WAL kill-resume, cancellation,
//! and graceful drain.

use noc_eval::serve::{
    parse_response, PointRequest, ServeOutcome, ServeRequest, ServeResponse, ServeResult,
};
use noc_serve::{RetryPolicy, ServeConfig, Service};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::PatternKind;

fn point(batch: &str, seed: u64, load: f64) -> PointRequest {
    PointRequest {
        batch: batch.into(),
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }).with_seed(seed),
        pattern: PatternKind::Uniform,
        packet_size: 1,
        load,
        warmup: 200,
        measure: 500,
        drain_max: 5_000,
        budget: None,
        allow_degraded: false,
        analytic_admission: false,
    }
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        retry: RetryPolicy { sleep: false, ..RetryPolicy::default() },
        default_budget: 1_000_000,
        ..ServeConfig::default()
    }
}

/// Feed request lines, returning parsed responses and whether the
/// service is still accepting input.
fn drive(svc: &mut Service, reqs: &[ServeRequest]) -> (Vec<ServeResponse>, bool) {
    let mut buf = Vec::new();
    let mut alive = true;
    for r in reqs {
        alive = svc.handle_line(&r.to_json(), &mut buf).unwrap();
    }
    let text = String::from_utf8(buf).unwrap();
    (text.lines().map(|l| parse_response(l).expect(l)).collect(), alive)
}

fn results(resps: &[ServeResponse]) -> Vec<ServeResult> {
    resps
        .iter()
        .filter_map(|r| match r {
            ServeResponse::Result(r) => Some(r.clone()),
            _ => None,
        })
        .collect()
}

fn run_req(batch: &str) -> ServeRequest {
    ServeRequest::Run { batch: batch.into(), max_attempts: None, deadline_ms: None }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("noc_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn batch_runs_in_submission_order_and_reports_done() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let reqs: Vec<ServeRequest> = (0..3)
        .map(|i| ServeRequest::Point(Box::new(point("b1", i, 0.1))))
        .chain([run_req("b1")])
        .collect();
    let (resps, alive) = drive(&mut svc, &reqs);
    assert!(alive);
    let rs = results(&resps);
    assert_eq!(rs.len(), 3);
    for (i, r) in rs.iter().enumerate() {
        assert_eq!(r.point, i as u64, "results arrive in submission order");
        assert!(!r.cached);
        assert_eq!(r.attempts, 1);
        let ServeOutcome::Ok { stable, .. } = r.outcome else {
            panic!("expected ok at low load, got {:?}", r.outcome)
        };
        assert!(stable);
    }
    assert!(matches!(resps.last(), Some(ServeResponse::BatchDone { points: 3, ok: 3, .. })));
    let h = svc.snapshot();
    assert_eq!(h.completed, 3);
    assert_eq!(h.queue_depth, 0);
    assert!(h.workers >= 1);
}

#[test]
fn identical_resubmission_is_answered_from_cache_bit_identically() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let pts: Vec<_> = (0..2).map(|i| point("b1", 10 + i, 0.15)).collect();
    let mut reqs: Vec<ServeRequest> =
        pts.iter().map(|p| ServeRequest::Point(Box::new(p.clone()))).collect();
    reqs.push(run_req("b1"));
    let (first, _) = drive(&mut svc, &reqs);
    // same points again, different batch label: digest ignores the batch
    let mut reqs2: Vec<ServeRequest> = pts
        .iter()
        .map(|p| {
            let mut q = p.clone();
            q.batch = "b2".into();
            ServeRequest::Point(Box::new(q))
        })
        .collect();
    reqs2.push(run_req("b2"));
    let (second, _) = drive(&mut svc, &reqs2);
    let (a, b) = (results(&first), results(&second));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert!(!x.cached && y.cached);
        assert_eq!(y.attempts, 0, "cached answers cost no evaluation");
        assert_eq!(
            x.outcome.canonical(),
            y.outcome.canonical(),
            "cached replay must be byte-identical"
        );
    }
    assert_eq!(svc.snapshot().cache_hits, 2);
}

#[test]
fn wal_resume_after_kill_is_complete_and_bit_identical() {
    let wal = tmp("resume.wal");
    let pts: Vec<_> = (0..4).map(|i| point("b1", 100 + i, 0.1 + 0.02 * i as f64)).collect();
    let submit_all = |pts: &[PointRequest]| -> Vec<ServeRequest> {
        pts.iter()
            .map(|p| ServeRequest::Point(Box::new(p.clone())))
            .chain([run_req("b1")])
            .collect()
    };

    // uninterrupted reference run (no WAL at all)
    let mut reference = Service::new(quick_cfg()).unwrap();
    let (ref_resps, _) = drive(&mut reference, &submit_all(&pts));

    // "first life": only the first two points complete before the kill
    {
        let mut svc = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
        let partial: Vec<ServeRequest> = pts[..2]
            .iter()
            .map(|p| ServeRequest::Point(Box::new(p.clone())))
            .chain([run_req("b1")])
            .collect();
        drive(&mut svc, &partial);
        // SIGKILL: the Service is dropped with no commit/shutdown
    }

    // "second life": same WAL, full script resubmitted
    let mut svc = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
    assert_eq!(svc.cached_results(), 2, "the WAL replays the finished points");
    let (resps, _) = drive(&mut svc, &submit_all(&pts));

    let (reference, resumed) = (results(&ref_resps), results(&resps));
    assert_eq!(resumed.len(), reference.len(), "final results are complete");
    for (r, u) in resumed.iter().zip(&reference) {
        assert_eq!(r.point, u.point);
        assert_eq!(r.key, u.key);
        assert_eq!(
            r.outcome.canonical(),
            u.outcome.canonical(),
            "resumed point {} must be bit-identical to the uninterrupted run",
            r.point
        );
    }
    assert!(resumed[0].cached && resumed[1].cached);
    assert!(!resumed[2].cached && !resumed[3].cached);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn torn_wal_tail_is_tolerated_on_restart() {
    let wal = tmp("torn.wal");
    {
        let mut svc = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
        drive(&mut svc, &[ServeRequest::Point(Box::new(point("b1", 7, 0.1))), run_req("b1")]);
    }
    // simulate a kill mid-append: partial record, no newline
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(b"0123456789abcdef:00000000000000ff\t\"outcome\": \"ok\", \"avg").unwrap();
    }
    let svc = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
    assert_eq!(svc.cached_results(), 1, "intact records survive a torn tail");
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn full_queue_sheds_or_degrades_with_typed_outcomes() {
    let cfg = ServeConfig { queue_capacity: 2, ..quick_cfg() };
    let mut svc = Service::new(cfg).unwrap();
    let mut degraded_pt = point("b1", 3, 0.1);
    degraded_pt.allow_degraded = true;
    let (resps, _) = drive(
        &mut svc,
        &[
            ServeRequest::Point(Box::new(point("b1", 1, 0.1))),
            ServeRequest::Point(Box::new(point("b1", 2, 0.1))),
            // queue now full: one hard rejection, one degraded answer
            ServeRequest::Point(Box::new(point("b1", 3, 0.1))),
            ServeRequest::Point(Box::new(degraded_pt)),
        ],
    );
    let rs = results(&resps);
    assert_eq!(rs.len(), 2, "accepted points answer later, at run");
    let ServeOutcome::Shed { reason } = &rs[0].outcome else {
        panic!("expected shed, got {:?}", rs[0].outcome)
    };
    assert!(reason.contains("queue full"), "{reason}");
    let ServeOutcome::Degraded { predicted_saturation, stable, .. } = &rs[1].outcome else {
        panic!("expected degraded, got {:?}", rs[1].outcome)
    };
    assert!(*predicted_saturation > 0.0);
    assert!(*stable, "0.1 on a 4x4 mesh sits below predicted saturation");
    assert!(rs[1].to_json().contains("\"degraded\": true"));
    let h = svc.snapshot();
    assert_eq!((h.shed, h.degraded, h.queue_depth), (1, 1, 2));
    // the queued points still run normally afterwards
    let (resps, _) = drive(&mut svc, &[run_req("b1")]);
    assert!(matches!(resps.last(), Some(ServeResponse::BatchDone { points: 2, ok: 2, .. })));
}

#[test]
fn expired_wall_deadline_yields_typed_timeouts_not_cached() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let p = point("b1", 5, 0.1);
    let (resps, _) = drive(
        &mut svc,
        &[
            ServeRequest::Point(Box::new(p.clone())),
            ServeRequest::Run { batch: "b1".into(), max_attempts: None, deadline_ms: Some(0) },
        ],
    );
    let rs = results(&resps);
    assert_eq!(rs.len(), 1);
    assert_eq!(rs[0].outcome, ServeOutcome::Timeout { budget: 0, wall: true });
    assert_eq!(svc.snapshot().timeouts, 1);
    // wall timeouts are transient: the same point evaluates cleanly next time
    let (resps, _) = drive(&mut svc, &[ServeRequest::Point(Box::new(p)), run_req("b1")]);
    let rs = results(&resps);
    assert!(!rs[0].cached);
    assert!(matches!(rs[0].outcome, ServeOutcome::Ok { .. }));
}

#[test]
fn cycle_budget_timeout_is_deterministic_and_cached() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let mut p = point("b1", 6, 0.1);
    p.budget = Some(100); // cannot even fit warmup+measure
    let (resps, _) = drive(&mut svc, &[ServeRequest::Point(Box::new(p.clone())), run_req("b1")]);
    let rs = results(&resps);
    assert_eq!(rs[0].outcome, ServeOutcome::Timeout { budget: 100, wall: false });
    assert_eq!(rs[0].attempts, 3, "divergence is retried to the attempt cap");
    // deterministic timeouts are facts about the config: cached
    let (resps, _) = drive(&mut svc, &[ServeRequest::Point(Box::new(p)), run_req("b1")]);
    let rs = results(&resps);
    assert!(rs[0].cached);
    assert_eq!(rs[0].outcome, ServeOutcome::Timeout { budget: 100, wall: false });
}

#[test]
fn invalid_configs_are_rejected_at_admission() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let mut bad_buf = point("b1", 1, 0.1);
    bad_buf.net.vc_buf = 0;
    let mut bad_budget = point("b1", 2, 0.1);
    bad_budget.budget = Some(0);
    let bad_load = point("b1", 3, 2.0);
    let (resps, _) = drive(
        &mut svc,
        &[
            ServeRequest::Point(Box::new(bad_buf)),
            ServeRequest::Point(Box::new(bad_budget)),
            ServeRequest::Point(Box::new(bad_load)),
            run_req("b1"),
        ],
    );
    let rs = results(&resps);
    assert_eq!(rs.len(), 3);
    for (r, needle) in rs.iter().zip(["vc_buf", "cycle_budget", "load"]) {
        let ServeOutcome::Invalid { reason } = &r.outcome else {
            panic!("expected invalid, got {:?}", r.outcome)
        };
        assert!(reason.contains(needle), "{reason:?} should mention {needle}");
    }
    assert!(matches!(resps.last(), Some(ServeResponse::BatchDone { points: 0, .. })));
}

#[test]
fn cancel_drops_only_the_named_batch() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let (resps, _) = drive(
        &mut svc,
        &[
            ServeRequest::Point(Box::new(point("doomed", 1, 0.1))),
            ServeRequest::Point(Box::new(point("kept", 2, 0.1))),
            ServeRequest::Point(Box::new(point("doomed", 3, 0.1))),
            ServeRequest::Cancel { batch: "doomed".into() },
            run_req("kept"),
        ],
    );
    assert!(resps.iter().any(|r| matches!(r, ServeResponse::Cancelled { dropped: 2, .. })));
    assert!(matches!(resps.last(), Some(ServeResponse::BatchDone { points: 1, ok: 1, .. })));
    assert_eq!(svc.snapshot().queue_depth, 0);
}

#[test]
fn chaos_panics_are_retried_and_results_match_a_clean_run() {
    let pts: Vec<_> = (0..2).map(|i| point("b1", 50 + i, 0.12)).collect();
    let script: Vec<ServeRequest> = pts
        .iter()
        .map(|p| ServeRequest::Point(Box::new(p.clone())))
        .chain([run_req("b1")])
        .collect();
    let mut clean = Service::new(quick_cfg()).unwrap();
    let (clean_resps, _) = drive(&mut clean, &script);
    let mut chaotic = Service::new(ServeConfig { chaos: 2, ..quick_cfg() }).unwrap();
    let (chaos_resps, _) = drive(&mut chaotic, &script);
    let (a, b) = (results(&clean_resps), results(&chaos_resps));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.outcome.canonical(),
            y.outcome.canonical(),
            "a retried point must be bit-identical to a clean first-try run"
        );
    }
    let h = chaotic.snapshot();
    assert_eq!(h.retries, 2, "both injected faults cost exactly one retry each");
    assert_eq!(h.panics, 0, "no point exhausted its attempts");
    assert!(b.iter().map(|r| r.attempts).sum::<u32>() > a.iter().map(|r| r.attempts).sum::<u32>());
}

#[test]
fn shutdown_drains_queued_points_then_sheds_new_ones() {
    let mut svc = Service::new(quick_cfg()).unwrap();
    let (resps, alive) = drive(
        &mut svc,
        &[
            ServeRequest::Point(Box::new(point("b1", 1, 0.1))),
            ServeRequest::Point(Box::new(point("b2", 2, 0.1))),
            ServeRequest::Shutdown,
        ],
    );
    assert!(!alive, "shutdown ends the session");
    let rs = results(&resps);
    assert_eq!(rs.len(), 2, "queued points drain before exit");
    assert!(rs.iter().all(|r| matches!(r.outcome, ServeOutcome::Ok { .. })));
    let Some(ServeResponse::Status(h)) = resps.last() else {
        panic!("final record must be a status, got {:?}", resps.last())
    };
    assert!(h.draining);
    assert_eq!(h.queue_depth, 0);
    // stragglers after the drain get a typed shed, never silence
    let (resps, _) = drive(&mut svc, &[ServeRequest::Point(Box::new(point("b3", 9, 0.1)))]);
    let rs = results(&resps);
    let ServeOutcome::Shed { reason } = &rs[0].outcome else {
        panic!("expected shed, got {:?}", rs[0].outcome)
    };
    assert!(reason.contains("draining"), "{reason}");
}

#[test]
fn malformed_lines_get_typed_error_responses() {
    let svc = Service::new(quick_cfg()).unwrap();
    let mut buf = Vec::new();
    assert!(svc.handle_line("not json at all", &mut buf).unwrap());
    assert!(svc
        .handle_line("{\"schema\": \"noc-eval/serve/v1\", \"req\": \"warp\"}", &mut buf)
        .unwrap());
    assert!(svc.handle_line("", &mut buf).unwrap(), "blank lines are ignored");
    let text = String::from_utf8(buf).unwrap();
    let errors: Vec<_> = text.lines().map(|l| parse_response(l).unwrap()).collect();
    assert_eq!(errors.len(), 2);
    assert!(errors.iter().all(|e| matches!(e, ServeResponse::Error { .. })));
}
