//! Property tests for the robustness layer's determinism contract:
//! a `Panicked`-then-retried point is bit-identical to a clean
//! first-try run (same derived seed), and typed shed/timeout/panic
//! outcomes survive the serve/v1 schema's tolerant parser verbatim.

use noc_eval::serve::{parse_response, ServeOutcome, ServeResponse, ServeResult};
use noc_openloop::{measure, measure_budgeted, OpenLoopConfig};
use noc_serve::{run_with_retry, RetryPolicy};
use noc_sim::config::{NetConfig, TopologyKind};
use proptest::prelude::*;

fn cfg(seed: u64, load: f64) -> OpenLoopConfig {
    OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }).with_seed(seed),
        load,
        warmup: 200,
        measure: 400,
        drain_max: 4_000,
        ..OpenLoopConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// A point whose first attempt panics and is retried produces the
    /// exact bits a clean first-try run produces: retrying reruns the
    /// same `(config, seed)` and the simulator is a pure function of it.
    #[test]
    fn panicked_then_retried_point_is_bit_identical_to_clean_run(
        seed in 0u64..u64::MAX,
        centiload in 2u32..25,
    ) {
        let c = cfg(seed, centiload as f64 / 100.0);
        let clean = measure(&c).unwrap();
        let policy = RetryPolicy { sleep: false, ..RetryPolicy::default() };
        let retried = run_with_retry(&policy, seed, None, |attempt| {
            if attempt == 1 {
                panic!("injected transient fault");
            }
            Ok(measure_budgeted(&c, 1_000_000).unwrap().expect("generous budget"))
        })
        .unwrap();
        prop_assert_eq!(retried.attempts, 2);
        let r = retried.value;
        prop_assert_eq!(r.avg_latency.to_bits(), clean.avg_latency.to_bits());
        prop_assert_eq!(r.throughput.to_bits(), clean.throughput.to_bits());
        prop_assert_eq!(r.measured_packets, clean.measured_packets);
        prop_assert_eq!(r.cycles, clean.cycles);
        prop_assert_eq!(r.worst_node_latency.to_bits(), clean.worst_node_latency.to_bits());
    }
}

/// Build a string that exercises the full escape set from raw bytes.
fn nasty_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Shed/timeout/panic outcomes round-trip through the serve/v1
    /// tolerant parser for arbitrary reason strings (quotes, newlines,
    /// control bytes, non-ASCII) and full-range budgets.
    #[test]
    fn shed_and_timeout_outcomes_round_trip_through_the_parser(
        raw in prop::collection::vec(0u8..=255u8, 0..48),
        budget in 0u64..u64::MAX,
        wall in prop::bool::ANY,
        point in 0u64..u64::MAX,
        pick in 0u32..3,
    ) {
        let text = nasty_string(&raw);
        let outcome = match pick {
            0 => ServeOutcome::Shed { reason: text },
            1 => ServeOutcome::Timeout { budget, wall },
            _ => ServeOutcome::Panicked { message: text },
        };
        let result = ServeResult {
            batch: "prop".into(),
            point,
            key: format!("{budget:016x}:{point:016x}"),
            cached: false,
            attempts: 1,
            outcome: outcome.clone(),
        };
        let line = result.to_json();
        let parsed = parse_response(&line);
        prop_assert!(parsed.is_ok(), "line failed to parse: {:?} -> {:?}", line, parsed);
        let ServeResponse::Result(back) = parsed.unwrap() else {
            return Err(TestCaseError::fail("expected a result response"));
        };
        prop_assert_eq!(&back, &result, "typed round trip");
        // the canonical fragment regenerates byte-for-byte, which is
        // what makes WAL replay bit-identical
        prop_assert_eq!(back.outcome.canonical(), outcome.canonical());
    }
}
