//! Property tests for the two serving contracts PR 10 adds: a `sweep`
//! request is byte-identical to submitting its expansion point by
//! point, and analytic admission control is a pure accelerator — it
//! never alters an answer that comes back non-degraded.

use noc_eval::serve::{
    parse_response, PointRequest, ServeOutcome, ServeRequest, ServeResponse, SweepRequest,
};
use noc_serve::{RetryPolicy, ServeConfig, Service};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::PatternKind;
use proptest::prelude::*;

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        retry: RetryPolicy { sleep: false, ..RetryPolicy::default() },
        // small enough that a saturated point diverges fast, large
        // enough that a stable point finishes: keeps cases quick and
        // every outcome deterministic (hence comparable bit-for-bit)
        default_budget: 400_000,
        ..ServeConfig::default()
    }
}

/// Drive one service with request lines; return the raw response text.
fn drive(svc: &Service, reqs: &[ServeRequest]) -> String {
    let mut buf = Vec::new();
    for r in reqs {
        svc.handle_line(&r.to_json(), &mut buf).unwrap();
    }
    String::from_utf8(buf).unwrap()
}

fn sweep(base_seed: u64, patterns: Vec<PatternKind>, loads: Vec<f64>, seeds: u64) -> SweepRequest {
    SweepRequest {
        batch: "sw".into(),
        net: NetConfig::baseline()
            .with_topology(TopologyKind::Mesh2D { k: 4 })
            .with_seed(base_seed),
        patterns,
        loads,
        seeds,
        packet_size: 1,
        warmup: 200,
        measure: 400,
        drain_max: 4_000,
        budget: None,
        allow_degraded: false,
        analytic_admission: false,
        max_attempts: None,
        deadline_ms: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// One `sweep` line produces byte-for-byte the stream that
    /// submitting `expand()`'s points individually produces — same
    /// result lines, same `batch-done` — plus exactly one trailing
    /// `sweep-done` summary whose tallies match.
    #[test]
    fn sweep_request_is_byte_identical_to_point_by_point_submission(
        base_seed in 0u64..u64::MAX,
        pattern_pick in 0usize..3,
        n_loads in 1usize..3,
        seeds in 1u64..3,
    ) {
        let patterns = match pattern_pick {
            0 => vec![PatternKind::Uniform],
            1 => vec![PatternKind::Transpose],
            _ => vec![PatternKind::Uniform, PatternKind::Transpose],
        };
        let loads: Vec<f64> = (0..n_loads).map(|i| 0.06 + 0.03 * i as f64).collect();
        let sw = sweep(base_seed, patterns, loads, seeds);

        // reference: client-side expansion, one point line each
        let reference = Service::new(quick_cfg()).unwrap();
        let mut reqs: Vec<ServeRequest> =
            sw.expand().into_iter().map(|p| ServeRequest::Point(Box::new(p))).collect();
        let n_points = reqs.len() as u64;
        reqs.push(ServeRequest::Run {
            batch: sw.batch.clone(),
            max_attempts: None,
            deadline_ms: None,
        });
        let ref_text = drive(&reference, &reqs);

        // one sweep line against a fresh service
        let swept = Service::new(quick_cfg()).unwrap();
        let sweep_text = drive(&swept, &[ServeRequest::Sweep(Box::new(sw))]);

        let mut sweep_lines: Vec<&str> = sweep_text.lines().collect();
        let summary = sweep_lines.pop().expect("sweep emits at least the summary");
        prop_assert_eq!(
            sweep_lines.join("\n"),
            ref_text.lines().collect::<Vec<_>>().join("\n"),
            "sweep stream must be byte-identical to point-by-point submission"
        );
        let ServeResponse::SweepDone { expanded, ok, degraded, shed, invalid, timeout, .. } =
            parse_response(summary).expect(summary)
        else {
            return Err(TestCaseError::fail(format!("expected sweep-done, got {summary}")));
        };
        prop_assert_eq!(expanded, n_points);
        prop_assert_eq!(ok + degraded + shed + invalid + timeout, n_points);
    }
}

fn point(seed: u64, load: f64, analytic_admission: bool) -> PointRequest {
    PointRequest {
        batch: "adm".into(),
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }).with_seed(seed),
        pattern: PatternKind::Uniform,
        packet_size: 1,
        load,
        warmup: 200,
        measure: 400,
        drain_max: 4_000,
        budget: None,
        allow_degraded: false,
        analytic_admission,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The pure-accelerator guarantee: turning `analytic_admission`
    /// on may convert answers *into* degraded predictions, but any
    /// answer that comes back non-degraded is bit-identical to the
    /// flag-off run. (Points stay under queue capacity, so the prune
    /// is the only admission difference in play.)
    #[test]
    fn analytic_admission_never_alters_a_non_degraded_answer(
        seed in 0u64..u64::MAX,
        // loads straddle saturation so some cases actually prune
        centiloads in prop::collection::vec(2u32..80, 1..4),
    ) {
        let pts: Vec<(u64, f64)> = centiloads
            .iter()
            .enumerate()
            .map(|(i, c)| (seed.wrapping_add(i as u64), *c as f64 / 100.0))
            .collect();
        let run =
            ServeRequest::Run { batch: "adm".into(), max_attempts: None, deadline_ms: None };

        let script = |admission: bool| -> Vec<ServeRequest> {
            pts.iter()
                .map(|&(s, l)| ServeRequest::Point(Box::new(point(s, l, admission))))
                .chain([run.clone()])
                .collect()
        };
        let collect = |text: &str| -> Vec<(String, ServeOutcome)> {
            text.lines()
                .filter_map(|l| match parse_response(l).expect(l) {
                    ServeResponse::Result(r) => Some((r.key, r.outcome)),
                    _ => None,
                })
                .collect()
        };

        // pruned points answer at admission time, before `run`, so the
        // two streams order results differently: compare by key
        let off = collect(&drive(&Service::new(quick_cfg()).unwrap(), &script(false)));
        let on = collect(&drive(&Service::new(quick_cfg()).unwrap(), &script(true)));
        prop_assert_eq!(off.len(), on.len());
        let off_by_key: std::collections::HashMap<&str, &ServeOutcome> =
            off.iter().map(|(k, o)| (k.as_str(), o)).collect();

        for (key, out_on) in &on {
            let out_off = off_by_key
                .get(key.as_str())
                .ok_or_else(|| TestCaseError::fail(format!("key {key} only in the flag-on run")))?;
            if matches!(out_on, ServeOutcome::Degraded { .. }) {
                continue; // the accelerator is allowed to degrade...
            }
            prop_assert_eq!(
                out_on.canonical(),
                out_off.canonical(),
                "...but never to alter a non-degraded answer (key {})",
                key
            );
        }
        // sanity: the flag-off run never degrades under-capacity points
        prop_assert!(off.iter().all(|(_, o)| !matches!(o, ServeOutcome::Degraded { .. })));
    }
}
