//! Concurrent multi-client socket serving: N clients with overlapping
//! grids over one shared [`Service`] must produce exactly the bits a
//! single serial client produces — including across a WAL restart —
//! and the `--max-clients` bound must answer with a typed `busy`
//! record, never a silent drop.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use noc_eval::serve::{
    parse_response, PointRequest, ServeOutcome, ServeRequest, ServeResponse, ServeResult,
};
use noc_serve::{socket, RetryPolicy, ServeConfig, Service};
use noc_sim::config::{NetConfig, TopologyKind};
use noc_traffic::PatternKind;

fn point(batch: &str, seed: u64, load: f64) -> PointRequest {
    PointRequest {
        batch: batch.into(),
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }).with_seed(seed),
        pattern: PatternKind::Uniform,
        packet_size: 1,
        load,
        warmup: 200,
        measure: 500,
        drain_max: 5_000,
        budget: None,
        allow_degraded: false,
        analytic_admission: false,
    }
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        retry: RetryPolicy { sleep: false, ..RetryPolicy::default() },
        default_budget: 1_000_000,
        ..ServeConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("noc_serve_conc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

/// Connect to the server socket, retrying while the listener binds.
fn connect(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("server socket never appeared at {}: {e}", path.display()),
        }
    }
}

/// One client session: submit every point of `batch`, run it, and
/// read responses until the batch-done marker. Returns the parsed
/// responses in arrival order.
fn client_session(path: &Path, batch: &str, pts: &[PointRequest]) -> Vec<ServeResponse> {
    let stream = connect(path);
    let mut out = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for p in pts {
        let mut q = p.clone();
        q.batch = batch.into();
        writeln!(out, "{}", ServeRequest::Point(Box::new(q)).to_json()).unwrap();
    }
    let run = ServeRequest::Run { batch: batch.into(), max_attempts: None, deadline_ms: None };
    writeln!(out, "{}", run.to_json()).unwrap();
    out.flush().unwrap();
    let mut resps = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server hung up before batch-done for {batch}");
        let resp = parse_response(line.trim()).expect(&line);
        let done = matches!(&resp, ServeResponse::BatchDone { batch: b, .. } if b == batch);
        resps.push(resp);
        if done {
            return resps;
        }
    }
}

/// key -> canonical outcome bytes, from a response stream.
fn canonical_map(resps: &[ServeResponse]) -> HashMap<String, String> {
    let mut m = HashMap::new();
    for r in resps {
        if let ServeResponse::Result(ServeResult { key, outcome, .. }) = r {
            let bytes = outcome.canonical();
            if let Some(prev) = m.insert(key.clone(), bytes.clone()) {
                assert_eq!(prev, bytes, "two answers for {key} disagreed");
            }
        }
    }
    m
}

/// Serial reference: the same points through one in-process service.
fn serial_reference(pts: &[PointRequest]) -> HashMap<String, String> {
    let svc = Service::new(quick_cfg()).unwrap();
    let mut buf = Vec::new();
    for p in pts {
        svc.handle_line(&ServeRequest::Point(Box::new(p.clone())).to_json(), &mut buf).unwrap();
    }
    let run =
        ServeRequest::Run { batch: pts[0].batch.clone(), max_attempts: None, deadline_ms: None };
    svc.handle_line(&run.to_json(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let resps: Vec<_> = text.lines().map(|l| parse_response(l).expect(l)).collect();
    canonical_map(&resps)
}

/// Three clients hammer one server with *overlapping* grids (every
/// pair of clients shares points, so cache inserts and WAL appends
/// race); the union of their answers must be bit-identical to a
/// serial single-client run of the same configs.
#[test]
fn three_concurrent_clients_with_overlapping_grids_match_serial() {
    let sock = tmp("three.sock");
    let wal = tmp("three.wal");
    let svc = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
    let term = AtomicBool::new(false);

    // client c gets points [c, c+4): windows overlap by 3 points
    let grid: Vec<PointRequest> =
        (0..6).map(|i| point("ref", 1000 + i, 0.08 + 0.02 * i as f64)).collect();
    let maps: Vec<HashMap<String, String>> = std::thread::scope(|scope| {
        let server = {
            let (svc, sock, term) = (&svc, &sock, &term);
            scope.spawn(move || socket::serve(svc, sock, term))
        };
        let clients: Vec<_> = (0..3)
            .map(|c| {
                let (sock, grid) = (&sock, &grid);
                scope.spawn(move || {
                    let mine = &grid[c..c + 4];
                    let resps = client_session(sock, &format!("client{c}"), mine);
                    canonical_map(&resps)
                })
            })
            .collect();
        let maps: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        term.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
        maps
    });

    let reference = serial_reference(&grid);
    let mut union: HashMap<String, String> = HashMap::new();
    for m in maps {
        for (k, v) in m {
            if let Some(prev) = union.insert(k.clone(), v.clone()) {
                assert_eq!(prev, v, "clients disagreed on {k}");
            }
        }
    }
    assert_eq!(union.len(), reference.len(), "every grid point was answered");
    for (k, v) in &reference {
        assert_eq!(union.get(k), Some(v), "concurrent answer for {k} diverged from serial");
    }

    // WAL race safety: a fresh service replays every deterministic
    // outcome, bit-identical, no matter how the appends interleaved
    let resumed = Service::new(ServeConfig { wal: Some(wal.clone()), ..quick_cfg() }).unwrap();
    assert_eq!(resumed.cached_results(), reference.len());
    let replayed = serial_reference_with(&resumed, &grid);
    for (k, v) in &reference {
        assert_eq!(replayed.get(k), Some(v), "WAL replay for {k} diverged");
    }
    let _ = std::fs::remove_file(&wal);
}

/// Like [`serial_reference`] but over an existing service instance.
fn serial_reference_with(svc: &Service, pts: &[PointRequest]) -> HashMap<String, String> {
    let mut buf = Vec::new();
    for p in pts {
        svc.handle_line(&ServeRequest::Point(Box::new(p.clone())).to_json(), &mut buf).unwrap();
    }
    let run =
        ServeRequest::Run { batch: pts[0].batch.clone(), max_attempts: None, deadline_ms: None };
    svc.handle_line(&run.to_json(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let resps: Vec<_> = text.lines().map(|l| parse_response(l).expect(l)).collect();
    canonical_map(&resps)
}

/// A connection past `--max-clients` receives one typed `busy` record
/// and a clean close — and the slot frees up when a client leaves.
#[test]
fn client_bound_answers_busy_then_frees_the_slot() {
    let sock = tmp("busy.sock");
    let svc = Service::new(ServeConfig { max_clients: 1, ..quick_cfg() }).unwrap();
    let term = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = {
            let (svc, sock, term) = (&svc, &sock, &term);
            scope.spawn(move || socket::serve(svc, sock, term))
        };
        // first client occupies the only slot
        let first = connect(&sock);
        // wait until the server has registered it
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.snapshot().clients < 1 {
            assert!(Instant::now() < deadline, "first client never registered");
            std::thread::sleep(Duration::from_millis(5));
        }
        // second client is turned away with a typed busy record
        let second = connect(&sock);
        let mut reader = BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim()).expect(&line);
        let ServeResponse::Busy { active, max } = resp else {
            panic!("expected busy, got {resp:?}");
        };
        assert_eq!((active, max), (1, 1));
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "busy connection is closed");
        assert_eq!(svc.snapshot().busy, 1);
        // the slot frees once the first client hangs up
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.snapshot().clients > 0 {
            assert!(Instant::now() < deadline, "slot never freed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let resps = client_session(&sock, "after", &[point("after", 7, 0.1)]);
        assert!(matches!(resps.last(), Some(ServeResponse::BatchDone { points: 1, ok: 1, .. })));
        term.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

/// SIGTERM with live connections: each client's queued-but-unrun
/// batches drain to *that client's* stream, ending in the status
/// record — no client is left waiting on a dead socket.
#[test]
fn term_drains_queued_points_to_the_live_connection() {
    let sock = tmp("drain.sock");
    let svc = Service::new(quick_cfg()).unwrap();
    let term = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = {
            let (svc, sock, term) = (&svc, &sock, &term);
            scope.spawn(move || socket::serve(svc, sock, term))
        };
        let stream = connect(&sock);
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // queue two points but never send `run`
        for i in 0..2u64 {
            let p = point("hanging", 40 + i, 0.1);
            writeln!(out, "{}", ServeRequest::Point(Box::new(p)).to_json()).unwrap();
        }
        out.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.snapshot().queue_depth < 2 {
            assert!(Instant::now() < deadline, "points never queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        term.store(true, Ordering::SeqCst);
        let mut resps = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            resps.push(parse_response(line.trim()).expect(&line));
        }
        let results: Vec<_> =
            resps.iter().filter(|r| matches!(r, ServeResponse::Result(_))).collect();
        assert_eq!(results.len(), 2, "queued points drained to the client: {resps:?}");
        assert!(
            resps.iter().all(|r| !matches!(
                r,
                ServeResponse::Result(ServeResult { outcome: ServeOutcome::Shed { .. }, .. })
            )),
            "drained points are evaluated, not shed: {resps:?}"
        );
        assert!(
            resps.iter().any(|r| matches!(r, ServeResponse::Status(_))),
            "the drain ends with a status record: {resps:?}"
        );
        server.join().unwrap().unwrap();
    });
}
