//! Single-point open-loop measurement.

use noc_exp::robust::Diverged;
use noc_sim::config::NetConfig;
use noc_sim::error::ConfigError;
use noc_sim::network::Network;
use noc_traffic::{Bernoulli, PatternKind, SizeKind};
use serde::{Deserialize, Serialize};

use crate::behavior::OpenLoopBehavior;

/// One open-loop experiment point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// Network configuration.
    pub net: NetConfig,
    /// Spatial traffic pattern.
    pub pattern: PatternKind,
    /// Packet size distribution.
    pub size: SizeKind,
    /// Offered load in flits/cycle/node.
    pub load: f64,
    /// Warmup cycles before measurement.
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Maximum drain cycles after the window.
    pub drain_max: u64,
    /// Retain raw latency samples for exact percentiles (p50/p95/p99 in
    /// the result); costs memory proportional to measured packets.
    pub percentiles: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::baseline(),
            pattern: PatternKind::Uniform,
            size: SizeKind::Fixed(1),
            load: 0.1,
            warmup: 10_000,
            measure: 20_000,
            drain_max: 100_000,
            percentiles: false,
        }
    }
}

impl OpenLoopConfig {
    /// Set the offered load (flits/cycle/node).
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = load;
        self
    }

    /// Quick preset for unit tests: short windows.
    pub fn quick(mut self) -> Self {
        self.warmup = 1_000;
        self.measure = 3_000;
        self.drain_max = 20_000;
        self
    }
}

/// Result of one open-loop measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopResult {
    /// Offered load (flits/cycle/node).
    pub offered: f64,
    /// Average latency of marked packets (cycles).
    pub avg_latency: f64,
    /// Maximum marked-packet latency observed.
    pub max_latency: f64,
    /// Per-source-node average latency.
    pub node_avg_latency: Vec<f64>,
    /// Worst per-node average latency (the paper's "worst-case"
    /// open-loop statistic, Fig 8).
    pub worst_node_latency: f64,
    /// Accepted throughput during the window (flits/cycle/node).
    pub throughput: f64,
    /// Latency percentiles `(p50, p95, p99)` when
    /// [`OpenLoopConfig::percentiles`] was set.
    pub latency_percentiles: Option<(f64, f64, f64)>,
    /// 95% confidence half-width on the average latency.
    pub latency_ci95: f64,
    /// Average source-queue wait (generation to injection) — queueing
    /// the infinite source queue absorbs; grows without bound past
    /// saturation.
    pub avg_queue_time: f64,
    /// Average in-network time (injection to tail delivery).
    pub avg_network_time: f64,
    /// Ratio of the most-loaded channel's flit count to the mean over
    /// used channels — the load-imbalance signature that separates DOR
    /// from load-balanced routing under permutations.
    pub channel_imbalance: f64,
    /// Number of marked packets measured.
    pub measured_packets: u64,
    /// True when every marked packet was delivered before the drain cap.
    pub drained: bool,
    /// True when the point is below saturation: all marked packets
    /// drained *and* accepted throughput tracks the offered load (within
    /// 10%). Past saturation the network accepts less than offered.
    pub stable: bool,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Observability snapshot, present iff the network config enabled
    /// metrics collection ([`NetConfig::with_metrics`]).
    pub metrics: Option<noc_sim::MetricsSnapshot>,
}

/// Analytic zero-load latency lower bound for a single-flit packet at
/// the average minimal distance: `H_avg * (t_r + t_link) + t_r`.
pub fn zero_load_latency_bound(cfg: &NetConfig) -> f64 {
    let topo = cfg.topology.build();
    let h = topo.avg_min_hops();
    // link delay is uniform across our topologies
    let t_link = topo.link_delay(0, 1) as f64;
    let tr = cfg.router_delay as f64;
    h * (tr + t_link) + tr
}

/// Run one open-loop measurement.
///
/// The offered `load` is in flits/cycle/node; the per-node packet
/// generation probability is `load / mean_packet_size`.
pub fn measure(cfg: &OpenLoopConfig) -> Result<OpenLoopResult, ConfigError> {
    match measure_impl(cfg, None)? {
        Ok(r) => Ok(r),
        Err(d) => unreachable!("no cycle budget was set, yet the point diverged at {}", d.budget),
    }
}

/// Run one open-loop measurement under a hard cycle budget — the
/// watchdog the fault sweeps and the evaluation service rely on to turn
/// a stuck point into a typed outcome instead of a silent hang.
///
/// The budget bounds **total simulated cycles**. A zero budget is a
/// [`ConfigError`] (it could never complete even the warmup); a budget
/// too small to fit `warmup + measure`, or exhausted while draining
/// marked packets, yields `Ok(Err(Diverged))` carrying the budget that
/// was exceeded so the caller can journal, report, or retry it.
pub fn measure_budgeted(
    cfg: &OpenLoopConfig,
    cycle_budget: u64,
) -> Result<Result<OpenLoopResult, Diverged>, ConfigError> {
    if cycle_budget == 0 {
        return Err(ConfigError::Parameter {
            name: "cycle_budget",
            why: "cycle budget must be >= 1; a zero budget can never complete the warmup".into(),
        });
    }
    measure_impl(cfg, Some(cycle_budget))
}

fn measure_impl(
    cfg: &OpenLoopConfig,
    budget: Option<u64>,
) -> Result<Result<OpenLoopResult, Diverged>, ConfigError> {
    let mut net = Network::new(cfg.net.clone())?;
    let nodes = net.num_nodes();
    let k = net.topo().radix(0);
    let p = cfg.load / cfg.size.mean();
    if !(0.0..=1.0).contains(&p) {
        let why = if cfg.load < 0.0 {
            format!(
                "load {} is negative; offered load is flits/cycle/node and must be >= 0",
                cfg.load
            )
        } else {
            format!(
                "load {} with mean packet size {} needs generation probability {p} > 1",
                cfg.load,
                cfg.size.mean()
            )
        };
        return Err(ConfigError::Parameter { name: "load", why });
    }
    let mut b = OpenLoopBehavior::new(
        nodes,
        cfg.pattern.build(nodes, k),
        cfg.size.build(),
        || Box::new(Bernoulli { p }),
        cfg.net.seed,
        cfg.warmup,
        cfg.warmup + cfg.measure,
    );
    if cfg.percentiles {
        b.keep_samples();
    }

    if let Some(limit) = budget {
        // the measurement window itself cannot fit: diverged before the
        // first step, not a config error (grids legitimately mix window
        // sizes against one service-wide budget)
        if cfg.warmup + cfg.measure > limit {
            return Ok(Err(Diverged { budget: limit }));
        }
    }
    net.run(cfg.warmup + cfg.measure, &mut b);
    let drain_end = cfg.warmup + cfg.measure + cfg.drain_max;
    while b.marked_outstanding > 0 && net.cycle() < drain_end {
        if let Some(limit) = budget {
            if net.cycle() >= limit {
                return Ok(Err(Diverged { budget: limit }));
            }
        }
        net.step(&mut b);
    }
    let drained = b.marked_outstanding == 0;

    let node_avg_latency: Vec<f64> = b.node_latency.iter().map(|s| s.mean()).collect();
    let worst = node_avg_latency.iter().cloned().fold(0.0, f64::max);
    let throughput = b.window_flits as f64 / cfg.measure as f64 / nodes as f64;
    let latency_percentiles = cfg.percentiles.then(|| {
        (
            b.samples.percentile(50.0).unwrap_or(0.0),
            b.samples.percentile(95.0).unwrap_or(0.0),
            b.samples.percentile(99.0).unwrap_or(0.0),
        )
    });
    let loads: Vec<u64> = net.link_loads().iter().map(|&(_, c)| c).filter(|&c| c > 0).collect();
    let channel_imbalance = if loads.is_empty() {
        0.0
    } else {
        let max = *loads.iter().max().expect("nonempty") as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        max / mean
    };
    Ok(Ok(OpenLoopResult {
        offered: cfg.load,
        avg_latency: b.latency.mean(),
        max_latency: b.latency.max().unwrap_or(0.0),
        worst_node_latency: worst,
        node_avg_latency,
        throughput,
        latency_percentiles,
        latency_ci95: b.latency.ci95_half_width(),
        avg_queue_time: b.queue_time.mean(),
        avg_network_time: b.network_time.mean(),
        channel_imbalance,
        measured_packets: b.latency.count(),
        drained,
        stable: drained && throughput >= 0.9 * cfg.load,
        cycles: net.cycle(),
        metrics: net.metrics_snapshot(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn quick(load: f64) -> OpenLoopConfig {
        OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
        .with_load(load)
    }

    #[test]
    fn low_load_latency_near_zero_load_bound() {
        let cfg = quick(0.05);
        let r = measure(&cfg).unwrap();
        assert!(r.stable);
        let t0 = zero_load_latency_bound(&cfg.net);
        assert!(r.avg_latency >= t0 * 0.8, "{} vs bound {t0}", r.avg_latency);
        assert!(r.avg_latency <= t0 * 1.8, "{} vs bound {t0}", r.avg_latency);
    }

    #[test]
    fn throughput_tracks_offered_below_saturation() {
        let r = measure(&quick(0.2)).unwrap();
        assert!(r.stable);
        assert!((r.throughput - 0.2).abs() < 0.03, "throughput = {}", r.throughput);
    }

    #[test]
    fn latency_monotone_in_load() {
        let lo = measure(&quick(0.05)).unwrap();
        let mid = measure(&quick(0.25)).unwrap();
        assert!(mid.avg_latency > lo.avg_latency);
    }

    #[test]
    fn overload_is_flagged_unstable() {
        // 4x4 mesh saturates well below 0.9 flits/cycle/node
        let r = measure(&quick(0.9)).unwrap();
        assert!(!r.stable);
    }

    #[test]
    fn impossible_load_rejected() {
        let mut cfg = quick(1.5);
        cfg.size = SizeKind::Fixed(1);
        let err = measure(&cfg).unwrap_err();
        assert!(err.to_string().contains("> 1"), "{err}");
    }

    #[test]
    fn negative_load_rejected_with_negative_message() {
        // regression: the rejection message used to claim "generation
        // probability > 1" even when the load was negative
        let err = measure(&quick(-0.1)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("negative"), "{msg}");
        assert!(!msg.contains("> 1"), "{msg}");
    }

    #[test]
    fn per_node_latencies_populated() {
        let r = measure(&quick(0.1)).unwrap();
        assert_eq!(r.node_avg_latency.len(), 16);
        assert!(r.worst_node_latency >= r.avg_latency);
        assert!(r.node_avg_latency.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn latency_decomposes_into_queue_plus_network() {
        let r = measure(&quick(0.2)).unwrap();
        assert!(
            (r.avg_queue_time + r.avg_network_time - r.avg_latency).abs() < 1e-9,
            "{} + {} != {}",
            r.avg_queue_time,
            r.avg_network_time,
            r.avg_latency
        );
        // at moderate load most of the time is in the network
        assert!(r.avg_network_time > r.avg_queue_time);
        // past saturation the source queue dominates
        let over = measure(&quick(0.9)).unwrap();
        assert!(over.avg_queue_time > over.avg_network_time);
    }

    #[test]
    fn percentiles_available_when_requested() {
        let mut cfg = quick(0.1);
        cfg.percentiles = true;
        let r = measure(&cfg).unwrap();
        let (p50, p95, p99) = r.latency_percentiles.unwrap();
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
        assert!(p99 >= r.avg_latency, "tail above mean");
        assert!(r.latency_ci95 > 0.0);
        // without the flag, no samples are kept
        let r2 = measure(&quick(0.1)).unwrap();
        assert!(r2.latency_percentiles.is_none());
    }

    #[test]
    fn metrics_snapshot_rides_along_when_enabled() {
        let mut cfg = quick(0.2);
        cfg.net = cfg.net.with_metrics(128);
        let r = measure(&cfg).unwrap();
        let snap = r.metrics.expect("metrics enabled must yield a snapshot");
        snap.check_conservation().expect("channel totals must equal the link ledger");
        assert!(snap.link_flits > 0);
        assert_eq!(snap.cycles, r.cycles);
        // the collector ran from cycle 0, so every channel's binned
        // series must account for its full ledger total
        for c in &snap.channels {
            assert_eq!(c.flits.total() as u64, c.total, "channel {}:{}", c.src, c.port);
        }
        // occupancy was sampled every cycle on every router
        assert!(snap.routers.iter().all(|r| r.occupancy.count() == snap.cycles));
        // without the flag, no snapshot is allocated
        let r2 = measure(&quick(0.2)).unwrap();
        assert!(r2.metrics.is_none());
    }

    #[test]
    fn channel_imbalance_distinguishes_patterns() {
        // uniform random spreads load; transpose concentrates it on a few
        // dimension-crossing channels under DOR
        let uni = quick(0.1);
        let mut tp = quick(0.1);
        tp.pattern = PatternKind::Transpose;
        let ru = measure(&uni).unwrap();
        let rt = measure(&tp).unwrap();
        assert!(ru.channel_imbalance >= 1.0);
        assert!(
            rt.channel_imbalance > ru.channel_imbalance,
            "transpose {} should be more imbalanced than uniform {}",
            rt.channel_imbalance,
            ru.channel_imbalance
        );
    }

    #[test]
    fn zero_cycle_budget_is_a_config_error() {
        let err = measure_budgeted(&quick(0.1), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cycle_budget"), "{msg}");
        assert!(msg.contains(">= 1"), "{msg}");
    }

    #[test]
    fn budget_smaller_than_the_window_diverges_immediately() {
        // quick() uses warmup=1000, measure=3000: a 100-cycle budget can
        // never fit the window
        let d = measure_budgeted(&quick(0.1), 100).unwrap().unwrap_err();
        assert_eq!(d, Diverged { budget: 100 }, "Diverged must carry the exceeded budget");
    }

    #[test]
    fn budget_exhausted_during_drain_diverges() {
        // past saturation the drain phase runs long; a budget just past
        // the window end trips the watchdog inside the drain loop
        let d = measure_budgeted(&quick(0.9), 4_500).unwrap().unwrap_err();
        assert_eq!(d.budget, 4_500);
    }

    #[test]
    fn generous_budget_is_bit_identical_to_unbudgeted() {
        let cfg = quick(0.2);
        let plain = measure(&cfg).unwrap();
        let budgeted = measure_budgeted(&cfg, 1_000_000).unwrap().unwrap();
        assert_eq!(plain.avg_latency.to_bits(), budgeted.avg_latency.to_bits());
        assert_eq!(plain.throughput.to_bits(), budgeted.throughput.to_bits());
        assert_eq!(plain.measured_packets, budgeted.measured_packets);
        assert_eq!(plain.cycles, budgeted.cycles);
    }

    #[test]
    fn zero_load_bound_scales_with_tr() {
        let base = zero_load_latency_bound(&NetConfig::baseline());
        let tr2 = zero_load_latency_bound(&NetConfig::baseline().with_router_delay(2));
        let tr4 = zero_load_latency_bound(&NetConfig::baseline().with_router_delay(4));
        // paper: ratios ~1.5 and ~2.5 (channel delay added per hop keeps
        // the ratio below 2x/4x); exact value depends on the ejection
        // pipeline accounting, so allow a modest band
        assert!((tr2 / base - 1.5).abs() < 0.1, "{}", tr2 / base);
        assert!((tr4 / base - 2.55).abs() < 0.15, "{}", tr4 / base);
    }
}
