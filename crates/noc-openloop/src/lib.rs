//! # noc-openloop — open-loop NoC measurement
//!
//! Classic Dally–Towles open-loop methodology: traffic parameters
//! (spatial pattern, temporal process, packet size) are independent of
//! network state; an infinite source queue decouples generation from
//! injection. A run has three phases:
//!
//! 1. **warmup** — the network reaches steady state;
//! 2. **measurement** — packets *generated* in this window are marked and
//!    their latency (generation to tail delivery, including source-queue
//!    time) is recorded;
//! 3. **drain** — injection continues but no new packets are marked; the
//!    run ends when every marked packet has been delivered (or a cycle
//!    cap is hit, which flags the load as saturated/unstable).
//!
//! [`measure`] produces one point of the latency–load curve (Fig 1);
//! [`sweep`] produces the whole curve (Figs 3, 6a, 9); and
//! [`saturation_throughput`] bisects for the saturation point.

#![warn(missing_docs)]

mod behavior;
mod measure;
mod sweep;

pub use behavior::OpenLoopBehavior;
pub use measure::{
    measure, measure_budgeted, zero_load_latency_bound, OpenLoopConfig, OpenLoopResult,
};
pub use sweep::{saturation_throughput, sweep, sweep_serial, SweepPoint};
