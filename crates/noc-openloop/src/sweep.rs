//! Load sweeps and saturation search.
//!
//! Sweep points are embarrassingly parallel (each builds a fresh
//! network), so [`sweep`] fans them out through [`noc_exp::run_grid`].
//! Parallel output is bit-identical to [`sweep_serial`] by
//! construction: point `i` always runs with the RNG seed
//! `derive_seed(base.net.seed, i)`, regardless of which worker
//! evaluates it or in what order.

use noc_sim::error::ConfigError;
use serde::{Deserialize, Serialize};

use crate::measure::{measure, OpenLoopConfig, OpenLoopResult};

/// One point of a latency–load curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load (flits/cycle/node).
    pub load: f64,
    /// Full measurement result.
    pub result: OpenLoopResult,
}

/// The configuration of sweep point `index`: `base` at `load`, with the
/// point's RNG seed derived from `(base.net.seed, index)` so points are
/// decorrelated and independent of evaluation order.
fn point_config(base: &OpenLoopConfig, index: usize, load: f64) -> OpenLoopConfig {
    let mut cfg = base.clone().with_load(load);
    cfg.net.seed = noc_exp::derive_seed(base.net.seed, index as u64);
    cfg
}

/// Measure the latency–load curve at the given offered loads, in
/// parallel. Points are measured independently (fresh network and
/// derived seed each), so they can be compared across configurations;
/// the result is bit-identical to [`sweep_serial`] (regression-tested).
pub fn sweep(base: &OpenLoopConfig, loads: &[f64]) -> Vec<SweepPoint> {
    noc_exp::run_grid(loads, |i, &load| {
        let result =
            measure(&point_config(base, i, load)).expect("sweep point must be a valid config");
        SweepPoint { load, result }
    })
}

/// Serial reference implementation of [`sweep`]: same configurations,
/// same seeds, one point at a time on the calling thread.
pub fn sweep_serial(base: &OpenLoopConfig, loads: &[f64]) -> Vec<SweepPoint> {
    loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let result =
                measure(&point_config(base, i, load)).expect("sweep point must be a valid config");
            SweepPoint { load, result }
        })
        .collect()
}

/// Bisect for the saturation throughput: the highest offered load that
/// remains *stable* (all marked packets drain) with average latency
/// below `latency_cap` cycles.
///
/// A parallel coarse pre-scan (one ladder of probe loads through
/// [`noc_exp::run_grid`]) first brackets the saturation point, then a
/// serial bisection narrows the bracket below `tol`. Degenerate
/// configurations where even a near-zero load is unstable return
/// `(0.0, first_unstable_load)` instead of bisecting noise; a network
/// that absorbs full injection bandwidth returns `(1.0, 1.0)`.
///
/// `latency_cap` and `tol` must be positive and finite: a NaN or
/// non-positive cap would judge every load unstable (every comparison
/// with NaN is false), and a NaN or non-positive `tol` would leave the
/// bisection loop degenerate or non-terminating — both are rejected
/// with a [`ConfigError::Parameter`] instead.
///
/// Returns the bracketing `(stable_load, unstable_load)` pair.
pub fn saturation_throughput(
    base: &OpenLoopConfig,
    latency_cap: f64,
    tol: f64,
) -> Result<(f64, f64), ConfigError> {
    if !(latency_cap > 0.0 && latency_cap.is_finite()) {
        return Err(ConfigError::Parameter {
            name: "latency_cap",
            why: format!(
                "saturation search needs a positive finite latency cap, got {latency_cap}"
            ),
        });
    }
    if !(tol > 0.0 && tol.is_finite()) {
        return Err(ConfigError::Parameter {
            name: "tol",
            why: format!(
                "saturation search needs a positive finite bisection tolerance, got {tol}"
            ),
        });
    }
    let stable_at = |load: f64| -> bool {
        let cfg = base.clone().with_load(load);
        match measure(&cfg) {
            Ok(r) => r.stable && r.avg_latency <= latency_cap,
            Err(_) => false,
        }
    };
    // coarse ladder: a near-zero probe (degeneracy check), six interior
    // loads, and full bandwidth — evaluated concurrently
    let eps = tol.clamp(1e-3, 0.125);
    let mut probes = vec![eps];
    probes.extend((1..=6).map(|i| i as f64 / 7.0));
    probes.push(1.0);
    let verdicts = noc_exp::run_grid(&probes, |_, &load| stable_at(load));

    let Some(first_bad) = verdicts.iter().position(|&ok| !ok) else {
        // stable across the whole ladder including load 1.0: the network
        // absorbs full injection bandwidth
        return Ok((1.0, 1.0));
    };
    if first_bad == 0 {
        // even the near-zero probe is unstable: nothing to bisect
        return Ok((0.0, probes[0]));
    }
    let mut lo = probes[first_bad - 1];
    let mut hi = probes[first_bad];
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, TopologyKind};

    fn base() -> OpenLoopConfig {
        OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
    }

    #[test]
    fn sweep_returns_all_points_in_order() {
        let pts = sweep(&base(), &[0.05, 0.15, 0.25]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].load, 0.05);
        assert!(pts[2].result.avg_latency > pts[0].result.avg_latency);
    }

    #[test]
    fn sweep_points_use_derived_seeds() {
        // the same load at different indices must see different seeds
        let a = point_config(&base(), 0, 0.1);
        let b = point_config(&base(), 1, 0.1);
        assert_ne!(a.net.seed, b.net.seed);
        assert_ne!(a.net.seed, base().net.seed, "index 0 must not reuse the base seed");
    }

    #[test]
    fn saturation_bracket_is_sane_for_4x4_mesh() {
        // capacity bound for uniform on a 4-ary 2-mesh is 4/k = 1.0? No:
        // 2*bisection/N = 2*(2*4)/16 = 1.0 flit/cycle/node theoretical;
        // DOR with small buffers lands well below. Just check ordering
        // and a plausible range.
        let (lo, hi) = saturation_throughput(&base(), 200.0, 0.05).unwrap();
        assert!(lo <= hi);
        assert!(lo > 0.2, "saturation too low: {lo}");
        assert!(hi < 1.0, "saturation too high: {hi}");
    }

    #[test]
    fn degenerate_cap_and_tol_rejected() {
        for (cap, tol) in [
            (f64::NAN, 0.05),
            (0.0, 0.05),
            (-10.0, 0.05),
            (f64::INFINITY, 0.05),
            (200.0, f64::NAN),
            (200.0, 0.0),
            (200.0, -0.01),
            (200.0, f64::INFINITY),
        ] {
            let err = saturation_throughput(&base(), cap, tol).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("latency_cap") || msg.contains("tol"), "({cap}, {tol}): {msg}");
        }
    }

    #[test]
    fn degenerate_config_returns_zero_not_noise() {
        // drain_max = 0 means no marked packet ever drains: every load,
        // however small, is judged unstable. The search must report
        // (0.0, first_unstable) instead of bisecting measurement noise.
        let mut cfg = base();
        cfg.drain_max = 0;
        let (lo, hi) = saturation_throughput(&cfg, 200.0, 0.05).unwrap();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi <= 0.125, "first unstable load should be the near-zero probe");
    }
}
