//! Load sweeps and saturation search.

use serde::{Deserialize, Serialize};

use crate::measure::{measure, OpenLoopConfig, OpenLoopResult};

/// One point of a latency–load curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load (flits/cycle/node).
    pub load: f64,
    /// Full measurement result.
    pub result: OpenLoopResult,
}

/// Measure the latency–load curve at the given offered loads. Points are
/// measured independently (fresh network each), so they can be compared
/// across configurations.
pub fn sweep(base: &OpenLoopConfig, loads: &[f64]) -> Vec<SweepPoint> {
    loads
        .iter()
        .map(|&load| {
            let cfg = base.clone().with_load(load);
            let result = measure(&cfg).expect("sweep point must be a valid config");
            SweepPoint { load, result }
        })
        .collect()
}

/// Bisect for the saturation throughput: the highest offered load that
/// remains *stable* (all marked packets drain) with average latency
/// below `latency_cap` cycles.
///
/// Returns the bracketing `(stable_load, unstable_load)` pair once the
/// bracket is narrower than `tol`.
pub fn saturation_throughput(base: &OpenLoopConfig, latency_cap: f64, tol: f64) -> (f64, f64) {
    let stable_at = |load: f64| -> bool {
        let cfg = base.clone().with_load(load);
        match measure(&cfg) {
            Ok(r) => r.stable && r.avg_latency <= latency_cap,
            Err(_) => false,
        }
    };
    let mut lo = 0.0;
    let mut hi = 1.0;
    // ensure the upper end is actually unstable; if not, the network
    // absorbs full injection bandwidth
    if stable_at(hi) {
        return (hi, hi);
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, TopologyKind};

    fn base() -> OpenLoopConfig {
        OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
    }

    #[test]
    fn sweep_returns_all_points_in_order() {
        let pts = sweep(&base(), &[0.05, 0.15, 0.25]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].load, 0.05);
        assert!(pts[2].result.avg_latency > pts[0].result.avg_latency);
    }

    #[test]
    fn saturation_bracket_is_sane_for_4x4_mesh() {
        // capacity bound for uniform on a 4-ary 2-mesh is 4/k = 1.0? No:
        // 2*bisection/N = 2*(2*4)/16 = 1.0 flit/cycle/node theoretical;
        // DOR with small buffers lands well below. Just check ordering
        // and a plausible range.
        let (lo, hi) = saturation_throughput(&base(), 200.0, 0.05);
        assert!(lo <= hi);
        assert!(lo > 0.2, "saturation too low: {lo}");
        assert!(hi < 1.0, "saturation too high: {hi}");
    }
}
