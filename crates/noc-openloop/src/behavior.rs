//! The open-loop traffic source: an infinite source queue fed by an
//! injection process, independent of network state.

use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::NodeBehavior;
use noc_sim::rng::SimRng;
use noc_stats::{OnlineStats, Summary};
use noc_traffic::{InjectionProcess, SizeDist, TrafficPattern};

/// Payload tag marking packets generated inside the measurement window.
const MARKED: u64 = 1;

/// Open-loop workload: each node generates packets by an independent
/// Bernoulli-style process, destinations drawn from a traffic pattern.
///
/// Packets generated within `[mark_from, mark_until)` are marked;
/// latency statistics cover marked packets only. Flit deliveries during
/// the same window are counted for accepted throughput.
pub struct OpenLoopBehavior {
    pattern: Box<dyn TrafficPattern>,
    size: Box<dyn SizeDist>,
    processes: Vec<Box<dyn InjectionProcess>>,
    rng: SimRng,
    last_polled: Vec<Cycle>,
    pending: Vec<bool>,
    /// Cycle most recently handled by the batched [`NodeBehavior::generate`]
    /// path, which polls every node in one sweep: `pull` treats that
    /// whole cycle as already polled without touching `last_polled`.
    batch_cycle: Cycle,
    /// Cycle of the most recent `pull` poll; lets `generate` skip the
    /// per-node `last_polled` reconciliation when no `pull` ran this
    /// cycle (the steady state under the engine's batched path).
    last_pull_cycle: Cycle,
    /// `Some(p)` when every node's process is a fixed Bernoulli coin
    /// flip with the same probability: `generate` then inlines the flip
    /// instead of making one virtual `fire` call per node per cycle
    /// (identical RNG stream either way).
    uniform_p: Option<f64>,
    mark_from: Cycle,
    mark_until: Cycle,
    /// Marked packets still in flight.
    pub marked_outstanding: u64,
    /// Latency of marked packets (generation to tail delivery).
    pub latency: OnlineStats,
    /// Source-queue component of marked-packet latency (generation to
    /// head-flit injection) — queueing delay the network never sees.
    pub queue_time: OnlineStats,
    /// In-network component (injection to tail delivery).
    pub network_time: OnlineStats,
    /// Per-source-node latency of marked packets.
    pub node_latency: Vec<OnlineStats>,
    /// Raw marked latencies per source, for exact percentiles (bounded:
    /// only collected when `keep_samples` is set).
    pub samples: Summary,
    keep_samples: bool,
    /// Flits delivered during the measurement window.
    pub window_flits: u64,
    /// Packets generated (all phases).
    pub generated: u64,
}

impl OpenLoopBehavior {
    /// Build a source for `nodes` nodes. `make_process` constructs the
    /// per-node injection process (one each so burst state is private).
    pub fn new(
        nodes: usize,
        pattern: Box<dyn TrafficPattern>,
        size: Box<dyn SizeDist>,
        make_process: impl Fn() -> Box<dyn InjectionProcess>,
        seed: u64,
        mark_from: Cycle,
        mark_until: Cycle,
    ) -> Self {
        let processes: Vec<_> = (0..nodes).map(|_| make_process()).collect();
        let uniform_p = match processes.first().and_then(|p| p.fixed_bernoulli()) {
            Some(p) if processes.iter().all(|q| q.fixed_bernoulli() == Some(p)) => Some(p),
            _ => None,
        };
        Self {
            pattern,
            size,
            processes,
            rng: SimRng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            last_polled: vec![Cycle::MAX; nodes],
            pending: vec![false; nodes],
            batch_cycle: Cycle::MAX,
            last_pull_cycle: Cycle::MAX,
            uniform_p,
            mark_from,
            mark_until,
            marked_outstanding: 0,
            latency: OnlineStats::new(),
            queue_time: OnlineStats::new(),
            network_time: OnlineStats::new(),
            node_latency: vec![OnlineStats::new(); nodes],
            samples: Summary::new(),
            keep_samples: false,
            window_flits: 0,
            generated: 0,
        }
    }

    /// Retain raw marked latency samples for exact percentiles
    /// (memory grows with measured packet count).
    pub fn keep_samples(&mut self) {
        self.keep_samples = true;
    }

    fn in_window(&self, cycle: Cycle) -> bool {
        (self.mark_from..self.mark_until).contains(&cycle)
    }
}

impl NodeBehavior for OpenLoopBehavior {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        // a batched `generate` sweep already polled (and consumed) this
        // entire cycle
        if self.batch_cycle == cycle {
            return None;
        }
        // poll the injection process exactly once per node per cycle
        if self.last_polled[node] != cycle {
            self.last_polled[node] = cycle;
            self.last_pull_cycle = cycle;
            self.pending[node] = self.processes[node].fire(&mut self.rng);
        }
        if !self.pending[node] {
            return None;
        }
        self.pending[node] = false;
        self.generated += 1;
        let dst = self.pattern.dest(node, &mut self.rng);
        let size = self.size.draw(&mut self.rng);
        let marked = self.in_window(cycle);
        if marked {
            self.marked_outstanding += 1;
        }
        Some(PacketSpec { dst, size, class: 0, payload: if marked { MARKED } else { 0 } })
    }

    fn deliver(&mut self, _node: usize, d: &Delivered, cycle: Cycle) {
        if self.in_window(cycle) {
            self.window_flits += d.size as u64;
        }
        if d.payload == MARKED {
            self.marked_outstanding -= 1;
            let lat = (cycle - d.birth) as f64;
            self.latency.push(lat);
            self.queue_time.push((d.inject - d.birth) as f64);
            self.network_time.push((cycle - d.inject) as f64);
            self.node_latency[d.src].push(lat);
            if self.keep_samples {
                self.samples.push(lat);
            }
        }
    }

    fn quiescent(&self) -> bool {
        // an open-loop source never stops by itself; the measurement
        // driver decides when to stop stepping
        false
    }

    fn generate(&mut self, nodes: usize, cycle: Cycle, sink: &mut dyn FnMut(usize, PacketSpec)) {
        // batched twin of `pull`: identical draws in identical order
        // (one process poll per node, then destination and size per
        // packet). Every node is polled and consumed in this one sweep,
        // so instead of writing `last_polled`/`pending` per node the
        // whole cycle is marked handled via `batch_cycle`; a node whose
        // `pull` happens to land on the same cycle sees `None`, exactly
        // as if the pull loop had polled it already.
        debug_assert_eq!(nodes, self.processes.len());
        let marked = self.in_window(cycle);
        if self.last_pull_cycle != cycle {
            if let Some(p) = self.uniform_p {
                // devirtualized sweep: every node is the same fixed
                // Bernoulli flip and none was polled via `pull` this
                // cycle, so the per-node virtual call and `last_polled`
                // reconciliation both drop out. Draw order is identical
                // to the general loop below.
                for node in 0..nodes {
                    if !self.rng.chance(p) {
                        continue;
                    }
                    self.generated += 1;
                    let dst = self.pattern.dest(node, &mut self.rng);
                    let size = self.size.draw(&mut self.rng);
                    if marked {
                        self.marked_outstanding += 1;
                    }
                    let payload = if marked { MARKED } else { 0 };
                    sink(node, PacketSpec { dst, size, class: 0, payload });
                }
                self.batch_cycle = cycle;
                return;
            }
        }
        for node in 0..nodes {
            let fired = if self.last_polled[node] == cycle {
                // this node was already polled via `pull` this cycle
                std::mem::replace(&mut self.pending[node], false)
            } else {
                self.processes[node].fire(&mut self.rng)
            };
            if !fired {
                continue;
            }
            self.generated += 1;
            let dst = self.pattern.dest(node, &mut self.rng);
            let size = self.size.draw(&mut self.rng);
            if marked {
                self.marked_outstanding += 1;
            }
            sink(
                node,
                PacketSpec { dst, size, class: 0, payload: if marked { MARKED } else { 0 } },
            );
        }
        self.batch_cycle = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{Bernoulli, FixedSize, UniformRandom};

    fn behavior(load: f64, from: Cycle, until: Cycle) -> OpenLoopBehavior {
        OpenLoopBehavior::new(
            4,
            Box::new(UniformRandom { nodes: 4 }),
            Box::new(FixedSize(1)),
            move || Box::new(Bernoulli { p: load }),
            7,
            from,
            until,
        )
    }

    #[test]
    fn generate_matches_pull_loop_exactly() {
        // the batched override must replay the default per-node pull
        // loop bit for bit: same packets, same order, same RNG stream
        let mk = || {
            OpenLoopBehavior::new(
                16,
                Box::new(UniformRandom { nodes: 16 }),
                Box::new(FixedSize(2)),
                || Box::new(Bernoulli { p: 0.35 }),
                42,
                5,
                40,
            )
        };
        let (mut via_generate, mut via_pull) = (mk(), mk());
        for cycle in 0..60 {
            let mut got: Vec<(usize, PacketSpec)> = Vec::new();
            via_generate.generate(16, cycle, &mut |node, spec| got.push((node, spec)));
            let mut want: Vec<(usize, PacketSpec)> = Vec::new();
            for node in 0..16 {
                while let Some(spec) = via_pull.pull(node, cycle) {
                    want.push((node, spec));
                }
            }
            assert_eq!(got, want, "cycle {cycle}");
        }
        assert_eq!(via_generate.generated, via_pull.generated);
        assert_eq!(via_generate.marked_outstanding, via_pull.marked_outstanding);
    }

    #[test]
    fn generate_matches_pull_loop_without_uniform_fast_path() {
        // bursty processes have state, so `fixed_bernoulli` is None and
        // `generate` must take the general virtual-dispatch loop; it
        // still has to replay the pull loop exactly
        use noc_traffic::OnOff;
        let mk = || {
            OpenLoopBehavior::new(
                16,
                Box::new(UniformRandom { nodes: 16 }),
                Box::new(FixedSize(2)),
                || Box::new(OnOff::new(0.6, 0.2, 0.3)),
                42,
                5,
                40,
            )
        };
        let (mut via_generate, mut via_pull) = (mk(), mk());
        assert!(via_generate.uniform_p.is_none());
        for cycle in 0..60 {
            let mut got: Vec<(usize, PacketSpec)> = Vec::new();
            via_generate.generate(16, cycle, &mut |node, spec| got.push((node, spec)));
            let mut want: Vec<(usize, PacketSpec)> = Vec::new();
            for node in 0..16 {
                while let Some(spec) = via_pull.pull(node, cycle) {
                    want.push((node, spec));
                }
            }
            assert_eq!(got, want, "cycle {cycle}");
        }
        assert_eq!(via_generate.generated, via_pull.generated);
    }

    #[test]
    fn generate_reconciles_interleaved_pulls() {
        // a node polled via `pull` earlier in the same cycle must not be
        // polled again by `generate` — even on the uniform-Bernoulli
        // fast path, which has to detect the interleave and fall back
        let mk = || {
            OpenLoopBehavior::new(
                8,
                Box::new(UniformRandom { nodes: 8 }),
                Box::new(FixedSize(1)),
                || Box::new(Bernoulli { p: 0.5 }),
                9,
                0,
                100,
            )
        };
        let (mut mixed, mut pure) = (mk(), mk());
        assert!(mixed.uniform_p.is_some());
        for cycle in 0..40 {
            let mut got: Vec<(usize, PacketSpec)> = Vec::new();
            // pull nodes 0..3 first, as the engine's fault path would
            for node in 0..3 {
                while let Some(spec) = mixed.pull(node, cycle) {
                    got.push((node, spec));
                }
            }
            mixed.generate(8, cycle, &mut |node, spec| {
                // nodes 0..3 were consumed by pull above
                assert!(node >= 3, "cycle {cycle}: node {node} polled twice");
                got.push((node, spec));
            });
            let mut want: Vec<(usize, PacketSpec)> = Vec::new();
            for node in 0..8 {
                while let Some(spec) = pure.pull(node, cycle) {
                    want.push((node, spec));
                }
            }
            // pull-then-generate covers the same nodes in the same
            // order, so the merged stream matches the pure pull loop
            let mut got_sorted = got.clone();
            got_sorted.sort_by_key(|(n, _)| *n);
            assert_eq!(got_sorted, want, "cycle {cycle}");
        }
        assert_eq!(mixed.generated, pure.generated);
    }

    #[test]
    fn polls_once_per_cycle() {
        let mut b = behavior(1.0, 0, 100);
        // p = 1.0: first pull yields a packet, second pull same cycle must not
        assert!(b.pull(0, 0).is_some());
        assert!(b.pull(0, 0).is_none());
        assert!(b.pull(0, 1).is_some());
    }

    #[test]
    fn marks_only_in_window() {
        let mut b = behavior(1.0, 10, 20);
        assert_eq!(b.pull(0, 5).unwrap().payload, 0);
        assert_eq!(b.pull(0, 10).unwrap().payload, MARKED);
        assert_eq!(b.pull(0, 19).unwrap().payload, MARKED);
        assert_eq!(b.pull(0, 20).unwrap().payload, 0);
        assert_eq!(b.marked_outstanding, 2);
    }

    #[test]
    fn latency_recorded_on_marked_delivery() {
        let mut b = behavior(1.0, 0, 100);
        let spec = b.pull(2, 0).unwrap();
        let d = Delivered {
            uid: 0,
            src: 2,
            dst: spec.dst,
            size: 1,
            class: 0,
            birth: 0,
            inject: 0,
            payload: spec.payload,
        };
        b.deliver(spec.dst, &d, 15);
        assert_eq!(b.latency.count(), 1);
        assert_eq!(b.latency.mean(), 15.0);
        assert_eq!(b.node_latency[2].count(), 1);
        assert_eq!(b.marked_outstanding, 0);
    }

    #[test]
    fn window_flits_counted() {
        let mut b = behavior(1.0, 10, 20);
        let d = Delivered {
            uid: 0,
            src: 0,
            dst: 1,
            size: 4,
            class: 0,
            birth: 5,
            inject: 5,
            payload: 0,
        };
        b.deliver(1, &d, 15);
        b.deliver(1, &d, 25); // outside window
        assert_eq!(b.window_flits, 4);
    }
}
