//! The open-loop traffic source: an infinite source queue fed by an
//! injection process, independent of network state.

use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::NodeBehavior;
use noc_sim::rng::SimRng;
use noc_stats::{OnlineStats, Summary};
use noc_traffic::{InjectionProcess, SizeDist, TrafficPattern};

/// Payload tag marking packets generated inside the measurement window.
const MARKED: u64 = 1;

/// Open-loop workload: each node generates packets by an independent
/// Bernoulli-style process, destinations drawn from a traffic pattern.
///
/// Packets generated within `[mark_from, mark_until)` are marked;
/// latency statistics cover marked packets only. Flit deliveries during
/// the same window are counted for accepted throughput.
pub struct OpenLoopBehavior {
    pattern: Box<dyn TrafficPattern>,
    size: Box<dyn SizeDist>,
    processes: Vec<Box<dyn InjectionProcess>>,
    rng: SimRng,
    last_polled: Vec<Cycle>,
    pending: Vec<bool>,
    mark_from: Cycle,
    mark_until: Cycle,
    /// Marked packets still in flight.
    pub marked_outstanding: u64,
    /// Latency of marked packets (generation to tail delivery).
    pub latency: OnlineStats,
    /// Source-queue component of marked-packet latency (generation to
    /// head-flit injection) — queueing delay the network never sees.
    pub queue_time: OnlineStats,
    /// In-network component (injection to tail delivery).
    pub network_time: OnlineStats,
    /// Per-source-node latency of marked packets.
    pub node_latency: Vec<OnlineStats>,
    /// Raw marked latencies per source, for exact percentiles (bounded:
    /// only collected when `keep_samples` is set).
    pub samples: Summary,
    keep_samples: bool,
    /// Flits delivered during the measurement window.
    pub window_flits: u64,
    /// Packets generated (all phases).
    pub generated: u64,
}

impl OpenLoopBehavior {
    /// Build a source for `nodes` nodes. `make_process` constructs the
    /// per-node injection process (one each so burst state is private).
    pub fn new(
        nodes: usize,
        pattern: Box<dyn TrafficPattern>,
        size: Box<dyn SizeDist>,
        make_process: impl Fn() -> Box<dyn InjectionProcess>,
        seed: u64,
        mark_from: Cycle,
        mark_until: Cycle,
    ) -> Self {
        Self {
            pattern,
            size,
            processes: (0..nodes).map(|_| make_process()).collect(),
            rng: SimRng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            last_polled: vec![Cycle::MAX; nodes],
            pending: vec![false; nodes],
            mark_from,
            mark_until,
            marked_outstanding: 0,
            latency: OnlineStats::new(),
            queue_time: OnlineStats::new(),
            network_time: OnlineStats::new(),
            node_latency: vec![OnlineStats::new(); nodes],
            samples: Summary::new(),
            keep_samples: false,
            window_flits: 0,
            generated: 0,
        }
    }

    /// Retain raw marked latency samples for exact percentiles
    /// (memory grows with measured packet count).
    pub fn keep_samples(&mut self) {
        self.keep_samples = true;
    }

    fn in_window(&self, cycle: Cycle) -> bool {
        (self.mark_from..self.mark_until).contains(&cycle)
    }
}

impl NodeBehavior for OpenLoopBehavior {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        // poll the injection process exactly once per node per cycle
        if self.last_polled[node] != cycle {
            self.last_polled[node] = cycle;
            self.pending[node] = self.processes[node].fire(&mut self.rng);
        }
        if !self.pending[node] {
            return None;
        }
        self.pending[node] = false;
        self.generated += 1;
        let dst = self.pattern.dest(node, &mut self.rng);
        let size = self.size.draw(&mut self.rng);
        let marked = self.in_window(cycle);
        if marked {
            self.marked_outstanding += 1;
        }
        Some(PacketSpec { dst, size, class: 0, payload: if marked { MARKED } else { 0 } })
    }

    fn deliver(&mut self, _node: usize, d: &Delivered, cycle: Cycle) {
        if self.in_window(cycle) {
            self.window_flits += d.size as u64;
        }
        if d.payload == MARKED {
            self.marked_outstanding -= 1;
            let lat = (cycle - d.birth) as f64;
            self.latency.push(lat);
            self.queue_time.push((d.inject - d.birth) as f64);
            self.network_time.push((cycle - d.inject) as f64);
            self.node_latency[d.src].push(lat);
            if self.keep_samples {
                self.samples.push(lat);
            }
        }
    }

    fn quiescent(&self) -> bool {
        // an open-loop source never stops by itself; the measurement
        // driver decides when to stop stepping
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{Bernoulli, FixedSize, UniformRandom};

    fn behavior(load: f64, from: Cycle, until: Cycle) -> OpenLoopBehavior {
        OpenLoopBehavior::new(
            4,
            Box::new(UniformRandom { nodes: 4 }),
            Box::new(FixedSize(1)),
            move || Box::new(Bernoulli { p: load }),
            7,
            from,
            until,
        )
    }

    #[test]
    fn polls_once_per_cycle() {
        let mut b = behavior(1.0, 0, 100);
        // p = 1.0: first pull yields a packet, second pull same cycle must not
        assert!(b.pull(0, 0).is_some());
        assert!(b.pull(0, 0).is_none());
        assert!(b.pull(0, 1).is_some());
    }

    #[test]
    fn marks_only_in_window() {
        let mut b = behavior(1.0, 10, 20);
        assert_eq!(b.pull(0, 5).unwrap().payload, 0);
        assert_eq!(b.pull(0, 10).unwrap().payload, MARKED);
        assert_eq!(b.pull(0, 19).unwrap().payload, MARKED);
        assert_eq!(b.pull(0, 20).unwrap().payload, 0);
        assert_eq!(b.marked_outstanding, 2);
    }

    #[test]
    fn latency_recorded_on_marked_delivery() {
        let mut b = behavior(1.0, 0, 100);
        let spec = b.pull(2, 0).unwrap();
        let d = Delivered {
            uid: 0,
            src: 2,
            dst: spec.dst,
            size: 1,
            class: 0,
            birth: 0,
            inject: 0,
            payload: spec.payload,
        };
        b.deliver(spec.dst, &d, 15);
        assert_eq!(b.latency.count(), 1);
        assert_eq!(b.latency.mean(), 15.0);
        assert_eq!(b.node_latency[2].count(), 1);
        assert_eq!(b.marked_outstanding, 0);
    }

    #[test]
    fn window_flits_counted() {
        let mut b = behavior(1.0, 10, 20);
        let d = Delivered {
            uid: 0,
            src: 0,
            dst: 1,
            size: 4,
            class: 0,
            birth: 5,
            inject: 5,
            payload: 0,
        };
        b.deliver(1, &d, 15);
        b.deliver(1, &d, 25); // outside window
        assert_eq!(b.window_flits, 4);
    }
}
