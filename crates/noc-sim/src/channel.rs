//! Inter-router links: forward flit delay lines plus the backward credit
//! delay lines of the same physical channel.

use std::collections::VecDeque;

use crate::flit::{Cycle, Flit};

/// One directed link from a router output port to a neighbor input port.
#[derive(Debug)]
pub struct Link {
    /// Destination router.
    pub dst_router: usize,
    /// Destination input port.
    pub dst_port: usize,
    /// Propagation delay in cycles.
    pub delay: u32,
    /// Flits carried over the whole run (utilization statistics).
    pub flits_carried: u64,
    flits: VecDeque<(Cycle, Flit)>,
    credits: VecDeque<(Cycle, u8)>,
}

impl Link {
    /// New idle link.
    pub fn new(dst_router: usize, dst_port: usize, delay: u32) -> Self {
        Self {
            dst_router,
            dst_port,
            delay,
            flits_carried: 0,
            flits: VecDeque::new(),
            credits: VecDeque::new(),
        }
    }

    /// Enqueue a flit arriving at `ready`.
    ///
    /// Ready times must be pushed in non-decreasing order (they are, as
    /// each cycle pushes `now + const`).
    #[inline]
    pub fn push_flit(&mut self, ready: Cycle, flit: Flit) {
        debug_assert!(self.flits.back().is_none_or(|&(r, _)| r <= ready), "link reordering");
        self.flits.push_back((ready, flit));
        self.flits_carried += 1;
    }

    /// Enqueue a credit (for the *source* router's output VC) arriving at
    /// `ready`.
    #[inline]
    pub fn push_credit(&mut self, ready: Cycle, vc: u8) {
        debug_assert!(self.credits.back().is_none_or(|&(r, _)| r <= ready));
        self.credits.push_back((ready, vc));
    }

    /// Pop the next flit if it has arrived by `now`.
    #[inline]
    pub fn pop_flit(&mut self, now: Cycle) -> Option<Flit> {
        match self.flits.front() {
            Some(&(ready, _)) if ready <= now => self.flits.pop_front().map(|(_, f)| f),
            _ => None,
        }
    }

    /// Pop the next credit if it has arrived by `now`.
    #[inline]
    pub fn pop_credit(&mut self, now: Cycle) -> Option<u8> {
        match self.credits.front() {
            Some(&(ready, _)) if ready <= now => self.credits.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Flits currently in flight on the wire.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.flits.len()
    }

    /// True when nothing (flit or credit) is in flight on this link, so
    /// the engine can drop it from the active set until the next push.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }

    /// Arrival cycle of the earliest in-flight flit, if any. Used by the
    /// quiescent-cycle fast-forward to find the next cycle on which the
    /// network state can change. Credits are deliberately not reported:
    /// with every router idle and nothing queued to inject, a late
    /// credit absorption is observationally identical to an on-time one.
    #[inline]
    pub fn next_flit_ready(&self) -> Option<Cycle> {
        self.flits.front().map(|&(ready, _)| ready)
    }

    /// Iterate over in-flight flits with their arrival times (oldest
    /// first). Used by the runtime sanitizer for conservation checks.
    pub fn iter_flits(&self) -> impl Iterator<Item = &(Cycle, Flit)> {
        self.flits.iter()
    }

    /// Iterate over in-flight credits `(ready, vc)` (oldest first).
    pub fn iter_credits(&self) -> impl Iterator<Item = &(Cycle, u8)> {
        self.credits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u16) -> Flit {
        Flit { pkt: 0, seq, vc: 0, tail: false }
    }

    #[test]
    fn flits_arrive_after_delay() {
        let mut l = Link::new(1, 2, 3);
        l.push_flit(5, flit(0));
        assert_eq!(l.pop_flit(4), None);
        assert_eq!(l.pop_flit(5).map(|f| f.seq), Some(0));
        assert_eq!(l.pop_flit(6), None, "drained");
    }

    #[test]
    fn order_preserved() {
        let mut l = Link::new(0, 0, 1);
        l.push_flit(2, flit(0));
        l.push_flit(3, flit(1));
        l.push_flit(3, flit(2));
        assert_eq!(l.pop_flit(10).map(|f| f.seq), Some(0));
        assert_eq!(l.pop_flit(10).map(|f| f.seq), Some(1));
        assert_eq!(l.pop_flit(10).map(|f| f.seq), Some(2));
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn credits_flow_independently() {
        let mut l = Link::new(0, 0, 1);
        l.push_credit(4, 1);
        l.push_flit(2, flit(0));
        assert_eq!(l.pop_credit(3), None);
        assert_eq!(l.pop_flit(3).map(|f| f.seq), Some(0));
        assert_eq!(l.pop_credit(4), Some(1));
    }

    #[test]
    fn carried_counter() {
        let mut l = Link::new(0, 0, 1);
        l.push_flit(1, flit(0));
        l.push_flit(2, flit(1));
        assert_eq!(l.flits_carried, 2);
    }
}
