//! Configuration validation and simulation-integrity errors.

use std::fmt;

/// Error returned when a network configuration is internally inconsistent
/// (for example, too few virtual channels for the chosen topology/routing
/// combination to be deadlock-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Total VCs is not divisible into the required partition blocks.
    VcPartition {
        /// Total VCs configured.
        vcs: usize,
        /// Number of message classes.
        classes: usize,
        /// Number of routing phases.
        phases: usize,
    },
    /// Each (class, phase) block needs at least `needed` VCs but only
    /// `available` are left after partitioning.
    VcBlockTooSmall {
        /// VCs available per (class, phase) block.
        available: usize,
        /// VCs required per block for deadlock freedom.
        needed: usize,
        /// Human-readable reason (dateline, escape VC, ...).
        why: &'static str,
    },
    /// A parameter is out of its meaningful range.
    Parameter {
        /// Parameter name.
        name: &'static str,
        /// What went wrong.
        why: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::VcPartition { vcs, classes, phases } => write!(
                f,
                "{vcs} virtual channels cannot be partitioned into {classes} message \
                 class(es) x {phases} routing phase(s)"
            ),
            ConfigError::VcBlockTooSmall { available, needed, why } => {
                write!(f, "each VC block has {available} VC(s) but {needed} are required: {why}")
            }
            ConfigError::Parameter { name, why } => write!(f, "invalid parameter `{name}`: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Structural fault detected while stepping the simulation.
///
/// Every variant is an *engine-integrity* failure, not a workload
/// property: a correct simulator never produces one regardless of
/// traffic. They replace the bare `unwrap()`/`expect()` calls that used
/// to guard the hot paths, so a violated invariant reports exactly
/// which channel or buffer broke instead of a context-free panic.
/// [`crate::Network::step`] still fails fast (it panics with the
/// rendered error); [`crate::Network::try_step`] surfaces the value for
/// harnesses — the `sanitize` feature's checkers in particular — that
/// want to inspect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The routing function selected an output port with no link behind
    /// it (fell off a mesh edge).
    DeadPort {
        /// Router where the flit was switched.
        router: usize,
        /// Output port with no attached link.
        port: usize,
    },
    /// A flit arrived on an input port that has no upstream link to
    /// return its credit on.
    NoUpstreamLink {
        /// Router owning the input port.
        router: usize,
        /// Input port with no upstream neighbor.
        port: usize,
    },
    /// A flit was deposited into a full input buffer — the upstream
    /// router spent a credit it did not have.
    BufferOverflow {
        /// Router owning the overflowed buffer.
        router: usize,
        /// Input port.
        port: usize,
        /// Virtual channel.
        vc: usize,
        /// Configured buffer depth.
        depth: usize,
    },
    /// More credits returned to an output VC than its buffer depth —
    /// the downstream router freed a slot twice.
    CreditOverflow {
        /// Router owning the output.
        router: usize,
        /// Output port.
        port: usize,
        /// Virtual channel.
        vc: usize,
        /// Configured buffer depth.
        depth: usize,
    },
    /// An injection stream tried to emit a flit on a VC with zero
    /// credits.
    CreditUnderflow {
        /// Injecting node.
        node: usize,
        /// Injection VC.
        vc: usize,
    },
    /// Allocation state said a flit was buffered but the queue was
    /// empty.
    MissingFlit {
        /// Router.
        router: usize,
        /// Input port.
        port: usize,
        /// Virtual channel.
        vc: usize,
        /// Which pipeline stage observed the inconsistency.
        stage: &'static str,
    },
    /// A runtime invariant check (the `sanitize` feature) failed.
    Invariant {
        /// Cycle at which the check ran.
        cycle: u64,
        /// Which invariant (flit conservation, credit conservation,
        /// VC framing, ...).
        check: &'static str,
        /// Full description, including the offending channel and a
        /// state snapshot where useful.
        detail: String,
    },
    /// The sanitizer's watchdog saw no flit movement for its threshold
    /// while packets were live — a deadlock or livelock in practice.
    Stuck {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Cycles since the last observed flit movement.
        idle_cycles: u64,
        /// Wait-for chain and buffer snapshot, pretty-printed.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeadPort { router, port } => {
                write!(f, "router {router}: routing selected dead output port {port}")
            }
            SimError::NoUpstreamLink { router, port } => {
                write!(f, "router {router}: input port {port} has no upstream link")
            }
            SimError::BufferOverflow { router, port, vc, depth } => write!(
                f,
                "router {router}: input buffer [{port}][{vc}] overflowed its depth \
                 {depth} (upstream credit leak)"
            ),
            SimError::CreditOverflow { router, port, vc, depth } => write!(
                f,
                "router {router}: output [{port}][{vc}] exceeded {depth} credits \
                 (downstream returned a credit twice)"
            ),
            SimError::CreditUnderflow { node, vc } => {
                write!(f, "node {node}: injection stream emitted on VC {vc} with no credit")
            }
            SimError::MissingFlit { router, port, vc, stage } => {
                write!(f, "router {router}: {stage} expected a buffered flit in [{port}][{vc}]")
            }
            SimError::Invariant { cycle, check, detail } => {
                write!(f, "cycle {cycle}: {check} invariant violated: {detail}")
            }
            SimError::Stuck { cycle, idle_cycles, detail } => write!(
                f,
                "cycle {cycle}: no flit moved for {idle_cycles} cycles with live \
                 packets (deadlock?)\n{detail}"
            ),
        }
    }
}

impl std::error::Error for SimError {}
