//! Configuration validation errors.

use std::fmt;

/// Error returned when a network configuration is internally inconsistent
/// (for example, too few virtual channels for the chosen topology/routing
/// combination to be deadlock-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Total VCs is not divisible into the required partition blocks.
    VcPartition {
        /// Total VCs configured.
        vcs: usize,
        /// Number of message classes.
        classes: usize,
        /// Number of routing phases.
        phases: usize,
    },
    /// Each (class, phase) block needs at least `needed` VCs but only
    /// `available` are left after partitioning.
    VcBlockTooSmall {
        /// VCs available per (class, phase) block.
        available: usize,
        /// VCs required per block for deadlock freedom.
        needed: usize,
        /// Human-readable reason (dateline, escape VC, ...).
        why: &'static str,
    },
    /// A parameter is out of its meaningful range.
    Parameter {
        /// Parameter name.
        name: &'static str,
        /// What went wrong.
        why: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::VcPartition { vcs, classes, phases } => write!(
                f,
                "{vcs} virtual channels cannot be partitioned into {classes} message \
                 class(es) x {phases} routing phase(s)"
            ),
            ConfigError::VcBlockTooSmall { available, needed, why } => write!(
                f,
                "each VC block has {available} VC(s) but {needed} are required: {why}"
            ),
            ConfigError::Parameter { name, why } => write!(f, "invalid parameter `{name}`: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}
