//! Network interface (NI): per-node source queues, injection VC
//! selection state, and ejection reassembly.
//!
//! Each message class gets its own source queue and injection stream so
//! that a blocked request class can never head-of-line-block the reply
//! class — the standard requirement for request/reply protocol deadlock
//! freedom at the injection point.

use std::collections::VecDeque;

use crate::flit::{Cycle, Flit, PacketId};

/// A packet currently being streamed flit-by-flit into the router.
#[derive(Debug, Clone, Copy)]
pub struct InjStream {
    /// The packet being injected.
    pub pkt: PacketId,
    /// Injection VC in use.
    pub vc: u8,
    /// Next flit sequence number to emit.
    pub next_seq: u16,
}

/// Per-node network interface state.
#[derive(Debug)]
pub struct Ni {
    /// Unbounded source queue per message class.
    pub class_q: Vec<VecDeque<PacketId>>,
    /// In-progress injection stream per class.
    pub stream: Vec<Option<InjStream>>,
    /// Injection VC occupancy: true while a packet is mid-stream on it.
    pub inj_busy: Vec<bool>,
    /// Credits toward the router's port-0 input buffers, per VC.
    pub inj_credits: Vec<u32>,
    /// Credits in flight back from the router.
    pub credit_q: VecDeque<(Cycle, u8)>,
    /// Flits that have been ejected and are propagating to the node.
    pub eject_q: VecDeque<(Cycle, Flit)>,
    /// Self-addressed packets bypassing the network: `(ready, pkt)`.
    pub local_q: VecDeque<(Cycle, PacketId)>,
    /// Rotating class pointer for injection fairness.
    pub class_rr: usize,
    /// Rotating VC pointer for injection VC selection.
    pub vc_rr: usize,
}

impl Ni {
    /// New NI for a router with `vcs` injection VCs of depth `vc_buf`,
    /// serving `classes` message classes.
    pub fn new(classes: usize, vcs: usize, vc_buf: usize) -> Self {
        Self {
            class_q: (0..classes).map(|_| VecDeque::new()).collect(),
            stream: vec![None; classes],
            inj_busy: vec![false; vcs],
            inj_credits: vec![vc_buf as u32; vcs],
            credit_q: VecDeque::new(),
            eject_q: VecDeque::new(),
            local_q: VecDeque::new(),
            class_rr: 0,
            vc_rr: 0,
        }
    }

    /// Absorb credits that have arrived by `now`.
    pub fn absorb_credits(&mut self, now: Cycle) {
        while let Some(&(ready, vc)) = self.credit_q.front() {
            if ready > now {
                break;
            }
            self.credit_q.pop_front();
            self.inj_credits[vc as usize] += 1;
        }
    }

    /// Pick a free injection VC within `mask` (not busy, has credit),
    /// rotating for fairness.
    pub fn pick_inj_vc(&mut self, mask: u64) -> Option<u8> {
        let n = self.inj_busy.len();
        for i in 0..n {
            let v = (self.vc_rr + i) % n;
            if mask & (1 << v) != 0 && !self.inj_busy[v] && self.inj_credits[v] > 0 {
                self.vc_rr = (v + 1) % n;
                return Some(v as u8);
            }
        }
        None
    }

    /// Packets waiting in source queues (not yet fully injected).
    pub fn queued_packets(&self) -> usize {
        self.class_q.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_absorbed_in_time_order() {
        let mut ni = Ni::new(1, 2, 4);
        ni.inj_credits = vec![0, 0];
        ni.credit_q.push_back((5, 0));
        ni.credit_q.push_back((7, 1));
        ni.absorb_credits(4);
        assert_eq!(ni.inj_credits, vec![0, 0]);
        ni.absorb_credits(5);
        assert_eq!(ni.inj_credits, vec![1, 0]);
        ni.absorb_credits(100);
        assert_eq!(ni.inj_credits, vec![1, 1]);
    }

    #[test]
    fn pick_inj_vc_respects_mask_busy_credits() {
        let mut ni = Ni::new(1, 4, 2);
        assert_eq!(ni.pick_inj_vc(0b0100), Some(2));
        ni.inj_busy[2] = true;
        assert_eq!(ni.pick_inj_vc(0b0100), None);
        ni.inj_credits[1] = 0;
        assert_eq!(ni.pick_inj_vc(0b0010), None);
        assert_eq!(ni.pick_inj_vc(0b1011), Some(3));
    }

    #[test]
    fn pick_inj_vc_rotates() {
        let mut ni = Ni::new(1, 2, 4);
        assert_eq!(ni.pick_inj_vc(0b11), Some(0));
        assert_eq!(ni.pick_inj_vc(0b11), Some(1));
        assert_eq!(ni.pick_inj_vc(0b11), Some(0));
    }

    #[test]
    fn queued_packets_sums_classes() {
        let mut ni = Ni::new(2, 2, 4);
        ni.class_q[0].push_back(1);
        ni.class_q[1].push_back(2);
        ni.class_q[1].push_back(3);
        assert_eq!(ni.queued_packets(), 3);
    }
}
