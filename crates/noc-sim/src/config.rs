//! Network configuration: the parameter space of Table I.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::routing::{Dor, MinAdaptive, Romm, Routing, RoutingAlgorithm, Valiant, VcBook};
use crate::topology::{KAryNCube, Topology};

/// Switch/VC arbitration policy (Table I: round robin, age-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbitration {
    /// Rotating round-robin priority (default).
    RoundRobin,
    /// Oldest packet (smallest birth cycle) wins.
    AgeBased,
}

/// Named topology selector, convertible to a concrete [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// k-ary 2-mesh.
    Mesh2D {
        /// Nodes per dimension.
        k: usize,
    },
    /// Folded k-ary 2-cube (torus) — all link delays doubled.
    FoldedTorus2D {
        /// Nodes per dimension.
        k: usize,
    },
    /// Unfolded torus with unit link delay.
    Torus2D {
        /// Nodes per dimension.
        k: usize,
    },
    /// Bidirectional ring.
    Ring {
        /// Node count.
        n: usize,
    },
}

impl TopologyKind {
    /// Instantiate the topology.
    pub fn build(&self) -> Arc<dyn Topology> {
        match *self {
            TopologyKind::Mesh2D { k } => Arc::new(KAryNCube::mesh(&[k, k])),
            TopologyKind::FoldedTorus2D { k } => Arc::new(KAryNCube::folded_torus(&[k, k])),
            TopologyKind::Torus2D { k } => Arc::new(KAryNCube::torus(&[k, k])),
            TopologyKind::Ring { n } => Arc::new(KAryNCube::ring(n)),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopologyKind::Mesh2D { k }
            | TopologyKind::FoldedTorus2D { k }
            | TopologyKind::Torus2D { k } => k * k,
            TopologyKind::Ring { n } => n,
        }
    }
}

/// Named routing selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-ordered routing.
    Dor,
    /// Valiant randomized routing.
    Valiant,
    /// Randomized two-phase minimal (ROMM).
    Romm,
    /// Minimal adaptive with DOR escape.
    MinAdaptive,
}

impl RoutingKind {
    /// Instantiate the algorithm.
    pub fn build(&self) -> Arc<dyn RoutingAlgorithm> {
        match self {
            RoutingKind::Dor => Arc::new(Dor),
            RoutingKind::Valiant => Arc::new(Valiant),
            RoutingKind::Romm => Arc::new(Romm),
            RoutingKind::MinAdaptive => Arc::new(MinAdaptive),
        }
    }

    /// Instantiate the algorithm as the engine's statically dispatched
    /// [`Routing`] enum, so per-flit route calls inline instead of
    /// going through a vtable.
    pub fn build_static(&self) -> Routing {
        match self {
            RoutingKind::Dor => Routing::Dor(Dor),
            RoutingKind::Valiant => Routing::Valiant(Valiant),
            RoutingKind::Romm => Routing::Romm(Romm),
            RoutingKind::MinAdaptive => Routing::MinAdaptive(MinAdaptive),
        }
    }
}

/// Full network configuration (Table I parameter space).
///
/// Defaults mirror the paper's bold baseline: 8x8 mesh, DOR, 2 VCs,
/// 4-flit buffers per VC, 1-cycle router, round-robin arbitration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Topology selector.
    pub topology: TopologyKind,
    /// Routing algorithm selector.
    pub routing: RoutingKind,
    /// Total virtual channels per physical port.
    pub vcs: usize,
    /// Buffer depth per VC, in flits (`q`).
    pub vc_buf: usize,
    /// Router pipeline delay in cycles (`t_r`).
    pub router_delay: u32,
    /// Arbitration policy for VC and switch allocation.
    pub arbitration: Arbitration,
    /// Number of message classes sharing the network (1 for open-loop,
    /// 2 for request/reply closed-loop protocols).
    pub classes: usize,
    /// RNG seed; a `(config, seed)` pair fully determines a run.
    pub seed: u64,
    /// Metrics bin width in cycles; `None` (the default) disables the
    /// observability collector entirely (one branch per cycle, behavior
    /// bit-identical to an uninstrumented build). See [`crate::metrics`].
    pub metrics: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            topology: TopologyKind::Mesh2D { k: 8 },
            routing: RoutingKind::Dor,
            vcs: 2,
            vc_buf: 4,
            router_delay: 1,
            arbitration: Arbitration::RoundRobin,
            classes: 1,
            seed: 0x0c5e_ed01,
            metrics: None,
        }
    }
}

impl NetConfig {
    /// Baseline open-loop configuration (Table I bold values).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Validate the configuration and build the VC partition book.
    pub fn validate(&self) -> Result<VcBook, ConfigError> {
        if self.vc_buf == 0 {
            return Err(ConfigError::Parameter { name: "vc_buf", why: "must be >= 1 flit".into() });
        }
        if self.router_delay == 0 {
            return Err(ConfigError::Parameter {
                name: "router_delay",
                why: "must be >= 1 cycle".into(),
            });
        }
        if self.metrics == Some(0) {
            return Err(ConfigError::Parameter {
                name: "metrics",
                why: "metrics bin width must be >= 1 cycle".into(),
            });
        }
        if self.vcs > 64 {
            return Err(ConfigError::Parameter {
                name: "vcs",
                why: "at most 64 VCs supported (bitmask width)".into(),
            });
        }
        let topo = self.topology.build();
        let routing = self.routing.build();
        VcBook::new(self.vcs, self.classes, routing.as_ref(), topo.as_ref())
    }

    /// Builder-style setters for sweep ergonomics.
    pub fn with_router_delay(mut self, tr: u32) -> Self {
        self.router_delay = tr;
        self
    }

    /// Set buffer depth per VC.
    pub fn with_vc_buf(mut self, q: usize) -> Self {
        self.vc_buf = q;
        self
    }

    /// Set VC count.
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        self.vcs = vcs;
        self
    }

    /// Set topology.
    pub fn with_topology(mut self, t: TopologyKind) -> Self {
        self.topology = t;
        self
    }

    /// Set routing algorithm.
    pub fn with_routing(mut self, r: RoutingKind) -> Self {
        self.routing = r;
        self
    }

    /// Set message class count.
    pub fn with_classes(mut self, c: usize) -> Self {
        self.classes = c;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set arbitration policy.
    pub fn with_arbitration(mut self, a: Arbitration) -> Self {
        self.arbitration = a;
        self
    }

    /// Enable the metrics collector with the given bin width in cycles
    /// (see [`crate::metrics::DEFAULT_BIN_WIDTH`] for a sane default).
    pub fn with_metrics(mut self, bin_width: u64) -> Self {
        self.metrics = Some(bin_width);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        let cfg = NetConfig::baseline();
        let book = cfg.validate().unwrap();
        assert_eq!(book.vcs(), 2);
        assert_eq!(book.classes(), 1);
    }

    #[test]
    fn closed_loop_mesh_two_classes() {
        let cfg = NetConfig::baseline().with_classes(2);
        cfg.validate().unwrap();
    }

    #[test]
    fn torus_two_classes_needs_four_vcs() {
        let cfg = NetConfig::baseline()
            .with_topology(TopologyKind::FoldedTorus2D { k: 8 })
            .with_classes(2);
        assert!(cfg.validate().is_err());
        assert!(cfg.with_vcs(4).validate().is_ok());
    }

    #[test]
    fn valiant_two_classes_needs_four_vcs() {
        let cfg = NetConfig::baseline().with_routing(RoutingKind::Valiant).with_classes(2);
        assert!(cfg.validate().is_err());
        assert!(cfg.with_vcs(4).validate().is_ok());
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(NetConfig::baseline().with_vc_buf(0).validate().is_err());
        assert!(NetConfig::baseline().with_router_delay(0).validate().is_err());
        assert!(NetConfig::baseline().with_metrics(0).validate().is_err());
        assert!(NetConfig::baseline().with_metrics(64).validate().is_ok());
        let mut cfg = NetConfig::baseline();
        cfg.vcs = 65;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn topology_kind_builds() {
        assert_eq!(TopologyKind::Mesh2D { k: 8 }.build().num_nodes(), 64);
        assert_eq!(TopologyKind::Ring { n: 64 }.build().num_nodes(), 64);
        assert_eq!(TopologyKind::FoldedTorus2D { k: 4 }.num_nodes(), 16);
    }

    #[test]
    fn builder_setters_compose() {
        let cfg = NetConfig::baseline()
            .with_vcs(4)
            .with_routing(RoutingKind::Romm)
            .with_arbitration(Arbitration::AgeBased)
            .with_seed(99)
            .with_vc_buf(8)
            .with_router_delay(2);
        assert_eq!(cfg.vcs, 4);
        assert_eq!(cfg.routing, RoutingKind::Romm);
        assert_eq!(cfg.arbitration, Arbitration::AgeBased);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.vc_buf, 8);
        assert_eq!(cfg.router_delay, 2);
        cfg.validate().unwrap();
    }
}
