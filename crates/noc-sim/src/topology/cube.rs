//! k-ary n-cube family: meshes, (folded) tori, and rings.

use super::{port_dim, port_is_plus, port_minus, port_plus, Coords, Topology, MAX_DIMS};

/// A k-ary n-cube, optionally with wraparound (torus) links.
///
/// * `Mesh`: `KAryNCube::mesh(&[k, k])`
/// * `Folded torus`: `KAryNCube::folded_torus(&[k, k])` — wraparound with
///   every link's delay doubled, modeling the folded physical layout the
///   paper assumes ("the folded-torus increases the channel delay").
/// * `Ring`: `KAryNCube::ring(n)` — a 1-dimensional torus.
#[derive(Debug, Clone)]
pub struct KAryNCube {
    radices: Vec<usize>,
    wrap: bool,
    /// Delay of every inter-router link, in cycles.
    link_delay: u32,
    num_nodes: usize,
    kind: &'static str,
}

impl KAryNCube {
    /// Mesh with the given per-dimension radices and unit link delay.
    pub fn mesh(radices: &[usize]) -> Self {
        Self::new(radices, false, 1, "mesh")
    }

    /// Torus with wraparound and unit link delay (unfolded).
    pub fn torus(radices: &[usize]) -> Self {
        Self::new(radices, true, 1, "torus")
    }

    /// Folded torus: wraparound with link delay 2 on every channel, the
    /// paper's assumption for its topology comparison (Fig 6).
    pub fn folded_torus(radices: &[usize]) -> Self {
        Self::new(radices, true, 2, "folded-torus")
    }

    /// Bidirectional ring of `n` nodes (1-ary torus), unit link delay.
    pub fn ring(n: usize) -> Self {
        Self::new(&[n], true, 1, "ring")
    }

    /// Fully general constructor.
    ///
    /// # Panics
    /// If `radices` is empty, longer than [`MAX_DIMS`], any radix is < 2,
    /// or `link_delay == 0`.
    pub fn new(radices: &[usize], wrap: bool, link_delay: u32, kind: &'static str) -> Self {
        assert!(!radices.is_empty() && radices.len() <= MAX_DIMS, "1..={MAX_DIMS} dims");
        assert!(radices.iter().all(|&k| k >= 2), "radix must be >= 2");
        assert!(link_delay >= 1, "link delay must be >= 1 cycle");
        let num_nodes = radices.iter().product();
        Self { radices: radices.to_vec(), wrap, link_delay, num_nodes, kind }
    }

    fn stride(&self, d: usize) -> usize {
        self.radices[..d].iter().product()
    }
}

impl Topology for KAryNCube {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_ports(&self) -> usize {
        1 + 2 * self.radices.len()
    }

    fn dims(&self) -> usize {
        self.radices.len()
    }

    fn radix(&self, d: usize) -> usize {
        self.radices[d]
    }

    fn wraps(&self, d: usize) -> bool {
        // A wrap dimension of radix 2 has coincident +1/-1 neighbors; we
        // still treat it as wrapping for VC (dateline) purposes.
        self.wrap && self.radices[d] >= 2
    }

    fn neighbor(&self, node: usize, port: usize) -> Option<(usize, usize)> {
        if port == 0 || port >= self.num_ports() {
            return None;
        }
        let d = port_dim(port);
        let k = self.radices[d];
        let c = self.coords_of(node)[d];
        let (nc, in_port) = if port_is_plus(port) {
            if c + 1 < k {
                (c + 1, port_minus(d))
            } else if self.wrap {
                (0, port_minus(d))
            } else {
                return None;
            }
        } else if c > 0 {
            (c - 1, port_plus(d))
        } else if self.wrap {
            (k - 1, port_plus(d))
        } else {
            return None;
        };
        let delta = nc as isize - c as isize;
        let next = (node as isize + delta * self.stride(d) as isize) as usize;
        Some((next, in_port))
    }

    fn link_delay(&self, _node: usize, _port: usize) -> u32 {
        self.link_delay
    }

    fn coords_of(&self, node: usize) -> Coords {
        debug_assert!(node < self.num_nodes);
        let mut c = [0usize; MAX_DIMS];
        let mut rem = node;
        for (d, &k) in self.radices.iter().enumerate() {
            c[d] = rem % k;
            rem /= k;
        }
        c
    }

    fn node_at(&self, coords: &Coords) -> usize {
        let mut node = 0;
        for (d, &k) in self.radices.iter().enumerate().rev() {
            debug_assert!(coords[d] < k);
            node = node * k + coords[d];
        }
        node
    }

    fn min_hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords_of(a);
        let cb = self.coords_of(b);
        let mut hops = 0;
        for (d, &k) in self.radices.iter().enumerate() {
            let dist = ca[d].abs_diff(cb[d]);
            hops += if self.wrap { dist.min(k - dist) } else { dist };
        }
        hops
    }

    fn name(&self) -> String {
        let ks: Vec<String> = self.radices.iter().map(|k| k.to_string()).collect();
        format!("{} {}", ks.join("x"), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let t = KAryNCube::mesh(&[8, 8]);
        assert_eq!(t.num_nodes(), 64);
        for n in 0..64 {
            let c = t.coords_of(n);
            assert_eq!(t.node_at(&c), n);
            assert!(c[0] < 8 && c[1] < 8);
        }
    }

    #[test]
    fn mesh_neighbors() {
        let t = KAryNCube::mesh(&[4, 4]);
        // node 5 = (1,1)
        assert_eq!(t.neighbor(5, port_plus(0)), Some((6, port_minus(0))));
        assert_eq!(t.neighbor(5, port_minus(0)), Some((4, port_plus(0))));
        assert_eq!(t.neighbor(5, port_plus(1)), Some((9, port_minus(1))));
        assert_eq!(t.neighbor(5, port_minus(1)), Some((1, port_plus(1))));
        // corners have no outward links
        assert_eq!(t.neighbor(0, port_minus(0)), None);
        assert_eq!(t.neighbor(0, port_minus(1)), None);
        assert_eq!(t.neighbor(15, port_plus(0)), None);
        assert_eq!(t.neighbor(15, port_plus(1)), None);
        // local port has no neighbor
        assert_eq!(t.neighbor(5, 0), None);
    }

    #[test]
    fn torus_wraps() {
        let t = KAryNCube::torus(&[4, 4]);
        assert_eq!(t.neighbor(3, port_plus(0)), Some((0, port_minus(0))));
        assert_eq!(t.neighbor(0, port_minus(0)), Some((3, port_plus(0))));
        assert_eq!(t.neighbor(12, port_plus(1)), Some((0, port_minus(1))));
        assert_eq!(t.neighbor(0, port_minus(1)), Some((12, port_plus(1))));
    }

    #[test]
    fn links_are_reciprocal_mesh_and_torus() {
        for t in [KAryNCube::mesh(&[5, 3]), KAryNCube::torus(&[5, 3]), KAryNCube::ring(7)] {
            for n in 0..t.num_nodes() {
                for p in 1..t.num_ports() {
                    if let Some((m, q)) = t.neighbor(n, p) {
                        let back = t.neighbor(m, q).expect("reverse link must exist");
                        assert_eq!(back, (n, p), "reciprocity at node {n} port {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn min_hops_mesh() {
        let t = KAryNCube::mesh(&[8, 8]);
        assert_eq!(t.min_hops(0, 63), 14); // corner to corner
        assert_eq!(t.min_hops(0, 0), 0);
        assert_eq!(t.min_hops(0, 7), 7);
        assert_eq!(t.min_hops(0, 8), 1);
    }

    #[test]
    fn min_hops_torus() {
        let t = KAryNCube::torus(&[8, 8]);
        assert_eq!(t.min_hops(0, 63), 2); // corner to corner wraps
        assert_eq!(t.min_hops(0, 7), 1);
        assert_eq!(t.min_hops(0, 4), 4); // half way: no shortcut
    }

    #[test]
    fn min_hops_ring() {
        let t = KAryNCube::ring(8);
        assert_eq!(t.min_hops(0, 1), 1);
        assert_eq!(t.min_hops(0, 7), 1);
        assert_eq!(t.min_hops(0, 4), 4);
    }

    #[test]
    fn avg_hops_mesh_matches_formula() {
        // For a k-ary 2-mesh under uniform traffic (excluding self), the
        // per-dimension average distance is k/3 * (1 - 1/k^2) scaled by the
        // self-exclusion factor; just sanity check against brute force
        // bounds: 8x8 mesh average is ~5.33 including self, slightly higher
        // excluding self.
        let t = KAryNCube::mesh(&[8, 8]);
        let avg = t.avg_min_hops();
        assert!(avg > 5.2 && avg < 5.5, "avg = {avg}");
    }

    #[test]
    fn avg_hops_torus_less_than_mesh() {
        let m = KAryNCube::mesh(&[8, 8]);
        let t = KAryNCube::torus(&[8, 8]);
        assert!(t.avg_min_hops() < m.avg_min_hops());
    }

    #[test]
    fn folded_torus_link_delay() {
        let t = KAryNCube::folded_torus(&[8, 8]);
        assert_eq!(t.link_delay(0, 1), 2);
        let m = KAryNCube::mesh(&[8, 8]);
        assert_eq!(m.link_delay(0, 1), 1);
    }

    #[test]
    fn ring_is_one_dim() {
        let t = KAryNCube::ring(64);
        assert_eq!(t.dims(), 1);
        assert_eq!(t.num_ports(), 3);
        assert_eq!(t.num_nodes(), 64);
        assert!(t.wraps(0));
        assert!(t.has_wrap());
    }

    #[test]
    fn mesh_does_not_wrap() {
        let t = KAryNCube::mesh(&[8, 8]);
        assert!(!t.wraps(0));
        assert!(!t.has_wrap());
    }

    #[test]
    #[should_panic]
    fn radix_one_rejected() {
        KAryNCube::mesh(&[1, 8]);
    }

    #[test]
    fn names_are_descriptive() {
        assert!(KAryNCube::mesh(&[8, 8]).name().contains("mesh"));
        assert!(KAryNCube::folded_torus(&[8, 8]).name().contains("torus"));
        assert!(KAryNCube::ring(64).name().contains("ring"));
    }

    #[test]
    fn three_dims_supported() {
        let t = KAryNCube::mesh(&[4, 4, 4]);
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.num_ports(), 7);
        assert_eq!(t.min_hops(0, 63), 9);
        for n in 0..64 {
            assert_eq!(t.node_at(&t.coords_of(n)), n);
        }
    }
}
