//! Network topologies.
//!
//! All of the paper's topologies — k-ary 2-mesh, folded torus, ring — are
//! instances of a [`KAryNCube`] with per-configuration wraparound and link
//! delay. The [`Topology`] trait is object-safe so harnesses can hold
//! `Arc<dyn Topology>` and stay generic.
//!
//! # Port convention
//!
//! Every router has `1 + 2 * n_dims` ports:
//! * port `0` — the local injection/ejection port (to the NI),
//! * port `1 + 2*d` — dimension `d`, **positive** direction,
//! * port `2 + 2*d` — dimension `d`, **negative** direction.

mod cube;

pub use cube::KAryNCube;

/// Maximum dimensions supported (a fixed bound keeps coordinates inline).
pub const MAX_DIMS: usize = 4;

/// Inline coordinate vector.
pub type Coords = [usize; MAX_DIMS];

/// The local (injection/ejection) port index.
pub const LOCAL_PORT: usize = 0;

/// Port for dimension `d`, positive direction.
pub fn port_plus(d: usize) -> usize {
    1 + 2 * d
}

/// Port for dimension `d`, negative direction.
pub fn port_minus(d: usize) -> usize {
    2 + 2 * d
}

/// Dimension of a non-local port.
pub fn port_dim(port: usize) -> usize {
    debug_assert!(port >= 1);
    (port - 1) / 2
}

/// True if `port` is the positive direction of its dimension.
pub fn port_is_plus(port: usize) -> bool {
    debug_assert!(port >= 1);
    (port - 1).is_multiple_of(2)
}

/// A direct network topology: one router per node, point-to-point links.
pub trait Topology: Send + Sync {
    /// Number of nodes (== routers; concentration is 1 as in the paper).
    fn num_nodes(&self) -> usize;

    /// Ports per router, including the local port 0.
    fn num_ports(&self) -> usize;

    /// Number of dimensions.
    fn dims(&self) -> usize;

    /// Radix (nodes per dimension) of dimension `d`.
    fn radix(&self, d: usize) -> usize;

    /// Whether dimension `d` has wraparound links (needs dateline VCs).
    fn wraps(&self, d: usize) -> bool;

    /// The router and input port reached from `node` via output `port`,
    /// or `None` if the port is unconnected (mesh edge) or local.
    fn neighbor(&self, node: usize, port: usize) -> Option<(usize, usize)>;

    /// Propagation delay in cycles of the link at (`node`, `port`).
    fn link_delay(&self, node: usize, port: usize) -> u32;

    /// Coordinates of `node` (entries beyond [`Topology::dims`] are 0).
    fn coords_of(&self, node: usize) -> Coords;

    /// Node at the given coordinates.
    fn node_at(&self, coords: &Coords) -> usize;

    /// Minimal hop count between two nodes.
    fn min_hops(&self, a: usize, b: usize) -> usize;

    /// Human-readable name, e.g. `"8-ary 2-mesh"`.
    fn name(&self) -> String;

    /// True if any dimension wraps.
    fn has_wrap(&self) -> bool {
        (0..self.dims()).any(|d| self.wraps(d))
    }

    /// Average minimal hop count under uniform traffic (excluding
    /// self-traffic), used for zero-load latency bounds in tests.
    fn avg_min_hops(&self) -> f64 {
        let n = self.num_nodes();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.min_hops(a, b);
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_helpers_roundtrip() {
        for d in 0..MAX_DIMS {
            assert_eq!(port_dim(port_plus(d)), d);
            assert_eq!(port_dim(port_minus(d)), d);
            assert!(port_is_plus(port_plus(d)));
            assert!(!port_is_plus(port_minus(d)));
        }
    }

    #[test]
    fn port_indices_are_dense() {
        assert_eq!(port_plus(0), 1);
        assert_eq!(port_minus(0), 2);
        assert_eq!(port_plus(1), 3);
        assert_eq!(port_minus(1), 4);
    }
}
