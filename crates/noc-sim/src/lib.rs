//! # noc-sim — cycle-accurate on-chip network simulator
//!
//! The network substrate of the *On-Chip Network Evaluation Framework*
//! (SC 2010) reproduction: a flit-level, virtual-channel, wormhole
//! router network covering the paper's full Table I parameter space —
//! 2D mesh / folded torus / ring topologies, DOR / Valiant / ROMM /
//! minimal-adaptive routing, 1–8 cycle routers, 1–32-flit VC buffers,
//! round-robin or age-based arbitration, and credit-based flow control.
//!
//! Workloads attach through [`network::NodeBehavior`]; both open-loop
//! (infinite source queue) and closed-loop (batch model) drivers in the
//! sibling crates are thin layers over [`network::Network::step`].
//!
//! ```
//! use noc_sim::config::NetConfig;
//! use noc_sim::network::{Network, NodeBehavior};
//! use noc_sim::flit::{Cycle, Delivered, PacketSpec};
//!
//! // one packet from node 0 to node 63 on the baseline 8x8 mesh
//! struct OneShot(bool, Option<u64>);
//! impl NodeBehavior for OneShot {
//!     fn pull(&mut self, node: usize, _cycle: Cycle) -> Option<PacketSpec> {
//!         if node == 0 && !self.0 {
//!             self.0 = true;
//!             return Some(PacketSpec { dst: 63, size: 1, class: 0, payload: 0 });
//!         }
//!         None
//!     }
//!     fn deliver(&mut self, _node: usize, d: &Delivered, cycle: Cycle) {
//!         self.1 = Some(cycle - d.birth);
//!     }
//! }
//!
//! let mut net = Network::new(NetConfig::baseline()).unwrap();
//! let mut b = OneShot(false, None);
//! net.drain(&mut b, 10_000);
//! // corner-to-corner: 14 hops x (t_r + t_link) + t_r = 29 cycles
//! assert_eq!(b.1, Some(29));
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod error;
pub mod flit;
pub mod interface;
pub mod metrics;
pub mod network;
pub mod rng;
pub mod router;
pub mod routing;
pub mod topology;
pub mod trace;

pub use config::{Arbitration, NetConfig, RoutingKind, TopologyKind};
pub use error::ConfigError;
pub use flit::{Cycle, Delivered, PacketSpec};
pub use metrics::{ChannelMetrics, MetricsSnapshot, RouterMetrics};
pub use network::fault::{
    FaultEvent, FaultPlan, FaultStats, LinkRetryPolicy, RetxPolicy, SurvivorTable,
};
pub use network::{NetStats, Network, NodeBehavior};
pub use trace::{trace_route, TraceError};
