//! Deterministic simulation RNG.
//!
//! All stochastic choices in the simulator (traffic destinations,
//! Valiant/ROMM intermediates, Bernoulli injection) draw from a single
//! seeded generator so that a `(config, seed)` pair fully determines a
//! run, cycle for cycle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded simulation RNG. Thin wrapper over [`SmallRng`] exposing only
/// the primitives the simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Fork an independent stream (for per-component RNGs) by drawing a
    /// fresh seed from this stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform float in `[0,1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut r = SimRng::new(9);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
        }
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.below(100), fb.below(100));
        }
    }
}
