//! Routing algorithms and virtual-channel partitioning.
//!
//! Implemented algorithms (Table I of the paper):
//! * [`Dor`] — dimension-ordered routing (X then Y), deterministic minimal;
//! * [`Valiant`] — VAL: route to a uniformly random intermediate node, then
//!   to the destination, DOR in each phase;
//! * [`Romm`] — two-phase randomized minimal: the intermediate is drawn
//!   from the minimal quadrant, so the overall path stays minimal;
//! * [`MinAdaptive`] — minimal adaptive with a Duato-style DOR escape VC.
//!
//! # Deadlock freedom
//!
//! Virtual channels are partitioned by *(message class) x (routing phase)*;
//! within each block, wrap-around (torus/ring) dimensions use dateline VC
//! switching, and adaptive routing reserves escape VCs that are restricted
//! to the DOR output. [`VcBook`] computes the partition and validates that
//! the configured VC count suffices — a too-small count is a configuration
//! error, not a silent deadlock.

mod adaptive;
mod dor;
mod romm;
mod valiant;

pub use adaptive::MinAdaptive;
pub use dor::Dor;
pub use romm::Romm;
pub use valiant::Valiant;

use crate::error::ConfigError;
use crate::rng::SimRng;
use crate::topology::{Topology, MAX_DIMS};

/// Per-packet routing state carried on the head flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteState {
    /// Intermediate node for two-phase algorithms (`usize::MAX` if none).
    pub intermediate: usize,
    /// Current phase (0 = toward intermediate, 1 = toward destination).
    pub phase: u8,
    /// Set when the packet has crossed the current dimension's dateline.
    pub dateline: bool,
    /// Dimension the packet was last routed in (dateline resets when the
    /// dimension changes); `u8::MAX` before the first hop.
    pub last_dim: u8,
}

impl RouteState {
    /// State for a single-phase route.
    pub fn direct() -> Self {
        Self { intermediate: usize::MAX, phase: 1, dateline: false, last_dim: u8::MAX }
    }

    /// State for a two-phase route through `mid`.
    pub fn via(mid: usize) -> Self {
        Self { intermediate: mid, phase: 0, dateline: false, last_dim: u8::MAX }
    }

    /// The node this packet is currently steering toward.
    pub fn target(&self, dst: usize) -> usize {
        if self.phase == 0 {
            self.intermediate
        } else {
            dst
        }
    }

    /// Routing target accounting for the phase transition: a packet
    /// sitting *at* its intermediate routes toward the destination (the
    /// flip is applied to its state by `advance_common` when the next
    /// hop commits, so the hop out of the intermediate uses phase-1
    /// VCs while the hop into it used phase-0 VCs — this ordering is
    /// what keeps the two phase sub-networks' channel dependencies
    /// acyclic).
    pub fn effective_target(&self, cur: usize, dst: usize) -> usize {
        if self.phase == 0 && cur == self.intermediate {
            dst
        } else {
            self.target(dst)
        }
    }
}

/// A small inline set of candidate output ports, in priority order.
/// By convention the first entry is always the DOR (escape-safe) port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortSet {
    ports: [u8; 8],
    len: u8,
}

impl PortSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a port.
    ///
    /// # Panics
    /// If more than 8 ports are pushed (no supported topology has more).
    pub fn push(&mut self, port: usize) {
        assert!((self.len as usize) < 8, "too many candidate ports");
        self.ports[self.len as usize] = port as u8;
        self.len += 1;
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no candidate exists (packet is at its target).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Candidate `i`.
    pub fn get(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.ports[i] as usize
    }

    /// Iterate over candidates in priority order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// True if `port` is a member.
    pub fn contains(&self, port: usize) -> bool {
        self.iter().any(|p| p == port)
    }
}

/// A routing algorithm.
///
/// The router calls [`candidates`](RoutingAlgorithm::candidates) for the
/// head flit of each packet waiting for VC allocation, then
/// [`advance`](RoutingAlgorithm::advance) once a hop has been committed to
/// update phase/dateline state.
pub trait RoutingAlgorithm: Send + Sync {
    /// Short name (`"DOR"`, `"VAL"`, ...).
    fn name(&self) -> &'static str;

    /// Number of routing phases (1 or 2); determines VC partitioning.
    fn num_phases(&self) -> usize;

    /// True if the algorithm routes adaptively and therefore needs escape
    /// VCs restricted to the DOR output.
    fn is_adaptive(&self) -> bool;

    /// Initialize per-packet state at injection (chooses the intermediate
    /// node for two-phase algorithms).
    fn init(&self, topo: &dyn Topology, src: usize, dst: usize, rng: &mut SimRng) -> RouteState;

    /// Candidate output ports at router `cur` for a packet with state
    /// `state` destined to `dst`. The first candidate is the DOR port.
    /// Returns an empty set iff the packet should be ejected here.
    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet;

    /// State after taking `port` out of `cur` (phase transition at the
    /// intermediate node, dateline crossing, dimension change).
    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState;

    /// [`candidates`](RoutingAlgorithm::candidates) with access to the
    /// precomputed [`RouteLut`] — the per-cycle engine path. Must return
    /// exactly what `candidates` returns; the default ignores the table.
    fn candidates_lut(
        &self,
        topo: &dyn Topology,
        _lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        self.candidates(topo, cur, dst, state)
    }

    /// [`advance`](RoutingAlgorithm::advance) with access to the
    /// precomputed [`RouteLut`] — the per-cycle engine path. Must return
    /// exactly what `advance` returns; the default ignores the table.
    fn advance_lut(
        &self,
        topo: &dyn Topology,
        _lut: &RouteLut,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        self.advance(topo, cur, port, dst, state)
    }
}

/// The engine's statically dispatched routing algorithm.
///
/// The per-cycle allocation path calls the routing function once per
/// waiting head flit; through an `Arc<dyn RoutingAlgorithm>` every one
/// of those calls is a vtable jump the compiler cannot inline. The four
/// built-in algorithms are therefore carried as enum variants — the
/// `match` below compiles to a jump table over concrete, inlinable
/// method bodies. External [`RoutingAlgorithm`] implementations still
/// plug in through [`Routing::Custom`], which keeps the old virtual
/// dispatch as an escape hatch.
#[derive(Clone)]
pub enum Routing {
    /// Dimension-ordered routing.
    Dor(Dor),
    /// Valiant randomized two-phase routing.
    Valiant(Valiant),
    /// Randomized two-phase minimal routing.
    Romm(Romm),
    /// Minimal adaptive with DOR escape VCs.
    MinAdaptive(MinAdaptive),
    /// Escape hatch for external implementations (virtual dispatch).
    Custom(std::sync::Arc<dyn RoutingAlgorithm>),
}

impl std::fmt::Debug for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dispatch one method call to the concrete variant.
macro_rules! routing_dispatch {
    ($self:expr, $m:ident ( $($arg:expr),* )) => {
        match $self {
            Routing::Dor(a) => a.$m($($arg),*),
            Routing::Valiant(a) => a.$m($($arg),*),
            Routing::Romm(a) => a.$m($($arg),*),
            Routing::MinAdaptive(a) => a.$m($($arg),*),
            Routing::Custom(a) => a.$m($($arg),*),
        }
    };
}

impl Routing {
    /// Short name (`"DOR"`, `"VAL"`, ...).
    #[inline]
    pub fn name(&self) -> &'static str {
        routing_dispatch!(self, name())
    }

    /// Number of routing phases (1 or 2).
    #[inline]
    pub fn num_phases(&self) -> usize {
        routing_dispatch!(self, num_phases())
    }

    /// True if the algorithm routes adaptively.
    #[inline]
    pub fn is_adaptive(&self) -> bool {
        routing_dispatch!(self, is_adaptive())
    }

    /// Initialize per-packet state at injection.
    #[inline]
    pub fn init(
        &self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        rng: &mut SimRng,
    ) -> RouteState {
        routing_dispatch!(self, init(topo, src, dst, rng))
    }

    /// Candidate output ports at `cur` (see
    /// [`RoutingAlgorithm::candidates`]).
    #[inline]
    pub fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        routing_dispatch!(self, candidates(topo, cur, dst, state))
    }

    /// State after taking `port` out of `cur` (see
    /// [`RoutingAlgorithm::advance`]).
    #[inline]
    pub fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        routing_dispatch!(self, advance(topo, cur, port, dst, state))
    }

    /// LUT-backed candidates — the per-cycle engine path.
    #[inline]
    pub fn candidates_lut(
        &self,
        topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        routing_dispatch!(self, candidates_lut(topo, lut, cur, dst, state))
    }

    /// LUT-backed advance — the per-cycle engine path.
    #[inline]
    pub fn advance_lut(
        &self,
        topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        routing_dispatch!(self, advance_lut(topo, lut, cur, port, dst, state))
    }
}

/// The enum is itself a [`RoutingAlgorithm`], so analysis code written
/// against the trait (`noc-verify`, `noc-analytic`, [`VcBook::new`])
/// accepts it unchanged.
impl RoutingAlgorithm for Routing {
    fn name(&self) -> &'static str {
        Routing::name(self)
    }

    fn num_phases(&self) -> usize {
        Routing::num_phases(self)
    }

    fn is_adaptive(&self) -> bool {
        Routing::is_adaptive(self)
    }

    fn init(&self, topo: &dyn Topology, src: usize, dst: usize, rng: &mut SimRng) -> RouteState {
        Routing::init(self, topo, src, dst, rng)
    }

    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        Routing::candidates(self, topo, cur, dst, state)
    }

    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        Routing::advance(self, topo, cur, port, dst, state)
    }

    fn candidates_lut(
        &self,
        topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        Routing::candidates_lut(self, topo, lut, cur, dst, state)
    }

    fn advance_lut(
        &self,
        topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        Routing::advance_lut(self, topo, lut, cur, port, dst, state)
    }
}

/// Dimension-ordered next port toward `target`, or `None` if `cur ==
/// target`. On wrap dimensions ties (distance exactly k/2) break toward
/// the positive direction for determinism.
pub fn dor_port(topo: &dyn Topology, cur: usize, target: usize) -> Option<usize> {
    use crate::topology::{port_minus, port_plus};
    if cur == target {
        return None;
    }
    let cc = topo.coords_of(cur);
    let ct = topo.coords_of(target);
    for d in 0..topo.dims() {
        if cc[d] == ct[d] {
            continue;
        }
        let k = topo.radix(d);
        let plus_dist = (ct[d] + k - cc[d]) % k;
        let minus_dist = (cc[d] + k - ct[d]) % k;
        let go_plus = if topo.wraps(d) { plus_dist <= minus_dist } else { ct[d] > cc[d] };
        return Some(if go_plus { port_plus(d) } else { port_minus(d) });
    }
    None
}

/// All minimal productive ports toward `target` (one or two in 2D).
/// The DOR port is always first.
pub fn minimal_ports(topo: &dyn Topology, cur: usize, target: usize) -> PortSet {
    use crate::topology::{port_minus, port_plus};
    let mut set = PortSet::new();
    if cur == target {
        return set;
    }
    let cc = topo.coords_of(cur);
    let ct = topo.coords_of(target);
    for d in 0..topo.dims() {
        if cc[d] == ct[d] {
            continue;
        }
        let k = topo.radix(d);
        let plus_dist = (ct[d] + k - cc[d]) % k;
        let minus_dist = (cc[d] + k - ct[d]) % k;
        if topo.wraps(d) {
            // minimal direction(s); on a tie both are minimal but we take
            // the deterministic positive one to match `dor_port`
            if plus_dist <= minus_dist {
                set.push(port_plus(d));
            } else {
                set.push(port_minus(d));
            }
        } else if ct[d] > cc[d] {
            set.push(port_plus(d));
        } else {
            set.push(port_minus(d));
        }
    }
    set
}

/// Whether the hop `cur --port-->` crosses the wraparound ("dateline")
/// link of the port's dimension.
pub fn crosses_dateline(topo: &dyn Topology, cur: usize, port: usize) -> bool {
    use crate::topology::{port_dim, port_is_plus};
    if port == 0 {
        return false;
    }
    let d = port_dim(port);
    if !topo.wraps(d) {
        return false;
    }
    let c = topo.coords_of(cur)[d];
    let k = topo.radix(d);
    if port_is_plus(port) {
        c == k - 1
    } else {
        c == 0
    }
}

/// Shared `advance` logic for DOR-per-phase algorithms: update phase at
/// the intermediate node, track dateline crossings, reset the dateline on
/// dimension change.
pub(crate) fn advance_common(
    topo: &dyn Topology,
    cur: usize,
    port: usize,
    _dst: usize,
    state: &RouteState,
) -> RouteState {
    use crate::topology::port_dim;
    let mut next = *state;
    // phase transition happens when the packet leaves its intermediate:
    // the hop *into* the intermediate stays on phase-0 VCs, the hop
    // *out* starts a fresh phase-1 DOR route on phase-1 VCs. Flipping
    // one hop earlier (on arrival) would let a U-turning packet place
    // both its inbound and outbound hops in the same VC class and close
    // a channel-dependency cycle across one link pair.
    if next.phase == 0 && cur == next.intermediate {
        next.phase = 1;
        next.dateline = false;
        next.last_dim = u8::MAX;
    }
    let d = port_dim(port) as u8;
    if next.last_dim != d {
        next.dateline = false;
        next.last_dim = d;
    }
    if crosses_dateline(topo, cur, port) {
        next.dateline = true;
    }
    next
}

/// [`advance_common`] against precomputed tables: identical result, but
/// the dateline test is one bit probe instead of virtual coordinate
/// arithmetic. This is the per-hop path of every DOR-per-phase
/// algorithm, executed once per VC allocation attempt.
pub(crate) fn advance_common_lut(
    lut: &RouteLut,
    cur: usize,
    port: usize,
    state: &RouteState,
) -> RouteState {
    use crate::topology::port_dim;
    let mut next = *state;
    if next.phase == 0 && cur == next.intermediate {
        next.phase = 1;
        next.dateline = false;
        next.last_dim = u8::MAX;
    }
    let d = port_dim(port) as u8;
    if next.last_dim != d {
        next.dateline = false;
        next.last_dim = d;
    }
    if lut.crosses_dateline(cur, port) {
        next.dateline = true;
    }
    next
}

/// Precomputed routing geometry for one fixed topology.
///
/// Route computation (`dor_port`, `minimal_ports`, `crosses_dateline`)
/// runs on every VC-allocation attempt — at saturation that is more than
/// one call per router per cycle, each a cascade of virtual topology
/// lookups with per-dimension division. The cache here devirtualizes
/// that: per-node coordinates and per-dimension radix/wrap flags are
/// materialized once at network construction, and each query becomes a
/// few subtractions over two `u16` coordinate rows. Compared to full
/// `n x n` port tables this is O(n) memory (8 KiB of coordinates for a
/// 1k-node network vs a megabyte of table), so the whole structure stays
/// L1-resident under random traffic, and construction is O(n) instead of
/// O(n^2). Built by [`crate::network::Network::new`]; handed to routers
/// through [`crate::router::RouterCtx`].
#[derive(Debug, Clone)]
pub struct RouteLut {
    dims: usize,
    /// `coords[node * dims + d]`: coordinate of `node` in dimension `d`.
    coords: Vec<u16>,
    /// Radix per dimension (slots past `dims` are zero).
    radix: [u16; MAX_DIMS],
    /// Wraparound flag per dimension.
    wraps: [bool; MAX_DIMS],
    /// `dateline[node]` bit `port`: the hop `node --port-->` crosses the
    /// wraparound link of the port's dimension.
    dateline: Vec<u16>,
}

impl RouteLut {
    /// Precompute the geometry cache for `topo`. The `adaptive` flag is
    /// accepted for construction-site symmetry but no longer changes
    /// what is built: minimal-port queries are computed on the fly, so
    /// there is no O(n^2) adaptive table to opt into.
    pub fn new(topo: &dyn Topology, _adaptive: bool) -> Self {
        let n = topo.num_nodes();
        let ports = topo.num_ports();
        let dims = topo.dims();
        assert!(dims <= MAX_DIMS);
        let mut radix = [0u16; MAX_DIMS];
        let mut wraps = [false; MAX_DIMS];
        for d in 0..dims {
            let k = topo.radix(d);
            assert!(k <= u16::MAX as usize, "per-dimension radix must fit u16");
            radix[d] = k as u16;
            wraps[d] = topo.wraps(d);
        }
        let mut coords = vec![0u16; n * dims];
        for v in 0..n {
            let c = topo.coords_of(v);
            for d in 0..dims {
                coords[v * dims + d] = c[d] as u16;
            }
        }
        let mut dateline = vec![0u16; n];
        for (node, mask) in dateline.iter_mut().enumerate() {
            for port in 1..ports {
                if crosses_dateline(topo, node, port) {
                    *mask |= 1 << port;
                }
            }
        }
        Self { dims, coords, radix, wraps, dateline }
    }

    /// Coordinate rows of `cur` and `target`.
    #[inline]
    fn rows(&self, cur: usize, target: usize) -> (&[u16], &[u16]) {
        let d = self.dims;
        (&self.coords[cur * d..cur * d + d], &self.coords[target * d..target * d + d])
    }

    /// Whether the productive direction in dimension `d` is `+` when
    /// moving from coordinate `cc` to `ct` (callers guarantee they
    /// differ). Matches [`dor_port`]'s tie-break: on a wraparound
    /// dimension equidistant targets go `+`.
    #[inline]
    fn go_plus(&self, d: usize, cc: u16, ct: u16) -> bool {
        if self.wraps[d] {
            let k = self.radix[d];
            let plus_dist = if ct >= cc { ct - cc } else { ct + k - cc };
            // minus_dist == k - plus_dist (coordinates are in-range and
            // differ), so the modulo chain of the generic path reduces
            // to one comparison
            plus_dist <= k - plus_dist
        } else {
            ct > cc
        }
    }

    /// Cache-backed [`dor_port`]: identical result, no virtual calls.
    #[inline]
    pub fn dor_port(&self, cur: usize, target: usize) -> Option<usize> {
        use crate::topology::{port_minus, port_plus};
        if cur == target {
            return None;
        }
        let (cc, ct) = self.rows(cur, target);
        for d in 0..self.dims {
            if cc[d] == ct[d] {
                continue;
            }
            let p = if self.go_plus(d, cc[d], ct[d]) { port_plus(d) } else { port_minus(d) };
            return Some(p);
        }
        None
    }

    /// Cache-backed [`minimal_ports`]: all productive ports, DOR port
    /// first; empty when `cur == target`.
    #[inline]
    pub fn minimal_ports(&self, cur: usize, target: usize) -> PortSet {
        use crate::topology::{port_minus, port_plus};
        let mut set = PortSet::new();
        if cur == target {
            return set;
        }
        let (cc, ct) = self.rows(cur, target);
        for d in 0..self.dims {
            if cc[d] == ct[d] {
                continue;
            }
            set.push(if self.go_plus(d, cc[d], ct[d]) { port_plus(d) } else { port_minus(d) });
        }
        set
    }

    /// Table-backed [`crosses_dateline`].
    #[inline]
    pub fn crosses_dateline(&self, cur: usize, port: usize) -> bool {
        self.dateline[cur] & (1 << port) != 0
    }
}

/// The virtual-channel partition: which VCs a packet may occupy at the
/// next router, given its class, phase, dateline state, and whether the
/// hop uses the adaptive or the escape sub-function.
#[derive(Debug, Clone)]
pub struct VcBook {
    vcs: usize,
    classes: usize,
    phases: usize,
    block: usize,
    /// escape VCs per block (adaptive routing only)
    escape: usize,
    adaptive: bool,
    wrap: bool,
    /// Memoized [`VcBook::allowed`] masks over the full (class, phase,
    /// dateline, escape) domain — the hot path reads one word instead of
    /// rebuilding a mask bit by bit.
    allowed_cache: Vec<u64>,
}

impl VcBook {
    /// Build and validate the partition.
    pub fn new(
        vcs: usize,
        classes: usize,
        routing: &dyn RoutingAlgorithm,
        topo: &dyn Topology,
    ) -> Result<Self, ConfigError> {
        let phases = routing.num_phases();
        if classes == 0 || phases == 0 || vcs == 0 {
            return Err(ConfigError::Parameter {
                name: "vcs/classes/phases",
                why: "must all be positive".into(),
            });
        }
        if !vcs.is_multiple_of(classes * phases) {
            return Err(ConfigError::VcPartition { vcs, classes, phases });
        }
        let block = vcs / (classes * phases);
        let wrap = topo.has_wrap();
        let adaptive = routing.is_adaptive();
        let escape = if adaptive {
            let esc = if wrap { 2 } else { 1 };
            if block < esc + 1 {
                return Err(ConfigError::VcBlockTooSmall {
                    available: block,
                    needed: esc + 1,
                    why: "adaptive routing needs escape VC(s) plus at least one adaptive VC",
                });
            }
            esc
        } else {
            if wrap && block < 2 {
                return Err(ConfigError::VcBlockTooSmall {
                    available: block,
                    needed: 2,
                    why: "torus/ring dateline needs two VCs per (class, phase) block",
                });
            }
            0
        };
        let mut book =
            Self { vcs, classes, phases, block, escape, adaptive, wrap, allowed_cache: Vec::new() };
        let mut cache = Vec::with_capacity(classes * phases * 4);
        for class in 0..classes {
            for phase in 0..phases {
                for dateline in [false, true] {
                    for escape_only in [false, true] {
                        cache.push(book.compute_allowed(class, phase, dateline, escape_only));
                    }
                }
            }
        }
        book.allowed_cache = cache;
        Ok(book)
    }

    /// Total VCs.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Message classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Bitmask of VCs a packet `(class, phase)` may use at the downstream
    /// buffer after a hop, where `dateline` is the packet's state *after*
    /// the hop and `escape_only` selects the escape sub-function
    /// (deterministic DOR hop for adaptive routing).
    #[inline]
    pub fn allowed(&self, class: usize, phase: usize, dateline: bool, escape_only: bool) -> u64 {
        debug_assert!(class < self.classes);
        let phase = phase.min(self.phases - 1);
        let idx =
            ((class * self.phases + phase) * 2 + dateline as usize) * 2 + escape_only as usize;
        self.allowed_cache[idx]
    }

    /// The mask computation backing [`VcBook::allowed`]'s cache.
    fn compute_allowed(
        &self,
        class: usize,
        phase: usize,
        dateline: bool,
        escape_only: bool,
    ) -> u64 {
        let base = (class * self.phases + phase) * self.block;
        if self.adaptive {
            if escape_only {
                // dateline selects which escape VC within the block
                let idx = if self.wrap && dateline { 1 } else { 0 };
                1u64 << (base + idx)
            } else {
                // all adaptive VCs (beyond the escape ones)
                let mut mask = 0u64;
                for v in self.escape..self.block {
                    mask |= 1 << (base + v);
                }
                mask
            }
        } else if self.wrap {
            let half = self.block / 2;
            let (lo, hi) = if dateline { (half, self.block) } else { (0, half) };
            let mut mask = 0u64;
            for v in lo..hi {
                mask |= 1 << (base + v);
            }
            mask
        } else {
            let mut mask = 0u64;
            for v in 0..self.block {
                mask |= 1 << (base + v);
            }
            mask
        }
    }

    /// VCs a packet of `class` may use at the injection port (phase 0,
    /// no dateline; for adaptive routing both escape and adaptive VCs are
    /// legal entry points, but we inject on adaptive VCs when available).
    pub fn injection(&self, class: usize) -> u64 {
        if self.adaptive {
            self.allowed(class, 0, false, false) | self.allowed(class, 0, false, true)
        } else {
            self.allowed(class, 0, false, false)
        }
    }

    /// All VCs belonging to `class`, regardless of phase or dateline —
    /// used at ejection, where deadlock restrictions no longer apply.
    pub fn class_mask(&self, class: usize) -> u64 {
        debug_assert!(class < self.classes);
        let per_class = self.phases * self.block;
        let mut mask = 0u64;
        for v in 0..per_class {
            mask |= 1 << (class * per_class + v);
        }
        mask
    }

    /// True when `vc` is an escape VC of its block (adaptive routing).
    pub fn is_escape(&self, vc: usize) -> bool {
        self.adaptive && (vc % self.block) < self.escape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{port_minus, port_plus, KAryNCube};

    #[test]
    fn route_state_target() {
        let s = RouteState::via(7);
        assert_eq!(s.target(3), 7);
        let mut s2 = s;
        s2.phase = 1;
        assert_eq!(s2.target(3), 3);
        assert_eq!(RouteState::direct().target(5), 5);
    }

    #[test]
    fn portset_basics() {
        let mut s = PortSet::new();
        assert!(s.is_empty());
        s.push(3);
        s.push(1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), 3);
        assert_eq!(s.get(1), 1);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn dor_port_mesh_goes_x_first() {
        let t = KAryNCube::mesh(&[4, 4]);
        // from (0,0) to (2,3): x first
        assert_eq!(dor_port(&t, 0, t.node_at(&[2, 3, 0, 0])), Some(port_plus(0)));
        // same column: y
        assert_eq!(dor_port(&t, 0, t.node_at(&[0, 3, 0, 0])), Some(port_plus(1)));
        // arrived
        assert_eq!(dor_port(&t, 5, 5), None);
        // negative directions
        assert_eq!(dor_port(&t, t.node_at(&[3, 3, 0, 0]), 0), Some(port_minus(0)));
    }

    #[test]
    fn dor_port_torus_takes_short_way() {
        let t = KAryNCube::torus(&[8, 8]);
        // (0,0) -> (7,0): wrap in -x (distance 1) beats +x (distance 7)
        assert_eq!(dor_port(&t, 0, 7), Some(port_minus(0)));
        // distance 4 tie: deterministic positive
        assert_eq!(dor_port(&t, 0, 4), Some(port_plus(0)));
    }

    #[test]
    fn minimal_ports_counts() {
        let t = KAryNCube::mesh(&[4, 4]);
        let both = minimal_ports(&t, 0, t.node_at(&[2, 2, 0, 0]));
        assert_eq!(both.len(), 2);
        assert_eq!(both.get(0), port_plus(0), "DOR port first");
        let one = minimal_ports(&t, 0, t.node_at(&[0, 2, 0, 0]));
        assert_eq!(one.len(), 1);
        assert!(minimal_ports(&t, 5, 5).is_empty());
    }

    #[test]
    fn dateline_detection() {
        let t = KAryNCube::torus(&[4, 4]);
        // node (3,0) going +x wraps
        assert!(crosses_dateline(&t, 3, port_plus(0)));
        assert!(!crosses_dateline(&t, 2, port_plus(0)));
        // node (0,y) going -x wraps
        assert!(crosses_dateline(&t, 0, port_minus(0)));
        // mesh never crosses
        let m = KAryNCube::mesh(&[4, 4]);
        assert!(!crosses_dateline(&m, 3, port_plus(0)));
    }

    #[test]
    fn vcbook_single_class_mesh() {
        let t = KAryNCube::mesh(&[4, 4]);
        let dor = Dor;
        let book = VcBook::new(2, 1, &dor, &t).unwrap();
        assert_eq!(book.allowed(0, 0, false, false), 0b11);
        assert_eq!(book.injection(0), 0b11);
    }

    #[test]
    fn vcbook_two_classes() {
        let t = KAryNCube::mesh(&[4, 4]);
        let dor = Dor;
        let book = VcBook::new(4, 2, &dor, &t).unwrap();
        assert_eq!(book.allowed(0, 0, false, false), 0b0011);
        assert_eq!(book.allowed(1, 0, false, false), 0b1100);
    }

    #[test]
    fn vcbook_torus_dateline_split() {
        let t = KAryNCube::torus(&[4, 4]);
        let dor = Dor;
        let book = VcBook::new(4, 2, &dor, &t).unwrap();
        assert_eq!(book.allowed(0, 0, false, false), 0b0001);
        assert_eq!(book.allowed(0, 0, true, false), 0b0010);
        assert_eq!(book.allowed(1, 0, false, false), 0b0100);
        assert_eq!(book.allowed(1, 0, true, false), 0b1000);
    }

    #[test]
    fn vcbook_valiant_phases() {
        let t = KAryNCube::mesh(&[4, 4]);
        let val = Valiant;
        let book = VcBook::new(2, 1, &val, &t).unwrap();
        assert_eq!(book.allowed(0, 0, false, false), 0b01);
        assert_eq!(book.allowed(0, 1, false, false), 0b10);
    }

    #[test]
    fn vcbook_adaptive_escape() {
        let t = KAryNCube::mesh(&[4, 4]);
        let ma = MinAdaptive;
        let book = VcBook::new(2, 1, &ma, &t).unwrap();
        assert_eq!(book.allowed(0, 0, false, true), 0b01, "escape VC");
        assert_eq!(book.allowed(0, 0, false, false), 0b10, "adaptive VC");
        assert!(book.is_escape(0));
        assert!(!book.is_escape(1));
        assert_eq!(book.injection(0), 0b11);
    }

    #[test]
    fn vcbook_rejections() {
        let t = KAryNCube::torus(&[4, 4]);
        let dor = Dor;
        // torus with 2 classes needs 4 VCs: 2 is rejected
        assert!(VcBook::new(2, 2, &dor, &t).is_err());
        // indivisible
        let m = KAryNCube::mesh(&[4, 4]);
        assert!(VcBook::new(3, 2, &dor, &m).is_err());
        // adaptive torus needs 3 per block
        let ma = MinAdaptive;
        assert!(VcBook::new(2, 1, &ma, &t).is_err());
        assert!(VcBook::new(3, 1, &ma, &t).is_ok());
        // zero anything
        assert!(VcBook::new(0, 1, &dor, &m).is_err());
    }

    #[test]
    fn advance_phase_transition() {
        let t = KAryNCube::mesh(&[4, 4]);
        // packet at node 0 with intermediate 1 (one hop +x away):
        // the hop INTO the intermediate stays phase 0 (phase-0 VCs)...
        let s = RouteState::via(1);
        let s1 = advance_common(&t, 0, port_plus(0), 9, &s);
        assert_eq!(s1.phase, 0, "arrival hop is the last phase-0 hop");
        // ...and the hop OUT of the intermediate flips to phase 1 with a
        // fresh DOR route
        let s2 = advance_common(&t, 1, port_plus(1), 9, &s1);
        assert_eq!(s2.phase, 1);
        assert_eq!(s2.last_dim, 1, "new hop's dimension recorded after reset");
        // effective_target reflects the flip while sitting at the mid
        assert_eq!(s1.effective_target(1, 9), 9);
        assert_eq!(s1.effective_target(0, 9), 1);
    }

    #[test]
    fn advance_tracks_dateline_and_dim_change() {
        let t = KAryNCube::torus(&[4, 4]);
        let s = RouteState::direct();
        // wrap hop in x
        let s1 = advance_common(&t, 3, port_plus(0), 0, &s);
        assert!(s1.dateline);
        assert_eq!(s1.last_dim, 0);
        // then a hop in y resets the dateline
        let s2 = advance_common(&t, 0, port_plus(1), 0, &s1);
        assert!(!s2.dateline);
        assert_eq!(s2.last_dim, 1);
    }
}
