//! ROMM: Randomized, Oblivious, Multi-phase Minimal routing
//! (Nesson & Johnsson, SPAA '95).

use super::{
    advance_common, advance_common_lut, dor_port, PortSet, RouteLut, RouteState, RoutingAlgorithm,
};
use crate::rng::SimRng;
use crate::topology::{Coords, Topology};

/// Two-phase ROMM: the intermediate node is drawn uniformly from the
/// *minimal quadrant* between source and destination, so the full path
/// remains minimal while spreading load over many minimal paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct Romm;

impl Romm {
    /// Sample an intermediate node inside the minimal box from `src` to
    /// `dst` (inclusive of both endpoints).
    fn sample_mid(topo: &dyn Topology, src: usize, dst: usize, rng: &mut SimRng) -> usize {
        let cs = topo.coords_of(src);
        let cd = topo.coords_of(dst);
        let mut mid: Coords = [0; crate::topology::MAX_DIMS];
        for d in 0..topo.dims() {
            let k = topo.radix(d);
            if cs[d] == cd[d] {
                mid[d] = cs[d];
                continue;
            }
            let plus_dist = (cd[d] + k - cs[d]) % k;
            let minus_dist = (cs[d] + k - cd[d]) % k;
            let (go_plus, dist) = if topo.wraps(d) {
                // same tie-break as `dor_port`: positive on equal distance
                (plus_dist <= minus_dist, plus_dist.min(minus_dist))
            } else if cd[d] > cs[d] {
                (true, cd[d] - cs[d])
            } else {
                (false, cs[d] - cd[d])
            };
            let step = rng.below(dist + 1); // 0..=dist keeps us in the box
            mid[d] = if go_plus { (cs[d] + step) % k } else { (cs[d] + k - step % k) % k };
        }
        topo.node_at(&mid)
    }
}

impl RoutingAlgorithm for Romm {
    fn name(&self) -> &'static str {
        "ROMM"
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn init(&self, topo: &dyn Topology, src: usize, dst: usize, rng: &mut SimRng) -> RouteState {
        let mid = Self::sample_mid(topo, src, dst, rng);
        if mid == src {
            RouteState::direct()
        } else {
            RouteState::via(mid)
        }
    }

    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = dor_port(topo, cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common(topo, cur, port, dst, state)
    }

    fn candidates_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = lut.dor_port(cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        _dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common_lut(lut, cur, port, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::KAryNCube;

    fn walk(topo: &dyn Topology, src: usize, dst: usize, rng: &mut SimRng) -> Vec<usize> {
        let algo = Romm;
        let mut state = algo.init(topo, src, dst, rng);
        let mut cur = src;
        let mut path = vec![cur];
        for _ in 0..10_000 {
            let cands = algo.candidates(topo, cur, dst, &state);
            if cands.is_empty() {
                break;
            }
            let port = cands.get(0);
            state = algo.advance(topo, cur, port, dst, &state);
            cur = topo.neighbor(cur, port).unwrap().0;
            path.push(cur);
        }
        path
    }

    #[test]
    fn romm_is_minimal_on_mesh() {
        let t = KAryNCube::mesh(&[8, 8]);
        let mut rng = SimRng::new(23);
        for _ in 0..500 {
            let src = rng.below(64);
            let dst = rng.below(64);
            let path = walk(&t, src, dst, &mut rng);
            assert_eq!(*path.last().unwrap(), dst);
            assert_eq!(path.len() - 1, t.min_hops(src, dst), "ROMM must stay minimal");
        }
    }

    #[test]
    fn romm_is_minimal_on_torus() {
        let t = KAryNCube::torus(&[6, 6]);
        let mut rng = SimRng::new(29);
        for _ in 0..500 {
            let src = rng.below(36);
            let dst = rng.below(36);
            let path = walk(&t, src, dst, &mut rng);
            assert_eq!(*path.last().unwrap(), dst);
            assert_eq!(path.len() - 1, t.min_hops(src, dst));
        }
    }

    #[test]
    fn romm_mid_stays_in_box() {
        let t = KAryNCube::mesh(&[8, 8]);
        let mut rng = SimRng::new(31);
        let src = t.node_at(&[1, 2, 0, 0]);
        let dst = t.node_at(&[5, 6, 0, 0]);
        for _ in 0..200 {
            let mid = Romm::sample_mid(&t, src, dst, &mut rng);
            let c = t.coords_of(mid);
            assert!((1..=5).contains(&c[0]) && (2..=6).contains(&c[1]), "mid {c:?} outside box");
        }
    }

    #[test]
    fn romm_spreads_paths() {
        // Unlike DOR, ROMM should use more than one distinct path between
        // a corner pair over many trials.
        let t = KAryNCube::mesh(&[4, 4]);
        let mut rng = SimRng::new(37);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            distinct.insert(walk(&t, 0, 15, &mut rng));
        }
        assert!(distinct.len() > 3, "only {} distinct paths", distinct.len());
    }

    #[test]
    fn romm_same_node() {
        let t = KAryNCube::mesh(&[4, 4]);
        let mut rng = SimRng::new(41);
        let path = walk(&t, 5, 5, &mut rng);
        assert_eq!(path, vec![5]);
    }
}
