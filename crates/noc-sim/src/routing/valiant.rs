//! Valiant's randomized routing (VAL).

use super::{
    advance_common, advance_common_lut, dor_port, PortSet, RouteLut, RouteState, RoutingAlgorithm,
};
use crate::rng::SimRng;
use crate::topology::Topology;

/// Valiant routing: every packet is first routed (DOR) to a uniformly
/// random intermediate node, then (DOR) to its destination. Trades
/// locality for load balance: doubles average hop count on uniform
/// traffic but converts any permutation into two uniform-random phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct Valiant;

impl RoutingAlgorithm for Valiant {
    fn name(&self) -> &'static str {
        "VAL"
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn init(&self, topo: &dyn Topology, src: usize, _dst: usize, rng: &mut SimRng) -> RouteState {
        let mid = rng.below(topo.num_nodes());
        if mid == src {
            // degenerate phase 1: go straight to the destination
            RouteState::direct()
        } else {
            RouteState::via(mid)
        }
    }

    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = dor_port(topo, cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common(topo, cur, port, dst, state)
    }

    fn candidates_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = lut.dor_port(cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        _dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common_lut(lut, cur, port, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::KAryNCube;

    fn walk(
        topo: &dyn Topology,
        algo: &dyn RoutingAlgorithm,
        src: usize,
        dst: usize,
        rng: &mut SimRng,
    ) -> (Vec<usize>, usize) {
        let mut state = algo.init(topo, src, dst, rng);
        let mid = state.intermediate;
        let mut cur = src;
        let mut path = vec![cur];
        for _ in 0..10_000 {
            let cands = algo.candidates(topo, cur, dst, &state);
            if cands.is_empty() {
                break;
            }
            let port = cands.get(0);
            state = algo.advance(topo, cur, port, dst, &state);
            cur = topo.neighbor(cur, port).unwrap().0;
            path.push(cur);
        }
        (path, mid)
    }

    #[test]
    fn valiant_always_terminates_at_dst() {
        let t = KAryNCube::mesh(&[4, 4]);
        let mut rng = SimRng::new(11);
        for s in 0..16 {
            for d in 0..16 {
                for _ in 0..4 {
                    let (path, _) = walk(&t, &Valiant, s, d, &mut rng);
                    assert_eq!(*path.last().unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn valiant_passes_through_intermediate() {
        let t = KAryNCube::mesh(&[8, 8]);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let (path, mid) = walk(&t, &Valiant, 0, 63, &mut rng);
            if mid != usize::MAX {
                assert!(path.contains(&mid), "path {path:?} must visit {mid}");
            }
            assert_eq!(*path.last().unwrap(), 63);
        }
    }

    #[test]
    fn valiant_path_length_is_two_phase_minimal() {
        let t = KAryNCube::mesh(&[8, 8]);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            let src = rng.below(64);
            let dst = rng.below(64);
            let (path, mid) = walk(&t, &Valiant, src, dst, &mut rng);
            let expect = if mid == usize::MAX {
                t.min_hops(src, dst)
            } else {
                t.min_hops(src, mid) + t.min_hops(mid, dst)
            };
            assert_eq!(path.len() - 1, expect);
        }
    }

    #[test]
    fn valiant_average_hops_exceed_minimal() {
        let t = KAryNCube::mesh(&[8, 8]);
        let mut rng = SimRng::new(7);
        let mut val_hops = 0usize;
        let mut min_hops = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let src = rng.below(64);
            let mut dst = rng.below(64);
            while dst == src {
                dst = rng.below(64);
            }
            let (path, _) = walk(&t, &Valiant, src, dst, &mut rng);
            val_hops += path.len() - 1;
            min_hops += t.min_hops(src, dst);
        }
        let ratio = val_hops as f64 / min_hops as f64;
        assert!(ratio > 1.5 && ratio < 2.5, "VAL should roughly double hops, got {ratio}");
    }

    #[test]
    fn valiant_on_torus_terminates() {
        let t = KAryNCube::torus(&[4, 4]);
        let mut rng = SimRng::new(13);
        for s in 0..16 {
            for d in 0..16 {
                let (path, _) = walk(&t, &Valiant, s, d, &mut rng);
                assert_eq!(*path.last().unwrap(), d);
            }
        }
    }
}
