//! Dimension-ordered routing (DOR / XY).

use super::{
    advance_common, advance_common_lut, dor_port, PortSet, RouteLut, RouteState, RoutingAlgorithm,
};
use crate::rng::SimRng;
use crate::topology::Topology;

/// Deterministic dimension-ordered routing: fully resolve dimension 0,
/// then dimension 1, and so on. Minimal and deadlock-free on meshes; on
/// tori it relies on dateline VC switching (handled by the VC book).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dor;

impl RoutingAlgorithm for Dor {
    fn name(&self) -> &'static str {
        "DOR"
    }

    fn num_phases(&self) -> usize {
        1
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn init(
        &self,
        _topo: &dyn Topology,
        _src: usize,
        _dst: usize,
        _rng: &mut SimRng,
    ) -> RouteState {
        RouteState::direct()
    }

    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = dor_port(topo, cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common(topo, cur, port, dst, state)
    }

    fn candidates_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        let mut set = PortSet::new();
        if let Some(p) = lut.dor_port(cur, state.effective_target(cur, dst)) {
            set.push(p);
        }
        set
    }

    fn advance_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        _dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common_lut(lut, cur, port, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{port_plus, KAryNCube};

    /// Walk a packet from src to dst taking the first candidate each hop.
    fn walk(
        topo: &dyn Topology,
        algo: &dyn RoutingAlgorithm,
        src: usize,
        dst: usize,
    ) -> Vec<usize> {
        let mut rng = SimRng::new(1);
        let mut state = algo.init(topo, src, dst, &mut rng);
        let mut cur = src;
        let mut path = vec![cur];
        for _ in 0..1000 {
            let cands = algo.candidates(topo, cur, dst, &state);
            if cands.is_empty() {
                break;
            }
            let port = cands.get(0);
            state = algo.advance(topo, cur, port, dst, &state);
            cur = topo.neighbor(cur, port).unwrap().0;
            path.push(cur);
        }
        path
    }

    #[test]
    fn dor_reaches_all_destinations_mesh() {
        let t = KAryNCube::mesh(&[4, 4]);
        for s in 0..16 {
            for d in 0..16 {
                let path = walk(&t, &Dor, s, d);
                assert_eq!(*path.last().unwrap(), d);
                assert_eq!(path.len() - 1, t.min_hops(s, d), "DOR must be minimal");
            }
        }
    }

    #[test]
    fn dor_reaches_all_destinations_torus_and_ring() {
        for t in [KAryNCube::torus(&[4, 4]), KAryNCube::ring(8)] {
            for s in 0..t.num_nodes() {
                for d in 0..t.num_nodes() {
                    let path = walk(&t, &Dor, s, d);
                    assert_eq!(*path.last().unwrap(), d);
                    assert_eq!(path.len() - 1, t.min_hops(s, d));
                }
            }
        }
    }

    #[test]
    fn dor_x_before_y() {
        let t = KAryNCube::mesh(&[4, 4]);
        let path = walk(&t, &Dor, 0, t.node_at(&[2, 2, 0, 0]));
        // nodes 0 -> 1 -> 2 -> 6 -> 10
        assert_eq!(path, vec![0, 1, 2, 6, 10]);
    }

    #[test]
    fn dor_single_candidate() {
        let t = KAryNCube::mesh(&[4, 4]);
        let c = Dor.candidates(&t, 0, 5, &RouteState::direct());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0), port_plus(0));
        assert!(Dor.candidates(&t, 5, 5, &RouteState::direct()).is_empty());
    }
}
