//! Minimal adaptive routing with a DOR escape channel (Duato's protocol).

use super::{
    advance_common, advance_common_lut, minimal_ports, PortSet, RouteLut, RouteState,
    RoutingAlgorithm,
};
use crate::rng::SimRng;
use crate::topology::Topology;

/// Minimal adaptive (MA) routing: a packet may take any productive
/// minimal port, chosen by the router based on downstream credit
/// availability. Deadlock freedom comes from Duato's protocol: each
/// (class, phase) VC block reserves escape VC(s) on which packets are
/// restricted to the deterministic DOR output, guaranteeing a
/// deadlock-free escape sub-network that blocked packets eventually use.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinAdaptive;

impl RoutingAlgorithm for MinAdaptive {
    fn name(&self) -> &'static str {
        "MA"
    }

    fn num_phases(&self) -> usize {
        1
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn init(
        &self,
        _topo: &dyn Topology,
        _src: usize,
        _dst: usize,
        _rng: &mut SimRng,
    ) -> RouteState {
        RouteState::direct()
    }

    fn candidates(
        &self,
        topo: &dyn Topology,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        minimal_ports(topo, cur, state.effective_target(cur, dst))
    }

    fn advance(
        &self,
        topo: &dyn Topology,
        cur: usize,
        port: usize,
        dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common(topo, cur, port, dst, state)
    }

    fn candidates_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        dst: usize,
        state: &RouteState,
    ) -> PortSet {
        lut.minimal_ports(cur, state.effective_target(cur, dst))
    }

    fn advance_lut(
        &self,
        _topo: &dyn Topology,
        lut: &RouteLut,
        cur: usize,
        port: usize,
        _dst: usize,
        state: &RouteState,
    ) -> RouteState {
        advance_common_lut(lut, cur, port, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::KAryNCube;

    #[test]
    fn ma_candidates_are_minimal_and_dor_first() {
        let t = KAryNCube::mesh(&[8, 8]);
        let algo = MinAdaptive;
        let mut rng = SimRng::new(1);
        for _ in 0..500 {
            let src = rng.below(64);
            let dst = rng.below(64);
            if src == dst {
                continue;
            }
            let state = algo.init(&t, src, dst, &mut rng);
            let cands = algo.candidates(&t, src, dst, &state);
            assert!(!cands.is_empty());
            // every candidate must reduce distance by exactly 1
            for p in cands.iter() {
                let next = t.neighbor(src, p).unwrap().0;
                assert_eq!(t.min_hops(next, dst), t.min_hops(src, dst) - 1);
            }
            // first candidate is the DOR port
            assert_eq!(cands.get(0), super::super::dor_port(&t, src, dst).unwrap());
        }
    }

    #[test]
    fn ma_any_candidate_walk_reaches_dst_minimally() {
        let t = KAryNCube::mesh(&[8, 8]);
        let algo = MinAdaptive;
        let mut rng = SimRng::new(2);
        for _ in 0..300 {
            let src = rng.below(64);
            let dst = rng.below(64);
            let mut state = algo.init(&t, src, dst, &mut rng);
            let mut cur = src;
            let mut hops = 0;
            while cur != dst {
                let cands = algo.candidates(&t, cur, dst, &state);
                assert!(!cands.is_empty());
                // take a random candidate to exercise adaptivity
                let port = cands.get(rng.below(cands.len()));
                state = algo.advance(&t, cur, port, dst, &state);
                cur = t.neighbor(cur, port).unwrap().0;
                hops += 1;
                assert!(hops <= t.min_hops(src, dst), "walk exceeded minimal length");
            }
            assert_eq!(hops, t.min_hops(src, dst));
        }
    }

    #[test]
    fn ma_two_candidates_when_both_dims_unresolved() {
        let t = KAryNCube::mesh(&[4, 4]);
        let algo = MinAdaptive;
        let cands = algo.candidates(&t, 0, 15, &RouteState::direct());
        assert_eq!(cands.len(), 2);
        let cands1 = algo.candidates(&t, 0, 3, &RouteState::direct());
        assert_eq!(cands1.len(), 1);
    }
}
