//! The cycle-accurate network engine.
//!
//! [`Network`] owns the routers, links, NIs, and packet slab, and advances
//! them one cycle at a time. Workloads plug in through [`NodeBehavior`]:
//! the network *pulls* packet specifications from the behavior (so
//! closed-loop models can react to feedback) and *pushes* completed
//! deliveries back, making both open-loop and closed-loop measurement
//! drivers thin layers over the same engine.
//!
//! # Hot-path structure
//!
//! The per-cycle sweep is event-driven rather than scan-everything:
//! routers with buffered flits live in an **active-router bitset**
//! (mirroring the active-link set), NIs with pending ejections or
//! injection work live in two more bitsets, and the allocation sweep
//! walks only set bits in ascending order — so a quiet 1024-node network
//! costs a handful of word tests per cycle instead of 1024 router
//! visits. Router state itself is a network-wide struct-of-arrays slab
//! ([`crate::router::RouterSlab`]) swept contiguously, routing is
//! statically dispatched through the [`crate::routing::Routing`] enum,
//! and fully quiescent stretches are fast-forwarded to the next
//! scheduled event (see [`Network::try_step`]). All of this is
//! observationally invisible: delivery digests are bit-identical to the
//! naive full-scan sweep, which is kept as
//! [`Network::try_step_reference`] and property-tested against the fast
//! path.

pub mod fault;
#[cfg(feature = "sanitize")]
pub mod sanitize;

use std::sync::Arc;

use crate::channel::Link;
use crate::config::NetConfig;
use crate::error::{ConfigError, SimError};
use crate::flit::{Cycle, Delivered, Flit, Packet, PacketSlab, PacketSpec};
use crate::interface::{InjStream, Ni};
use crate::rng::SimRng;
use crate::router::{RouterCtx, RouterSlab, SaWin};
use crate::routing::{RouteLut, Routing, VcBook};
use crate::topology::{Topology, LOCAL_PORT};

/// A workload driving the network.
///
/// `pull` is invoked repeatedly per node per cycle until it returns
/// `None`; returned packets enter that node's (unbounded) source queue.
/// `deliver` is invoked when a packet's tail flit reaches its
/// destination NI.
pub trait NodeBehavior {
    /// Offer the next packet to inject at `node`, if any.
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec>;

    /// Notification of a completed packet delivery at `node`.
    fn deliver(&mut self, node: usize, delivered: &Delivered, cycle: Cycle);

    /// True when the behavior has no future work scheduled (it will not
    /// generate more packets unless triggered by a delivery).
    /// [`Network::drain`] stops only when both the network is idle and
    /// the behavior is quiescent.
    ///
    /// Contract: while this returns true, `pull` must return `None` for
    /// every node *without observable side effects*. The engine relies
    /// on that to fast-forward over quiescent stretches — the per-cycle
    /// pulls of skipped cycles are never issued, which must not change
    /// behavior state.
    fn quiescent(&self) -> bool {
        true
    }

    /// Batched generation: offer every node its per-cycle pulls in one
    /// call, feeding each produced packet to `sink` as `(node, spec)`.
    ///
    /// The default exactly replays the engine's classic polling loop —
    /// [`NodeBehavior::pull`] per node in ascending order until `None` —
    /// so implementors get it for free. Behaviors with a cheap internal
    /// source (e.g. the open-loop Bernoulli workload) may override it to
    /// skip two virtual calls per node per cycle, but an override MUST
    /// be observationally identical to the default: same packets, same
    /// node order, same RNG consumption, and `pull`/`generate` sharing
    /// one poll-dedup state — the engine falls back to per-node `pull`
    /// on fault-degraded networks, where dead NIs are never polled.
    fn generate(&mut self, nodes: usize, cycle: Cycle, sink: &mut dyn FnMut(usize, PacketSpec)) {
        for node in 0..nodes {
            while let Some(spec) = self.pull(node, cycle) {
                sink(node, spec);
            }
        }
    }
}

/// Aggregate counters maintained by the engine.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Flits that entered router injection ports.
    pub flits_injected: u64,
    /// Flits that left through ejection ports (excludes self-delivery).
    pub flits_ejected: u64,
    /// Packets injected into the network (excludes self-delivery).
    pub packets_injected: u64,
    /// Packets fully delivered (includes self-delivery).
    pub packets_delivered: u64,
    /// Self-addressed packets delivered without entering the network.
    pub self_delivered: u64,
    /// Flits swallowed by injected faults (dead or corrupting channels).
    /// Always zero without a fault plan.
    pub flits_dropped: u64,
    /// Per-node injected flit counts.
    pub node_injected: Vec<u64>,
    /// Per-node delivered flit counts.
    pub node_delivered: Vec<u64>,
    /// FNV-1a digest over the full delivery stream
    /// `(uid, src, dst, cycle)` — a cycle-exact fingerprint of the run.
    /// Two runs with equal digests delivered exactly the same packets at
    /// exactly the same times; use it as a golden value in regression
    /// tests of the simulator's determinism.
    pub delivery_digest: u64,
}

/// Fold one value into an FNV-1a digest.
fn fnv1a(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a offset basis (the digest's initial value).
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Set bit `i` in a `u64`-word bitset.
#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

/// Clear bit `i`.
#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1 << (i & 63));
}

/// Test bit `i`.
#[inline]
fn bit_test(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1 << (i & 63)) != 0
}

/// The simulated network.
pub struct Network {
    cfg: NetConfig,
    topo: Arc<dyn Topology>,
    /// Statically dispatched routing algorithm: per-flit route calls
    /// inline instead of going through a vtable.
    routing: Routing,
    /// Flat route tables precomputed at construction; the allocation hot
    /// path reads these instead of recomputing coordinates every cycle.
    lut: RouteLut,
    book: VcBook,
    /// All router state, network-wide struct-of-arrays.
    routers: RouterSlab,
    /// Directed links indexed `router * (ports-1) + (port-1)`; `None`
    /// where a mesh edge has no neighbor.
    links: Vec<Option<Link>>,
    nis: Vec<Ni>,
    packets: PacketSlab,
    rng: SimRng,
    cycle: Cycle,
    stats: NetStats,
    traffic_matrix: Option<Vec<u64>>,
    win_buf: Vec<SaWin>,
    /// Upstream link feeding each `(router, in_port)` slot (same indexing
    /// as `links`), so credit return needs no topology query per flit.
    /// `u32::MAX` where no upstream link exists.
    up_link: Vec<u32>,
    /// Indices of links with a flit or credit in flight. `arrivals`
    /// walks only this set instead of every link slot each cycle; at low
    /// load most links are idle, so this turns the per-cycle link scan
    /// from O(links) into O(traffic).
    active_links: Vec<u32>,
    /// Membership bitmap for `active_links`.
    link_busy: Vec<bool>,
    /// Bitset of routers with at least one buffered flit. Maintained at
    /// every deposit; `route_and_switch` sweeps only set bits (clearing
    /// those that went idle), so allocation is O(active routers).
    active_r: Vec<u64>,
    /// Bitset of NIs with a non-empty ejection or local-delivery queue;
    /// `ejections` visits only these.
    ni_pending: Vec<u64>,
    /// Bitset of NIs with injection-side work: queued packets, an open
    /// injection stream, or undelivered injection credits. `injections`
    /// touches the NI state of a node only when its bit is set.
    ni_work: Vec<u64>,
    /// Packets queued for injection plus open injection streams, summed
    /// over all NIs. Zero means no NI can inject a flit this cycle,
    /// which (with empty active sets and a quiescent behavior) licenses
    /// the quiescent-cycle fast-forward.
    inj_backlog: u64,
    /// Observability collector; `None` (the default) leaves the metrics
    /// hook as a single branch per cycle (see [`crate::metrics`]).
    metrics: Option<Box<crate::metrics::Collector>>,
    /// Fault-injection runtime; `None` (the default) leaves every
    /// fault hook as a single branch per cycle.
    fault: Option<Box<fault::FaultState>>,
    /// Degraded-mode rerouting table, rebuilt whenever a permanent
    /// fault fires. Kept outside `fault` so VC allocation can borrow it
    /// immutably while the fault state mutates.
    survivors: Option<Box<fault::SurvivorTable>>,
    #[cfg(feature = "sanitize")]
    san: sanitize::Sanitizer,
}

impl Network {
    /// Build a network from a validated configuration.
    pub fn new(cfg: NetConfig) -> Result<Self, ConfigError> {
        let book = cfg.validate()?;
        let topo = cfg.topology.build();
        let routing = cfg.routing.build_static();
        let n = topo.num_nodes();
        let ports = topo.num_ports();
        let routers = RouterSlab::new(n, ports, cfg.vcs, cfg.vc_buf);
        let mut links = Vec::with_capacity(n * (ports - 1));
        for r in 0..n {
            for p in 1..ports {
                links.push(
                    topo.neighbor(r, p).map(|(d, dp)| Link::new(d, dp, topo.link_delay(r, p))),
                );
            }
        }
        let nis = (0..n).map(|_| Ni::new(cfg.classes, cfg.vcs, cfg.vc_buf)).collect();
        let rng = SimRng::new(cfg.seed);
        let stats = NetStats {
            node_injected: vec![0; n],
            node_delivered: vec![0; n],
            delivery_digest: DIGEST_SEED,
            ..Default::default()
        };
        let n_links = links.len();
        let lut = RouteLut::new(topo.as_ref(), routing.is_adaptive());
        // invert the link map: up_link[(r, p)] is the link arriving at
        // router r's input port p
        let mut up_link = vec![u32::MAX; n_links];
        for r in 0..n {
            for p in 1..ports {
                if let Some((d, dp)) = topo.neighbor(r, p) {
                    up_link[d * (ports - 1) + (dp - 1)] = (r * (ports - 1) + (p - 1)) as u32;
                }
            }
        }
        let words = n.div_ceil(64);
        let metrics =
            cfg.metrics.map(|bin| Box::new(crate::metrics::Collector::new(bin, n_links, n)));
        Ok(Self {
            cfg,
            topo,
            routing,
            lut,
            book,
            routers,
            links,
            nis,
            packets: PacketSlab::new(),
            rng,
            cycle: 0,
            stats,
            traffic_matrix: None,
            win_buf: Vec::new(),
            up_link,
            active_links: Vec::new(),
            link_busy: vec![false; n_links],
            active_r: vec![0; words],
            ni_pending: vec![0; words],
            ni_work: vec![0; words],
            inj_backlog: 0,
            metrics,
            fault: None,
            survivors: None,
            #[cfg(feature = "sanitize")]
            san: sanitize::Sanitizer::new(),
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// The topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The VC partition.
    pub fn book(&self) -> &VcBook {
        &self.book
    }

    /// Engine counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Packets alive anywhere (source queues, network, ejection).
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// True when no packet is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.packets.live() == 0
    }

    /// Start recording the actual injected traffic matrix
    /// (`src * N + dst` packet counts), for communication-pattern plots.
    pub fn enable_traffic_matrix(&mut self) {
        let n = self.num_nodes();
        self.traffic_matrix = Some(vec![0; n * n]);
    }

    /// The recorded traffic matrix, if enabled.
    pub fn traffic_matrix(&self) -> Option<&[u64]> {
        self.traffic_matrix.as_deref()
    }

    /// Aggregate router pipeline counters across the network — the
    /// saturation bottleneck signature (see
    /// [`crate::router::PipelineStats`]).
    pub fn pipeline_stats(&self) -> crate::router::PipelineStats {
        let mut total = crate::router::PipelineStats::default();
        for p in self.routers.pipelines() {
            total.va_grants += p.va_grants;
            total.va_blocked += p.va_blocked;
            total.sa_grants += p.sa_grants;
            total.sa_credit_starved += p.sa_credit_starved;
            total.sa_conflicts += p.sa_conflicts;
        }
        total
    }

    /// Enable the observability collector at runtime with the given bin
    /// width in cycles (equivalent to building the network with
    /// [`NetConfig::with_metrics`]; see [`crate::metrics`]). Collection
    /// starts at the current cycle; calling again resets it.
    ///
    /// # Panics
    /// If `bin_width == 0`.
    pub fn enable_metrics(&mut self, bin_width: u64) {
        let mut c = crate::metrics::Collector::new(bin_width, self.links.len(), self.routers.len());
        c.resync(&self.links, &self.routers, &self.stats);
        self.metrics = Some(Box::new(c));
    }

    /// True when the observability collector is recording.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Snapshot the recorded metrics (flushing any partial bin), or
    /// `None` when metrics were never enabled. The simulation can keep
    /// running afterwards; later snapshots extend earlier ones.
    pub fn metrics_snapshot(&mut self) -> Option<crate::metrics::MetricsSnapshot> {
        let mut m = self.metrics.take()?;
        let snap =
            m.snapshot(self.cycle, self.topo.num_ports(), &self.routers, &self.links, &self.stats);
        self.metrics = Some(m);
        Some(snap)
    }

    /// Per-link carried-flit counts keyed by `(router, port)`.
    pub fn link_loads(&self) -> Vec<((usize, usize), u64)> {
        let ports = self.topo.num_ports();
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.as_ref().map(|l| ((i / (ports - 1), i % (ports - 1) + 1), l.flits_carried))
            })
            .collect()
    }

    /// Dump buffer/VC occupancy for debugging stuck simulations: every
    /// non-idle input VC with its queue depth, allocated output, and the
    /// output VC's owner/credits.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ri in 0..self.routers.len() {
            let r = self.routers.router(ri);
            for p in 0..r.ports() {
                for v in 0..r.vcs() {
                    let ivc = r.input(p, v);
                    if ivc.is_empty() && ivc.state == crate::router::VcState::Idle {
                        continue;
                    }
                    let _ = write!(
                        out,
                        "router {ri} in[{p}][{v}]: state {:?} qlen {} pkt {}",
                        ivc.state,
                        ivc.qlen(),
                        ivc.pkt
                    );
                    if ivc.state == crate::router::VcState::Active {
                        let op = ivc.out_port as usize;
                        let ov = ivc.out_vc as usize;
                        let o = r.out_vc(op, ov);
                        let _ = write!(
                            out,
                            " -> out[{op}][{ov}] owner {} credits {}",
                            o.owner, o.credits
                        );
                    }
                    if let Some(f) = r.q_front(p, v) {
                        let pkt = self.packets.get(f.pkt);
                        let _ = write!(
                            out,
                            " | front: pkt {} seq {} {}->{} class {} phase {} dl {}",
                            f.pkt,
                            f.seq,
                            pkt.src,
                            pkt.dst,
                            pkt.class,
                            pkt.route.phase,
                            pkt.route.dateline
                        );
                    }
                    out.push('\n');
                }
            }
        }
        for (n, ni) in self.nis.iter().enumerate() {
            let q = ni.queued_packets();
            if q > 0 || ni.stream.iter().any(Option::is_some) {
                let _ = writeln!(
                    out,
                    "ni {n}: queued {q} streams {:?} credits {:?}",
                    ni.stream, ni.inj_credits
                );
            }
        }
        out
    }

    fn link_idx(&self, router: usize, port: usize) -> usize {
        debug_assert!(port >= 1);
        router * (self.topo.num_ports() - 1) + (port - 1)
    }

    /// Advance one cycle (possibly fast-forwarding, see
    /// [`Network::try_step`]).
    ///
    /// # Panics
    /// On a [`SimError`] — an engine-integrity fault that a correct
    /// simulator never produces. Use [`Network::try_step`] to observe
    /// the typed error instead.
    pub fn step(&mut self, behavior: &mut dyn NodeBehavior) {
        if let Err(e) = self.try_step(behavior) {
            panic!("simulation integrity failure: {e}");
        }
    }

    /// Advance one cycle, surfacing integrity faults as values.
    ///
    /// When the network is fully quiescent — no buffered flit anywhere,
    /// nothing queued to inject, and the behavior reports
    /// [`NodeBehavior::quiescent`] — but links or NI queues hold
    /// future-ready events, the cycle counter jumps directly to the
    /// earliest such event before the sweep runs, so dead time between
    /// events costs one step instead of one step per cycle. With a
    /// fault plan installed the jump target additionally respects the
    /// fault timeline — the next unapplied fault/repair event and the
    /// next retransmission deadline — so degraded runs keep the
    /// event-driven speed; the skip is disabled only while the metrics
    /// collector is installed (it observes individual cycles). Every
    /// observable (delivery times, digests, counters) is bit-identical
    /// to stepping through the skipped cycles one by one.
    ///
    /// # Errors
    /// Any [`SimError`]: structural faults (buffer/credit accounting,
    /// dead ports) always; invariant violations and watchdog timeouts
    /// additionally when the `sanitize` feature is enabled.
    pub fn try_step(&mut self, behavior: &mut dyn NodeBehavior) -> Result<(), SimError> {
        self.try_step_inner(behavior, Cycle::MAX)
    }

    /// One cycle of the event-driven sweep, fast-forwarding at most to
    /// `limit` (so [`Network::run`] can land exactly on its target).
    fn try_step_inner(
        &mut self,
        behavior: &mut dyn NodeBehavior,
        limit: Cycle,
    ) -> Result<(), SimError> {
        let mut t = self.cycle;
        if self.metrics.is_none()
            && self.inj_backlog == 0
            && self.active_r.iter().all(|&w| w == 0)
            && behavior.quiescent()
        {
            // quiescent-cycle fast-forward: nothing can change state
            // before the next scheduled event, so jump straight to it.
            // With a fault plan the jump also stops at the next fault
            // timeline action (unapplied event or retransmission
            // deadline): in the skipped stretch the pre-step would have
            // applied no event and every ledger scan would have hit its
            // early-return gate, and the corruption RNG is only drawn
            // at link entries — of which a quiescent network has none —
            // so the digest is identical to the per-cycle scan.
            let mut next = self.next_event_cycle();
            if let Some(fw) = self.fault_next_wake() {
                next = Some(next.map_or(fw, |n| n.min(fw)));
            }
            if let Some(next) = next {
                if next > t {
                    t = next.min(limit);
                    self.cycle = t;
                }
            }
        }
        if self.fault.is_some() {
            self.fault_pre_step(t);
        }
        self.arrivals(t)?;
        self.ejections(t, behavior);
        self.injections(t, behavior)?;
        self.route_and_switch(t)?;
        if self.metrics.is_some() {
            // take/put so the collector can read routers/links/stats
            // without splitting borrows; it is a pointer move, and the
            // collector never mutates engine state
            let mut m = self.metrics.take().expect("checked is_some");
            m.tick(t, &self.routers, &self.links, &self.stats);
            self.metrics = Some(m);
        }
        self.cycle = t + 1;
        #[cfg(feature = "sanitize")]
        self.sanitize_check()?;
        Ok(())
    }

    /// Reference single-cycle sweep: full O(n) scans over every router
    /// and NI, no worklists, no fast-forward. This is the semantic
    /// baseline the event-driven hot path is property-tested against
    /// (delivery digests must match bit-for-bit); it is not meant for
    /// production use.
    #[doc(hidden)]
    pub fn try_step_reference(&mut self, behavior: &mut dyn NodeBehavior) -> Result<(), SimError> {
        let t = self.cycle;
        if self.fault.is_some() {
            self.fault_pre_step(t);
        }
        self.arrivals(t)?;
        self.ejections_reference(t, behavior);
        self.injections_reference(t, behavior)?;
        self.route_and_switch_reference(t)?;
        if self.metrics.is_some() {
            let mut m = self.metrics.take().expect("checked is_some");
            m.tick(t, &self.routers, &self.links, &self.stats);
            self.metrics = Some(m);
        }
        self.cycle = t + 1;
        #[cfg(feature = "sanitize")]
        self.sanitize_check()?;
        Ok(())
    }

    /// Earliest future cycle with a scheduled state change while the
    /// network is quiescent: the minimum over in-flight flit arrivals
    /// and pending NI ejection/local-delivery ready times. In-flight
    /// *credits* are deliberately ignored: with no flit buffered
    /// anywhere and nothing queued to inject, credits only top counters
    /// back up — absorbing one later than its ready time is
    /// observationally identical, because no injection or switch bid
    /// can consult it before the next flit event anyway.
    fn next_event_cycle(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        for &li in &self.active_links {
            if let Some(c) = self.links[li as usize].as_ref().and_then(Link::next_flit_ready) {
                next = Some(next.map_or(c, |n: Cycle| n.min(c)));
            }
        }
        for wi in 0..self.ni_pending.len() {
            let mut word = self.ni_pending[wi];
            while word != 0 {
                let node = (wi << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                let ni = &self.nis[node];
                if let Some(&(c, _)) = ni.eject_q.front() {
                    next = Some(next.map_or(c, |n: Cycle| n.min(c)));
                }
                if let Some(&(c, _)) = ni.local_q.front() {
                    next = Some(next.map_or(c, |n: Cycle| n.min(c)));
                }
            }
        }
        next
    }

    /// Advance `cycles` cycles (exactly — fast-forward is capped so the
    /// final step lands on the target cycle).
    pub fn run(&mut self, cycles: u64, behavior: &mut dyn NodeBehavior) {
        let target = self.cycle + cycles;
        while self.cycle < target {
            if let Err(e) = self.try_step_inner(behavior, target - 1) {
                panic!("simulation integrity failure: {e}");
            }
        }
    }

    /// Step until the network is idle *and* the behavior is quiescent, or
    /// until `max_cycles` steps elapse; returns true if fully drained.
    pub fn drain(&mut self, behavior: &mut dyn NodeBehavior, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            self.step(behavior);
            if self.is_idle() && behavior.quiescent() {
                return true;
            }
        }
        false
    }

    /// Mark link `li` as carrying traffic so `arrivals` will visit it.
    #[inline]
    fn mark_link(link_busy: &mut [bool], active_links: &mut Vec<u32>, li: usize) {
        if !link_busy[li] {
            link_busy[li] = true;
            active_links.push(li as u32);
        }
    }

    /// Deliver link flits and credits that have arrived by `t`.
    ///
    /// Only links in the active set are visited. Iteration order over
    /// that set is schedule-dependent (`swap_remove` bookkeeping), which
    /// is safe: each link deposits flits into a distinct `(router,
    /// port)` input buffer and credits into a distinct source output
    /// port, so cross-link delivery order cannot affect simulator state.
    fn arrivals(&mut self, t: Cycle) -> Result<(), SimError> {
        let ports1 = self.topo.num_ports() - 1;
        let mut i = 0;
        while i < self.active_links.len() {
            let li = self.active_links[i] as usize;
            // credits: link li belongs to source router li / (ports-1)
            let src_router = li / ports1;
            let src_port = li % ports1 + 1;
            // flit deliveries mutate the destination router, credit
            // deliveries the source router; split the borrows by popping
            // from the link first and depositing afterwards
            let link = self.links[li].as_mut().expect("active link exists");
            let (dr, dp) = (link.dst_router, link.dst_port);
            while let Some(vc) = link.pop_credit(t) {
                self.routers.router_mut(src_router).credit(src_port, vc as usize)?;
            }
            while let Some(flit) = self.links[li].as_mut().and_then(|link| link.pop_flit(t)) {
                self.routers.router_mut(dr).deposit(dp, flit)?;
                bit_set(&mut self.active_r, dr);
            }
            if self.links[li].as_ref().is_some_and(|l| !l.is_idle()) {
                i += 1;
            } else {
                self.link_busy[li] = false;
                self.active_links.swap_remove(i);
            }
        }
        Ok(())
    }

    /// Deliver ejected and self-addressed packets whose time has come.
    /// Visits only NIs with pending queues, in ascending node order
    /// (matching the reference full scan, since delivery order feeds the
    /// digest).
    fn ejections(&mut self, t: Cycle, behavior: &mut dyn NodeBehavior) {
        for wi in 0..self.ni_pending.len() {
            let mut word = self.ni_pending[wi];
            while word != 0 {
                let node = (wi << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                self.eject_node(node, t, behavior);
                if self.nis[node].eject_q.is_empty() && self.nis[node].local_q.is_empty() {
                    bit_clear(&mut self.ni_pending, node);
                }
            }
        }
    }

    /// Reference twin of [`Network::ejections`]: scan every NI.
    fn ejections_reference(&mut self, t: Cycle, behavior: &mut dyn NodeBehavior) {
        for node in 0..self.nis.len() {
            self.eject_node(node, t, behavior);
        }
    }

    /// Drain one NI's due ejections and local deliveries.
    fn eject_node(&mut self, node: usize, t: Cycle, behavior: &mut dyn NodeBehavior) {
        while let Some(&(ready, flit)) = self.nis[node].eject_q.front() {
            if ready > t {
                break;
            }
            self.nis[node].eject_q.pop_front();
            self.stats.flits_ejected += 1;
            self.stats.node_delivered[node] += 1;
            if flit.tail {
                // duplicate retransmissions and arrivals at a dead
                // NI are absorbed before the behavior sees them
                let deliver = self.fault_on_tail(node, flit.pkt);
                let pkt = self.packets.remove(flit.pkt);
                if deliver {
                    self.stats.packets_delivered += 1;
                    let d = delivered_of(&pkt);
                    self.stats.delivery_digest =
                        fold_digest(self.stats.delivery_digest, &d, node, t);
                    behavior.deliver(node, &d, t);
                }
            }
        }
        while let Some(&(ready, pid)) = self.nis[node].local_q.front() {
            if ready > t {
                break;
            }
            self.nis[node].local_q.pop_front();
            let deliver = self.fault_on_tail(node, pid);
            let pkt = self.packets.remove(pid);
            if deliver {
                self.stats.packets_delivered += 1;
                self.stats.self_delivered += 1;
                let d = delivered_of(&pkt);
                self.stats.delivery_digest = fold_digest(self.stats.delivery_digest, &d, node, t);
                behavior.deliver(node, &d, t);
            }
        }
    }

    /// Pull new packets from the behavior and inject up to one flit per
    /// node into the router fabric. On a healthy network, generation is
    /// one batched [`NodeBehavior::generate`] call and NI state is only
    /// touched for nodes with injection work pending (`ni_work` bit
    /// set), so a quiet cycle costs O(packets + pending NIs), not O(n).
    fn injections(&mut self, t: Cycle, behavior: &mut dyn NodeBehavior) -> Result<(), SimError> {
        let n = self.num_nodes();
        if self.fault.is_some() {
            // degraded mode: dead NIs must not be polled at all (their
            // generator state freezes), so keep the per-node loop
            for node in 0..n {
                if self.fault_node_dead(node) {
                    // a dead NI stops producing; packets mid-injection
                    // still drain below into the (dead) fabric around it
                    if bit_test(&self.ni_work, node) {
                        self.nis[node].absorb_credits(t);
                        self.inject_one_flit(node, t)?;
                        self.clear_ni_work_if_drained(node);
                    }
                    continue;
                }
                self.pull_packets(node, t, behavior);
                if !bit_test(&self.ni_work, node) {
                    continue;
                }
                self.nis[node].absorb_credits(t);
                self.inject_one_flit(node, t)?;
                self.clear_ni_work_if_drained(node);
            }
            return Ok(());
        }
        self.generate_packets(t, behavior);
        // ascending-node bitset walk, matching the reference full scan
        for wi in 0..self.ni_work.len() {
            let mut word = self.ni_work[wi];
            while word != 0 {
                let node = (wi << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                self.nis[node].absorb_credits(t);
                self.inject_one_flit(node, t)?;
                self.clear_ni_work_if_drained(node);
            }
        }
        Ok(())
    }

    /// Reference twin of [`Network::injections`]: touch every NI
    /// unconditionally (same observable behavior — an NI whose work bit
    /// is clear has nothing to absorb or inject). Generation goes
    /// through the same batched path as the worklist sweep so both see
    /// one identical `generate` call per cycle.
    fn injections_reference(
        &mut self,
        t: Cycle,
        behavior: &mut dyn NodeBehavior,
    ) -> Result<(), SimError> {
        let n = self.num_nodes();
        if self.fault.is_some() {
            for node in 0..n {
                if self.fault_node_dead(node) {
                    self.nis[node].absorb_credits(t);
                    self.inject_one_flit(node, t)?;
                    continue;
                }
                self.pull_packets(node, t, behavior);
                self.nis[node].absorb_credits(t);
                self.inject_one_flit(node, t)?;
            }
            return Ok(());
        }
        self.generate_packets(t, behavior);
        for node in 0..n {
            self.nis[node].absorb_credits(t);
            self.inject_one_flit(node, t)?;
        }
        Ok(())
    }

    /// Admit this cycle's generated packets via one batched
    /// [`NodeBehavior::generate`] call. Interleaving all generation
    /// ahead of all NI injection is observation-equivalent to the
    /// classic per-node pull-then-inject loop: generation never reads
    /// fabric state, and node `i`'s injection touches only node `i`'s
    /// NI and router.
    fn generate_packets(&mut self, t: Cycle, behavior: &mut dyn NodeBehavior) {
        let n = self.num_nodes();
        behavior.generate(n, t, &mut |node, spec| self.admit_packet(node, spec, t));
    }

    /// Pull freshly generated packets at `node` into its source queues
    /// (the per-node polling path, used on fault-degraded networks).
    fn pull_packets(&mut self, node: usize, t: Cycle, behavior: &mut dyn NodeBehavior) {
        while let Some(spec) = behavior.pull(node, t) {
            self.admit_packet(node, spec, t);
        }
    }

    /// Admit one freshly generated packet at `node` into its source
    /// queues.
    fn admit_packet(&mut self, node: usize, spec: PacketSpec, t: Cycle) {
        let n = self.num_nodes();
        let classes = self.cfg.classes;
        {
            assert!(spec.dst < n, "destination {} out of range", spec.dst);
            assert!(spec.size >= 1, "packets must have at least one flit");
            assert!(
                (spec.class as usize) < classes,
                "class {} exceeds configured {classes}",
                spec.class
            );
            if let Some(m) = self.traffic_matrix.as_mut() {
                m[node * n + spec.dst] += 1;
            }
            if spec.dst == node {
                // local delivery: bypass the fabric with router-only latency
                let pid = self.packets.insert(Packet {
                    uid: 0,
                    src: node,
                    dst: node,
                    size: spec.size,
                    class: spec.class,
                    birth: t,
                    inject: t,
                    route: crate::routing::RouteState::direct(),
                    payload: spec.payload,
                });
                let ready = t + self.cfg.router_delay as Cycle + 1;
                self.nis[node].local_q.push_back((ready, pid));
                bit_set(&mut self.ni_pending, node);
            } else {
                let route = self.routing.init(self.topo.as_ref(), node, spec.dst, &mut self.rng);
                let pid = self.packets.insert(Packet {
                    uid: 0,
                    src: node,
                    dst: spec.dst,
                    size: spec.size,
                    class: spec.class,
                    birth: t,
                    inject: u64::MAX,
                    route,
                    payload: spec.payload,
                });
                self.nis[node].class_q[spec.class as usize].push_back(pid);
                self.inj_backlog += 1;
                bit_set(&mut self.ni_work, node);
                if self.fault.is_some() {
                    self.fault_register(node, pid, spec, t);
                }
            }
        }
    }

    /// Clear `node`'s injection-work bit once its NI holds no queued
    /// packet, no open stream, and no undelivered credit.
    fn clear_ni_work_if_drained(&mut self, node: usize) {
        let ni = &self.nis[node];
        if ni.credit_q.is_empty()
            && ni.stream.iter().all(Option::is_none)
            && ni.class_q.iter().all(std::collections::VecDeque::is_empty)
        {
            bit_clear(&mut self.ni_work, node);
        }
    }

    /// Inject at most one flit at `node` (1 flit/cycle/node injection
    /// bandwidth), round-robin across message classes so no class can
    /// head-of-line-block another.
    fn inject_one_flit(&mut self, node: usize, t: Cycle) -> Result<(), SimError> {
        let classes = self.cfg.classes;
        for k in 0..classes {
            let c = (self.nis[node].class_rr + k) % classes;

            // continue an in-progress stream
            if let Some(s) = self.nis[node].stream[c] {
                if self.nis[node].inj_credits[s.vc as usize] == 0 {
                    continue; // this class is blocked; try another
                }
                self.emit_flit(node, c, s, t)?;
                self.nis[node].class_rr = (c + 1) % classes;
                return Ok(());
            }

            // start a new packet
            let Some(&pid) = self.nis[node].class_q[c].front() else { continue };
            let mask = self.book.injection(c);
            let Some(vc) = self.nis[node].pick_inj_vc(mask) else { continue };
            self.nis[node].class_q[c].pop_front();
            self.inj_backlog -= 1;
            self.packets.get_mut(pid).inject = t;
            self.stats.packets_injected += 1;
            let s = InjStream { pkt: pid, vc, next_seq: 0 };
            let size = self.packets.get(pid).size;
            if size > 1 {
                self.nis[node].inj_busy[vc as usize] = true;
                self.nis[node].stream[c] = Some(s);
                self.inj_backlog += 1;
            }
            self.emit_flit(node, c, s, t)?;
            self.nis[node].class_rr = (c + 1) % classes;
            return Ok(());
        }
        Ok(())
    }

    /// Push one flit of stream `s` into the router's injection buffer.
    fn emit_flit(
        &mut self,
        node: usize,
        class: usize,
        s: InjStream,
        _t: Cycle,
    ) -> Result<(), SimError> {
        let size = self.packets.get(s.pkt).size;
        let flit = Flit { pkt: s.pkt, seq: s.next_seq, vc: s.vc, tail: s.next_seq + 1 == size };
        if self.nis[node].inj_credits[s.vc as usize] == 0 {
            return Err(SimError::CreditUnderflow { node, vc: s.vc as usize });
        }
        self.routers.router_mut(node).deposit(LOCAL_PORT, flit)?;
        bit_set(&mut self.active_r, node);
        self.nis[node].inj_credits[s.vc as usize] -= 1;
        self.stats.flits_injected += 1;
        self.stats.node_injected[node] += 1;
        if s.next_seq as usize == size as usize - 1 {
            // tail injected: stream complete
            if size > 1 {
                self.nis[node].inj_busy[s.vc as usize] = false;
                self.nis[node].stream[class] = None;
                self.inj_backlog -= 1;
            }
        } else if size > 1 {
            self.nis[node].stream[class] =
                Some(InjStream { pkt: s.pkt, vc: s.vc, next_seq: s.next_seq + 1 });
        }
        Ok(())
    }

    /// Run VC allocation and switch allocation on routers in the active
    /// set (ascending id, matching the reference full scan), then move
    /// winning flits onto links (or into ejection) and return credits.
    /// Routers that went idle are dropped from the set.
    fn route_and_switch(&mut self, t: Cycle) -> Result<(), SimError> {
        let tr = self.cfg.router_delay as Cycle;
        let ports1 = self.topo.num_ports() - 1;
        // the context and the winner scratch buffer are shared by every
        // router this cycle; building/taking them once keeps the
        // per-router loop free of setup cost
        let ctx = RouterCtx {
            topo: self.topo.as_ref(),
            routing: &self.routing,
            lut: &self.lut,
            book: &self.book,
            arb: self.cfg.arbitration,
            survivors: self.survivors.as_deref(),
        };
        let mut wins = std::mem::take(&mut self.win_buf);
        for wi in 0..self.active_r.len() {
            // a copied word is safe to iterate: processing router r only
            // ever clears r's own bit, and bits set during this cycle
            // (arrival/injection deposits) happened before this phase
            let mut word = self.active_r[wi];
            while word != 0 {
                let r = (wi << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.routers.is_idle(r) {
                    bit_clear(&mut self.active_r, r);
                    continue;
                }
                if let Err(e) = Self::process_router(
                    r,
                    t,
                    tr,
                    ports1,
                    &ctx,
                    &mut self.routers,
                    &mut self.packets,
                    &mut self.links,
                    &mut self.nis,
                    &mut self.stats,
                    self.fault.as_deref_mut(),
                    &self.up_link,
                    &mut self.link_busy,
                    &mut self.active_links,
                    &mut self.ni_pending,
                    &mut self.ni_work,
                    &mut wins,
                ) {
                    self.win_buf = wins;
                    return Err(e);
                }
                if self.routers.is_idle(r) {
                    bit_clear(&mut self.active_r, r);
                }
            }
        }
        self.win_buf = wins;
        Ok(())
    }

    /// Reference twin of [`Network::route_and_switch`]: scan all routers
    /// in ascending order, skipping idle ones, with no set maintenance.
    fn route_and_switch_reference(&mut self, t: Cycle) -> Result<(), SimError> {
        let tr = self.cfg.router_delay as Cycle;
        let ports1 = self.topo.num_ports() - 1;
        let ctx = RouterCtx {
            topo: self.topo.as_ref(),
            routing: &self.routing,
            lut: &self.lut,
            book: &self.book,
            arb: self.cfg.arbitration,
            survivors: self.survivors.as_deref(),
        };
        let mut wins = std::mem::take(&mut self.win_buf);
        for r in 0..self.routers.len() {
            if self.routers.is_idle(r) {
                continue; // no buffered flit: nothing to allocate
            }
            if let Err(e) = Self::process_router(
                r,
                t,
                tr,
                ports1,
                &ctx,
                &mut self.routers,
                &mut self.packets,
                &mut self.links,
                &mut self.nis,
                &mut self.stats,
                self.fault.as_deref_mut(),
                &self.up_link,
                &mut self.link_busy,
                &mut self.active_links,
                &mut self.ni_pending,
                &mut self.ni_work,
                &mut wins,
            ) {
                self.win_buf = wins;
                return Err(e);
            }
        }
        self.win_buf = wins;
        Ok(())
    }

    /// One router's allocation cycle: VC allocation, switch allocation,
    /// then forwarding of the winners (flits onto links or ejection
    /// queues, credits upstream). An associated function taking the
    /// engine's fields as disjoint borrows so the worklist and reference
    /// sweeps share it verbatim.
    #[allow(clippy::too_many_arguments)]
    fn process_router(
        r: usize,
        t: Cycle,
        tr: Cycle,
        ports1: usize,
        ctx: &RouterCtx<'_>,
        routers: &mut RouterSlab,
        packets: &mut PacketSlab,
        links: &mut [Option<Link>],
        nis: &mut [Ni],
        stats: &mut NetStats,
        mut fault: Option<&mut fault::FaultState>,
        up_link: &[u32],
        link_busy: &mut [bool],
        active_links: &mut Vec<u32>,
        ni_pending: &mut [u64],
        ni_work: &mut [u64],
        wins: &mut Vec<SaWin>,
    ) -> Result<(), SimError> {
        {
            let mut router = routers.router_mut(r);
            router.vc_allocate(ctx, packets)?;
            wins.clear();
            router.switch_allocate(ctx, packets, wins)?;
        }
        for &w in wins.iter() {
            // forward the flit
            if w.out_port as usize == LOCAL_PORT {
                nis[r].eject_q.push_back((t + tr, w.flit));
                bit_set(ni_pending, r);
            } else {
                let li = r * ports1 + (w.out_port as usize - 1);
                // a faulty channel may swallow the flit instead of
                // carrying it (the credit is refunded inside), or —
                // under link-level retry — carry it late after replays
                let forward_at = match fault.as_deref_mut() {
                    Some(f) => {
                        let info = links[li].as_ref().map(|l| (l.delay as Cycle, l.in_flight()));
                        f.on_link_entry(
                            stats,
                            packets,
                            &mut routers.router_mut(r),
                            li,
                            info,
                            t + tr,
                            &w,
                        )?
                    }
                    None => Some(t + tr + links[li].as_ref().map_or(0, |l| l.delay as Cycle)),
                };
                if let Some(ready) = forward_at {
                    let Some(link) = links[li].as_mut() else {
                        return Err(SimError::DeadPort { router: r, port: w.out_port as usize });
                    };
                    link.push_flit(ready, w.flit);
                    Self::mark_link(link_busy, active_links, li);
                }
            }
            // return the credit for the freed input slot
            if w.in_port as usize == LOCAL_PORT {
                nis[r].credit_q.push_back((t + 1, w.in_vc));
                bit_set(ni_work, r);
            } else {
                let li = up_link[r * ports1 + (w.in_port as usize - 1)] as usize;
                let Some(link) = links.get_mut(li).and_then(Option::as_mut) else {
                    return Err(SimError::NoUpstreamLink { router: r, port: w.in_port as usize });
                };
                let ready = t + link.delay as Cycle;
                link.push_credit(ready, w.in_vc);
                Self::mark_link(link_busy, active_links, li);
            }
        }
        Ok(())
    }
}

/// Fold one delivery into an FNV-1a run digest.
fn fold_digest(mut h: u64, d: &Delivered, node: usize, t: Cycle) -> u64 {
    h = fnv1a(h, d.uid);
    h = fnv1a(h, d.src as u64);
    h = fnv1a(h, node as u64);
    h = fnv1a(h, t);
    h
}

fn delivered_of(pkt: &Packet) -> Delivered {
    Delivered {
        uid: pkt.uid,
        src: pkt.src,
        dst: pkt.dst,
        size: pkt.size,
        class: pkt.class,
        birth: pkt.birth,
        inject: pkt.inject,
        payload: pkt.payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetConfig, RoutingKind, TopologyKind};

    /// A behavior that sends a fixed list of (cycle, src, dst, size)
    /// packets and records deliveries.
    struct Script {
        sends: Vec<(Cycle, usize, usize, u16)>,
        delivered: Vec<(usize, Delivered, Cycle)>,
    }

    impl Script {
        fn new(mut sends: Vec<(Cycle, usize, usize, u16)>) -> Self {
            sends.sort_by_key(|&(c, s, ..)| (s, c));
            Self { sends, delivered: Vec::new() }
        }
    }

    impl NodeBehavior for Script {
        fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
            let idx = self.sends.iter().position(|&(c, s, ..)| s == node && c <= cycle)?;
            let (_, _, dst, size) = self.sends.remove(idx);
            Some(PacketSpec { dst, size, class: 0, payload: 0 })
        }

        fn deliver(&mut self, node: usize, delivered: &Delivered, cycle: Cycle) {
            self.delivered.push((node, *delivered, cycle));
        }

        fn quiescent(&self) -> bool {
            self.sends.is_empty()
        }
    }

    fn mesh_cfg() -> NetConfig {
        NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 })
    }

    #[test]
    fn single_packet_zero_load_latency() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        // 0 -> 3: 3 hops in x
        let mut b = Script::new(vec![(0, 0, 3, 1)]);
        net.drain(&mut b, 1000);
        assert_eq!(b.delivered.len(), 1);
        let (node, d, t) = &b.delivered[0];
        assert_eq!(*node, 3);
        assert_eq!(d.src, 0);
        // analytic: H hops * (tr + link) + tr = 3*2 + 1 = 7
        assert_eq!(*t - d.birth, 7);
    }

    #[test]
    fn latency_scales_with_router_delay() {
        for (tr, expect) in [(1u32, 7u64), (2, 11), (4, 19), (8, 35)] {
            let mut net = Network::new(mesh_cfg().with_router_delay(tr)).unwrap();
            let mut b = Script::new(vec![(0, 0, 3, 1)]);
            net.drain(&mut b, 2000);
            let (_, d, t) = &b.delivered[0];
            assert_eq!(t - d.birth, expect, "tr = {tr}");
        }
    }

    #[test]
    fn multi_flit_serialization_latency() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(vec![(0, 0, 3, 4)]);
        net.drain(&mut b, 1000);
        let (_, d, t) = &b.delivered[0];
        // head takes 7; three more flits pipeline behind at 1/cycle
        assert_eq!(t - d.birth, 10);
    }

    #[test]
    fn self_delivery_has_local_latency() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(vec![(0, 5, 5, 1)]);
        net.drain(&mut b, 100);
        let (node, d, t) = &b.delivered[0];
        assert_eq!(*node, 5);
        assert_eq!(d.src, 5);
        assert_eq!(t - d.birth, 2); // tr + 1
        assert_eq!(net.stats().self_delivered, 1);
        assert_eq!(net.stats().flits_injected, 0, "self traffic bypasses the fabric");
    }

    #[test]
    fn all_packets_conserved_under_random_storm() {
        let mut sends = Vec::new();
        let mut rng = crate::rng::SimRng::new(77);
        for i in 0..500 {
            let src = rng.below(16);
            let dst = rng.below(16);
            let size = 1 + rng.below(4) as u16;
            sends.push((i % 50, src, dst, size));
        }
        let total = sends.len();
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(sends);
        assert!(net.drain(&mut b, 100_000), "network must drain");
        assert_eq!(b.delivered.len(), total);
        assert_eq!(net.stats().packets_delivered as usize, total);
        assert_eq!(net.live_packets(), 0);
    }

    #[test]
    fn conservation_on_all_topologies_and_routings() {
        for topo in [
            TopologyKind::Mesh2D { k: 4 },
            TopologyKind::Torus2D { k: 4 },
            TopologyKind::FoldedTorus2D { k: 4 },
            TopologyKind::Ring { n: 8 },
        ] {
            for routing in [
                RoutingKind::Dor,
                RoutingKind::Valiant,
                RoutingKind::Romm,
                RoutingKind::MinAdaptive,
            ] {
                let nodes = topo.num_nodes();
                let cfg = NetConfig::baseline()
                    .with_topology(topo)
                    .with_routing(routing)
                    .with_vcs(4)
                    .with_vc_buf(4);
                if cfg.validate().is_err() {
                    continue; // combination needs more VCs than this sweep uses
                }
                let mut sends = Vec::new();
                let mut rng = crate::rng::SimRng::new(5);
                for i in 0..300 {
                    sends.push((i % 30, rng.below(nodes), rng.below(nodes), 1));
                }
                let total = sends.len();
                let mut net = Network::new(cfg).unwrap();
                let mut b = Script::new(sends);
                assert!(net.drain(&mut b, 200_000), "drain failed for {topo:?} {routing:?}");
                assert_eq!(b.delivered.len(), total, "{topo:?} {routing:?}");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut sends = Vec::new();
            let mut rng = crate::rng::SimRng::new(123);
            for i in 0..200 {
                sends.push((i % 20, rng.below(16), rng.below(16), 1));
            }
            let cfg = mesh_cfg().with_routing(RoutingKind::Valiant).with_seed(99);
            let mut net = Network::new(cfg).unwrap();
            let mut b = Script::new(sends);
            net.drain(&mut b, 100_000);
            let mut log: Vec<(usize, u64, Cycle)> =
                b.delivered.iter().map(|(n, d, t)| (*n, d.uid, *t)).collect();
            log.sort_unstable();
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pipeline_stats_expose_bottlenecks() {
        // starved buffers (q=1) make credit stalls the dominant event;
        // roomy buffers (q=8) mostly eliminate them at the same traffic
        let run = |q: usize| {
            let mut sends = Vec::new();
            let mut rng = crate::rng::SimRng::new(17);
            for i in 0..400 {
                sends.push((i % 40, rng.below(16), rng.below(16), 2u16));
            }
            let mut net = Network::new(mesh_cfg().with_vc_buf(q)).unwrap();
            let mut b = Script::new(sends);
            assert!(net.drain(&mut b, 200_000));
            net.pipeline_stats()
        };
        let starved = run(1);
        let roomy = run(8);
        assert!(starved.sa_grants > 0 && starved.va_grants > 0);
        assert_eq!(starved.sa_grants, roomy.sa_grants, "same traffic, same flit-hops");
        assert!(
            starved.sa_credit_starved > 5 * roomy.sa_credit_starved.max(1),
            "q=1 must be credit-bound: {} vs {}",
            starved.sa_credit_starved,
            roomy.sa_credit_starved
        );
    }

    #[test]
    fn delivery_digest_fingerprints_runs() {
        let run = |seed: u64| {
            let mut sends = Vec::new();
            let mut rng = crate::rng::SimRng::new(7);
            for i in 0..150 {
                sends.push((i % 15, rng.below(16), rng.below(16), 1u16));
            }
            // Valiant so the seed actually affects routing decisions
            let cfg = mesh_cfg().with_routing(RoutingKind::Valiant).with_vcs(4).with_seed(seed);
            let mut net = Network::new(cfg).unwrap();
            let mut b = Script::new(sends);
            net.drain(&mut b, 100_000);
            net.stats().delivery_digest
        };
        assert_eq!(run(1), run(1), "same seed, same digest");
        assert_ne!(run(1), run(2), "different seed, different digest");
        assert_ne!(run(1), DIGEST_SEED, "digest moved off the seed value");
    }

    #[test]
    fn traffic_matrix_records_sources_and_destinations() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        net.enable_traffic_matrix();
        let mut b = Script::new(vec![(0, 0, 3, 1), (0, 0, 3, 1), (1, 2, 1, 1)]);
        net.drain(&mut b, 1000);
        let m = net.traffic_matrix().unwrap();
        assert_eq!(m[3], 2); // 0 -> 3
        assert_eq!(m[2 * 16 + 1], 1); // 2 -> 1
        assert_eq!(m.iter().sum::<u64>(), 3);
    }

    #[test]
    fn stats_count_flits() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(vec![(0, 0, 3, 4), (0, 1, 2, 2)]);
        net.drain(&mut b, 1000);
        assert_eq!(net.stats().flits_injected, 6);
        assert_eq!(net.stats().flits_ejected, 6);
        assert_eq!(net.stats().packets_injected, 2);
        assert_eq!(net.stats().packets_delivered, 2);
        assert_eq!(net.stats().node_injected[0], 4);
        assert_eq!(net.stats().node_delivered[3], 4);
    }

    /// The engine moves flits by slab id; any `Packet::clone` on the
    /// per-cycle path is a performance bug. Debug builds count clones
    /// (see [`crate::flit::packet_clones`]) — pin the count at zero
    /// across a busy multi-topology run.
    #[cfg(debug_assertions)]
    #[test]
    fn engine_never_clones_packets() {
        let before = crate::flit::packet_clones();
        let mut sends = Vec::new();
        let mut rng = crate::rng::SimRng::new(31);
        for i in 0..300 {
            sends.push((i % 30, rng.below(16), rng.below(16), 1 + rng.below(4) as u16));
        }
        let cfg = mesh_cfg().with_routing(RoutingKind::Valiant).with_vcs(4);
        let mut net = Network::new(cfg).unwrap();
        let mut b = Script::new(sends);
        assert!(net.drain(&mut b, 100_000));
        assert_eq!(
            crate::flit::packet_clones() - before,
            0,
            "the engine cloned packet state on the hot path"
        );
    }

    #[test]
    fn link_loads_reflect_path() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(vec![(0, 0, 2, 1)]);
        net.drain(&mut b, 1000);
        let loads = net.link_loads();
        let used: Vec<_> = loads.iter().filter(|(_, c)| *c > 0).collect();
        // 0 -> 1 -> 2 under DOR: exactly two links carry the flit
        assert_eq!(used.len(), 2);
    }

    // ---- quiescent-cycle fast-forward ---------------------------------

    /// With a large router delay the lone packet spends most of its
    /// flight on links with every router idle; fast-forward must cover
    /// those stretches in one step each while delivery timing stays
    /// cycle-exact.
    #[test]
    fn fast_forward_skips_quiescent_cycles_exactly() {
        let mut net = Network::new(mesh_cfg().with_router_delay(8)).unwrap();
        let mut b = Script::new(vec![(0, 0, 3, 1)]);
        let mut steps = 0usize;
        while b.delivered.is_empty() {
            net.step(&mut b);
            steps += 1;
            assert!(steps < 100, "packet never delivered");
        }
        let (_, d, t) = &b.delivered[0];
        assert_eq!(t - d.birth, 35, "same latency as the no-skip path (tr=8 analytic)");
        assert!(
            steps < 36,
            "fast-forward must use fewer steps than cycles (took {steps} steps for 36 cycles)"
        );
        assert_eq!(net.cycle(), t + 1, "delivery step ends one past the delivery cycle");
    }

    /// Fast-forward lands exactly on the next link or NI ready time —
    /// every observable (deliveries, digest, final cycle) matches a
    /// reference run stepped one cycle at a time.
    #[test]
    fn fast_forward_matches_reference_observables() {
        let run = |reference: bool| {
            let mut net = Network::new(mesh_cfg().with_router_delay(4)).unwrap();
            let mut b = Script::new(vec![(0, 0, 3, 2), (3, 1, 2, 1), (9, 5, 5, 1)]);
            let mut steps = 0;
            while !(net.is_idle() && b.quiescent()) {
                if reference {
                    net.try_step_reference(&mut b).unwrap();
                } else {
                    net.step(&mut b);
                }
                steps += 1;
                assert!(steps < 10_000);
            }
            let log: Vec<(usize, u64, Cycle)> =
                b.delivered.iter().map(|(n, d, t)| (*n, d.uid, *t)).collect();
            (net.stats().delivery_digest, net.cycle(), log)
        };
        let (fast_digest, fast_cycle, fast_log) = run(false);
        let (ref_digest, ref_cycle, ref_log) = run(true);
        assert_eq!(fast_log, ref_log, "same deliveries at the same cycles");
        assert_eq!(fast_digest, ref_digest, "bit-identical digest");
        assert_eq!(fast_cycle, ref_cycle, "drain ends on the same cycle");
    }

    /// A drained network with no scheduled event must not jump: each
    /// step advances exactly one cycle (there is nothing to jump to).
    #[test]
    fn drained_network_steps_one_cycle_at_a_time() {
        let mut net = Network::new(mesh_cfg()).unwrap();
        let mut b = Script::new(vec![]);
        net.step(&mut b);
        assert_eq!(net.cycle(), 1);
        net.step(&mut b);
        assert_eq!(net.cycle(), 2);
    }

    /// `run(cycles)` must advance exactly `cycles` even when
    /// fast-forward is active mid-run (the jump is capped at the
    /// target).
    #[test]
    fn run_lands_exactly_on_target_with_fast_forward() {
        let mut net = Network::new(mesh_cfg().with_router_delay(8)).unwrap();
        let mut b = Script::new(vec![(0, 0, 3, 1)]);
        net.run(500, &mut b);
        assert_eq!(net.cycle(), 500);
        assert!(net.is_idle());
        net.run(7, &mut b);
        assert_eq!(net.cycle(), 507);
    }

    /// The metrics collector observes every cycle, so enabling it must
    /// disable the skip: delivering the same packet takes one step per
    /// cycle.
    #[test]
    fn metrics_disable_fast_forward() {
        let mut net = Network::new(mesh_cfg().with_router_delay(8).with_metrics(64)).unwrap();
        let mut b = Script::new(vec![(0, 0, 3, 1)]);
        let mut steps = 0u64;
        while b.delivered.is_empty() {
            net.step(&mut b);
            steps += 1;
            assert!(steps < 100);
        }
        let (_, _, t) = &b.delivered[0];
        assert_eq!(steps, t + 1, "metrics-on path steps every cycle");
    }
}
