//! Arbitration primitives shared by VC and switch allocation.

use crate::config::Arbitration;

/// Choose one winner among `cands`, where each candidate is
/// `(index, age)` with `index` its position in the arbiter's input space
/// (e.g. input-port number) and `age` the birth cycle of the packet it
/// carries (smaller = older).
///
/// * `RoundRobin`: the first candidate at or after the rotating pointer
///   `ptr` (wrapping over `space`) wins.
/// * `AgeBased`: the candidate with the smallest age wins; ties break by
///   lowest index for determinism.
///
/// Returns the winning candidate's position within `cands`.
pub fn arbitrate(
    policy: Arbitration,
    cands: &[(usize, u64)],
    ptr: usize,
    space: usize,
) -> Option<usize> {
    if cands.is_empty() {
        return None;
    }
    match policy {
        Arbitration::RoundRobin => {
            // `idx` and `ptr` are both < `space`, so the wrap-around
            // distance fits in one conditional subtract (integer division
            // is too slow for this innermost loop)
            debug_assert!(space > 0 && ptr < space);
            let mut best: Option<(usize, usize)> = None; // (distance from ptr, pos)
            for (pos, &(idx, _)) in cands.iter().enumerate() {
                debug_assert!(idx < space);
                let mut dist = idx + space - ptr;
                if dist >= space {
                    dist -= space;
                }
                if best.is_none_or(|(bd, _)| dist < bd) {
                    best = Some((dist, pos));
                }
            }
            best.map(|(_, pos)| pos)
        }
        Arbitration::AgeBased => {
            let mut best: Option<(u64, usize, usize)> = None; // (age, idx, pos)
            for (pos, &(idx, age)) in cands.iter().enumerate() {
                if best.is_none_or(|(ba, bi, _)| (age, idx) < (ba, bi)) {
                    best = Some((age, idx, pos));
                }
            }
            best.map(|(_, _, pos)| pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_picks_at_or_after_pointer() {
        let cands = [(0, 10), (2, 5), (5, 1)];
        assert_eq!(arbitrate(Arbitration::RoundRobin, &cands, 0, 8), Some(0));
        assert_eq!(arbitrate(Arbitration::RoundRobin, &cands, 1, 8), Some(1));
        assert_eq!(arbitrate(Arbitration::RoundRobin, &cands, 2, 8), Some(1));
        assert_eq!(arbitrate(Arbitration::RoundRobin, &cands, 3, 8), Some(2));
        assert_eq!(arbitrate(Arbitration::RoundRobin, &cands, 6, 8), Some(0), "wraps");
    }

    #[test]
    fn age_based_picks_oldest() {
        let cands = [(0, 10), (2, 5), (5, 7)];
        assert_eq!(arbitrate(Arbitration::AgeBased, &cands, 3, 8), Some(1));
    }

    #[test]
    fn age_ties_break_by_index() {
        let cands = [(4, 5), (2, 5)];
        assert_eq!(arbitrate(Arbitration::AgeBased, &cands, 0, 8), Some(1));
    }

    #[test]
    fn empty_candidates() {
        assert_eq!(arbitrate(Arbitration::RoundRobin, &[], 0, 8), None);
        assert_eq!(arbitrate(Arbitration::AgeBased, &[], 0, 8), None);
    }

    #[test]
    fn round_robin_alternates_when_pointer_follows_winner() {
        // with the standard "pointer = winner + 1" update, two persistent
        // requesters alternate grants
        let cands = [(1, 0), (3, 0)];
        let mut ptr = 0;
        let mut wins = [0usize; 2];
        for _ in 0..8 {
            let w = arbitrate(Arbitration::RoundRobin, &cands, ptr, 8).unwrap();
            wins[w] += 1;
            ptr = (cands[w].0 + 1) % 8;
        }
        assert_eq!(wins, [4, 4]);
    }
}
