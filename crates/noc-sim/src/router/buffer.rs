//! Per-VC input buffers and output-side VC state.
//!
//! Flit storage itself lives in one flat network-wide ring store owned
//! by the [`RouterSlab`](super::RouterSlab) (`n * ports * vcs * vc_buf`
//! slots, contiguous), so an `InputVc` is pure metadata: ring
//! head/length plus allocation state. This keeps all per-router buffer
//! state in a handful of cache lines instead of one small heap
//! allocation per VC, which is what the allocator scans touch every
//! cycle.

use crate::flit::{PacketId, NO_PACKET};

/// State of an input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet allocated; a head flit at the front triggers VC
    /// allocation.
    Idle,
    /// Output port/VC allocated; flits stream through switch allocation.
    Active,
}

/// One input VC: ring-buffer cursor into the router's flit store plus
/// allocation state. 12 bytes, `Copy`-cheap, no heap.
#[derive(Debug)]
pub struct InputVc {
    /// Ring index of the front flit within this VC's `vc_buf` slots.
    pub head: u8,
    /// Number of buffered flits (bounded by `vc_buf` via credits).
    pub len: u8,
    /// Allocation state.
    pub state: VcState,
    /// Allocated output port (valid when `Active`).
    pub out_port: u8,
    /// Allocated output VC (valid when `Active`).
    pub out_vc: u8,
    /// Packet currently occupying this VC (valid when `Active`).
    pub pkt: PacketId,
}

impl InputVc {
    /// Fresh idle VC.
    pub fn new() -> Self {
        Self { head: 0, len: 0, state: VcState::Idle, out_port: 0, out_vc: 0, pkt: NO_PACKET }
    }

    /// Buffered flit count.
    #[inline]
    pub fn qlen(&self) -> usize {
        self.len as usize
    }

    /// True when no flit is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the VC is idle with a flit waiting for allocation.
    /// Wormhole ordering guarantees the front of an idle, non-empty VC
    /// is a packet head (asserted at deposit and by the sanitizer's
    /// framing check), so no flit inspection is needed here.
    #[inline]
    pub fn wants_allocation(&self) -> bool {
        self.state == VcState::Idle && self.len > 0
    }

    /// Release the VC after the tail flit departs.
    #[inline]
    pub fn release(&mut self) {
        self.state = VcState::Idle;
        self.pkt = NO_PACKET;
    }
}

impl Default for InputVc {
    fn default() -> Self {
        Self::new()
    }
}

/// Output-side state of one VC: wormhole ownership plus the credit count
/// for the downstream buffer.
#[derive(Debug, Clone, Copy)]
pub struct OutputVc {
    /// Packet currently owning this output VC (tail not yet passed).
    pub owner: PacketId,
    /// Downstream buffer slots available.
    pub credits: u32,
}

impl OutputVc {
    /// Fresh, unowned, fully credited VC.
    pub fn new(credits: u32) -> Self {
        Self { owner: NO_PACKET, credits }
    }

    /// True when no packet owns the VC.
    #[inline]
    pub fn is_free(&self) -> bool {
        self.owner == NO_PACKET
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wants_allocation_only_when_idle_nonempty() {
        let mut vc = InputVc::new();
        assert!(!vc.wants_allocation(), "empty VC");
        vc.len = 1;
        assert!(vc.wants_allocation());
        vc.state = VcState::Active;
        assert!(!vc.wants_allocation(), "active VC");
    }

    #[test]
    fn release_resets() {
        let mut vc = InputVc::new();
        vc.state = VcState::Active;
        vc.pkt = 7;
        vc.release();
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.pkt, NO_PACKET);
    }
}
