//! Per-VC input buffers and output-side VC state.

use std::collections::VecDeque;

use crate::flit::{Flit, PacketId, NO_PACKET};

/// State of an input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet allocated; a head flit at the front triggers VC
    /// allocation.
    Idle,
    /// Output port/VC allocated; flits stream through switch allocation.
    Active,
}

/// One input VC: a flit FIFO plus allocation state.
#[derive(Debug)]
pub struct InputVc {
    /// Buffered flits (depth enforced by upstream credits).
    pub q: VecDeque<Flit>,
    /// Allocation state.
    pub state: VcState,
    /// Allocated output port (valid when `Active`).
    pub out_port: u8,
    /// Allocated output VC (valid when `Active`).
    pub out_vc: u8,
    /// Packet currently occupying this VC (valid when `Active`).
    pub pkt: PacketId,
}

impl InputVc {
    /// Fresh idle VC.
    pub fn new(capacity: usize) -> Self {
        Self {
            q: VecDeque::with_capacity(capacity),
            state: VcState::Idle,
            out_port: 0,
            out_vc: 0,
            pkt: NO_PACKET,
        }
    }

    /// True when the VC is idle with a head flit waiting for allocation.
    pub fn wants_allocation(&self) -> bool {
        self.state == VcState::Idle && self.q.front().is_some_and(|f| f.seq == 0)
    }

    /// Release the VC after the tail flit departs.
    pub fn release(&mut self) {
        self.state = VcState::Idle;
        self.pkt = NO_PACKET;
    }
}

/// Output-side state of one VC: wormhole ownership plus the credit count
/// for the downstream buffer.
#[derive(Debug, Clone, Copy)]
pub struct OutputVc {
    /// Packet currently owning this output VC (tail not yet passed).
    pub owner: PacketId,
    /// Downstream buffer slots available.
    pub credits: u32,
}

impl OutputVc {
    /// Fresh, unowned, fully credited VC.
    pub fn new(credits: u32) -> Self {
        Self { owner: NO_PACKET, credits }
    }

    /// True when no packet owns the VC.
    pub fn is_free(&self) -> bool {
        self.owner == NO_PACKET
    }
}

/// An output port: its VCs plus rotating arbitration pointers.
#[derive(Debug)]
pub struct OutputPort {
    /// Per-VC output state.
    pub vcs: Vec<OutputVc>,
    /// Rotating pointer for the switch-output arbiter (over input ports).
    pub sa_rr: usize,
    /// Rotating pointer for free-VC selection during VC allocation.
    pub vc_rr: usize,
}

impl OutputPort {
    /// New output port with `vcs` VCs of `credits` credits each.
    pub fn new(vcs: usize, credits: u32) -> Self {
        Self { vcs: vec![OutputVc::new(credits); vcs], sa_rr: 0, vc_rr: 0 }
    }

    /// Total credits across VCs allowed by `mask` that are currently
    /// unowned — the local congestion metric used for adaptive routing.
    pub fn free_credit_score(&self, mask: u64) -> u64 {
        let mut score = 0;
        for (v, vc) in self.vcs.iter().enumerate() {
            if mask & (1 << v) != 0 && vc.is_free() {
                score += vc.credits as u64;
            }
        }
        score
    }

    /// Pick a *claimable* VC within `mask` starting from the rotating
    /// pointer; returns the VC index. Claimable means unowned AND holding
    /// at least one credit: committing a packet to a credit-less VC would
    /// let it wait forever there, which breaks Duato's escape guarantee
    /// for adaptive routing (a blocked head must always be able to fall
    /// back to the escape VC — so heads stay unallocated, retrying each
    /// cycle, until a VC they can actually enter is available).
    pub fn pick_free_vc(&mut self, mask: u64) -> Option<usize> {
        let n = self.vcs.len();
        for i in 0..n {
            let v = (self.vc_rr + i) % n;
            if mask & (1 << v) != 0 && self.vcs[v].is_free() && self.vcs[v].credits > 0 {
                self.vc_rr = (v + 1) % n;
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(pkt: u32, seq: u16) -> Flit {
        Flit { pkt, seq, vc: 0 }
    }

    #[test]
    fn wants_allocation_only_on_head() {
        let mut vc = InputVc::new(4);
        assert!(!vc.wants_allocation(), "empty VC");
        vc.q.push_back(flit(1, 0));
        assert!(vc.wants_allocation());
        vc.state = VcState::Active;
        assert!(!vc.wants_allocation(), "active VC");
        vc.release();
        vc.q.clear();
        vc.q.push_back(flit(1, 3)); // body flit at front: mid-packet, no alloc
        assert!(!vc.wants_allocation());
    }

    #[test]
    fn release_resets() {
        let mut vc = InputVc::new(4);
        vc.state = VcState::Active;
        vc.pkt = 7;
        vc.release();
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.pkt, NO_PACKET);
    }

    #[test]
    fn pick_free_vc_respects_mask_and_rotates() {
        let mut port = OutputPort::new(4, 8);
        assert_eq!(port.pick_free_vc(0b0110), Some(1));
        // pointer advanced past 1; next pick in same mask returns 2
        assert_eq!(port.pick_free_vc(0b0110), Some(2));
        // wrap back around
        assert_eq!(port.pick_free_vc(0b0110), Some(1));
        // owned VCs skipped
        port.vcs[1].owner = 5;
        port.vcs[2].owner = 6;
        assert_eq!(port.pick_free_vc(0b0110), None);
        assert_eq!(port.pick_free_vc(0b1001), Some(3));
    }

    #[test]
    fn free_credit_score_counts_unowned_masked() {
        let mut port = OutputPort::new(2, 4);
        assert_eq!(port.free_credit_score(0b11), 8);
        port.vcs[0].credits = 1;
        assert_eq!(port.free_credit_score(0b11), 5);
        port.vcs[1].owner = 9;
        assert_eq!(port.free_credit_score(0b11), 1);
        assert_eq!(port.free_credit_score(0b10), 0);
    }
}
