//! Input-queued virtual-channel routers, stored as one network-wide
//! struct-of-arrays slab.
//!
//! Each cycle a router performs two logical stages:
//!
//! 1. **VC allocation** — every idle input VC with a head flit at its
//!    front computes its candidate output ports (via the routing
//!    algorithm) and tries to claim a free output VC permitted by the VC
//!    partition ([`crate::routing::VcBook`]). Adaptive routing picks the
//!    candidate port with the most free downstream credits, falling back
//!    to the escape VC on the DOR port.
//! 2. **Switch allocation** — a separable input-first allocator: each
//!    input port nominates one ready VC, then each output port grants one
//!    input. Winning flits depart; the router pipeline latency `t_r` is
//!    applied on the link (a flit granted at cycle `t` reaches the next
//!    router at `t + t_r + t_link`).
//!
//! The physical buffer depth is enforced end-to-end by credits: a flit
//! may only be granted toward an output VC holding credits, and credits
//! return upstream when flits depart the downstream buffer.
//!
//! # Memory layout
//!
//! [`RouterSlab`] owns every router's state in flat network-wide arrays
//! (input VC metadata, flit rings, output VC credits, rotating arbiter
//! pointers, occupancy counters, pipeline statistics) indexed by router
//! id, so per-cycle sweeps touch contiguous memory instead of chasing a
//! `Vec` of per-router heap objects, and O(1) per-router facts (is this
//! router idle? what is its occupancy?) live in dense arrays the engine
//! and the metrics collector can scan 64 routers per cache line. The
//! per-router view types [`RouterMut`] / [`RouterRef`] carry the router
//! id plus a slab borrow and expose the same method API a standalone
//! router struct would. Arbitration scratch buffers are shared by the
//! whole slab — one allocation for the network instead of three per
//! router.

mod arbiter;
mod buffer;

pub use arbiter::arbitrate;
pub use buffer::{InputVc, OutputVc, VcState};

use crate::config::Arbitration;
use crate::error::SimError;
use crate::flit::{Flit, PacketSlab, NO_PACKET};
use crate::network::fault::SurvivorTable;
use crate::routing::{PortSet, RouteLut, Routing, VcBook};
use crate::topology::{Topology, LOCAL_PORT};

/// A switch-allocation winner: one flit leaving the router this cycle.
#[derive(Debug, Clone, Copy)]
pub struct SaWin {
    /// Output port the flit leaves through (0 = ejection).
    pub out_port: u8,
    /// Output VC (== downstream input VC).
    pub out_vc: u8,
    /// Input port the flit came from (0 = injection).
    pub in_port: u8,
    /// Input VC the flit came from.
    pub in_vc: u8,
    /// The departing flit (with `vc` rewritten to `out_vc`).
    pub flit: Flit,
    /// True when this is the packet's tail flit.
    pub is_tail: bool,
}

/// Per-router pipeline event counters, for bottleneck analysis: when a
/// network saturates, the dominant counter tells you whether output VCs
/// (`va_blocked`) or downstream buffer credits (`sa_credit_starved`)
/// are the limiting resource.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Successful VC allocations (one per packet per hop).
    pub va_grants: u64,
    /// VC-allocation attempts that found no free output VC.
    pub va_blocked: u64,
    /// Switch-allocation grants (one per flit per hop).
    pub sa_grants: u64,
    /// Active VCs that could not bid for the switch for lack of credits
    /// (per VC per cycle).
    pub sa_credit_starved: u64,
    /// Input-stage switch nominations that lost output arbitration —
    /// two or more input ports contended for the same output port in
    /// the same cycle (per losing bid per cycle).
    pub sa_conflicts: u64,
}

/// Context the router needs each cycle (shared, immutable).
pub struct RouterCtx<'a> {
    /// Topology, for routing and neighbor lookups.
    pub topo: &'a dyn Topology,
    /// Routing algorithm (statically dispatched for the built-ins).
    pub routing: &'a Routing,
    /// Precomputed route tables for the hot allocation path.
    pub lut: &'a RouteLut,
    /// VC partition.
    pub book: &'a VcBook,
    /// Arbitration policy.
    pub arb: Arbitration,
    /// Degraded-mode rerouting table, installed after a permanent
    /// fault. When present it overrides the routing function's
    /// candidate ports with surviving shortest-path next hops.
    pub survivors: Option<&'a SurvivorTable>,
}

/// All routers of one network in struct-of-arrays form.
///
/// Every array is indexed by router id times a per-router stride; the
/// fabric is homogeneous, so `ports`/`vcs`/`vc_buf` are stored once.
#[derive(Debug)]
pub struct RouterSlab {
    n: usize,
    ports: usize,
    vcs: usize,
    vc_buf: usize,
    /// Input VCs, flattened `[router][port][vc]`.
    inputs: Vec<InputVc>,
    /// Flit ring storage, flattened `[router][port][vc][slot]`.
    flit_buf: Vec<Flit>,
    /// Output VC state, flattened `[router][port][vc]`.
    out_vcs: Vec<OutputVc>,
    /// Per-output-port rotating pointer for the switch-output arbiter,
    /// flattened `[router][port]`.
    sa_rr: Vec<u32>,
    /// Per-output-port rotating pointer for free-VC selection.
    vc_rr: Vec<u32>,
    /// Per-input-port rotating pointer for the switch-input arbiter.
    sa_in_ptr: Vec<u32>,
    /// Per-router rotating pointer for VC-allocation priority.
    va_ptr: Vec<u32>,
    /// Flits buffered per router (O(1) idle checks and occupancy
    /// sampling sweep a dense array).
    occupancy: Vec<u32>,
    /// Input VCs waiting for VC allocation, per router.
    va_wait: Vec<u32>,
    /// Input VCs in `Active` state, per router.
    active: Vec<u32>,
    /// Bitmask twin of `va_wait`: bit `port * vcs + vc` is set iff that
    /// input VC awaits allocation. Lets the allocator visit only
    /// waiting VCs instead of scanning all `ports * vcs` each cycle.
    wants_mask: Vec<u64>,
    /// Bitmask twin of `active`: bit `port * vcs + vc` is set iff that
    /// input VC is in `Active` state (switch-allocation bidders).
    active_mask: Vec<u64>,
    /// Pipeline event counters, per router.
    pipeline: Vec<PipelineStats>,
    /// Allocator scratch, shared by every router (only one router runs
    /// its pipeline at a time).
    scratch_eligible: Vec<(usize, u64)>,
    scratch_requests: Vec<(usize, usize, u64)>,
    scratch_cands: Vec<(usize, u64)>,
}

impl RouterSlab {
    /// Build `n` routers of `ports` ports, `vcs` VCs per port, and
    /// `vc_buf`-deep input buffers with matching initial output
    /// credits. The ejection port (output 0) is an infinite sink.
    pub fn new(n: usize, ports: usize, vcs: usize, vc_buf: usize) -> Self {
        assert!(
            (1..=u8::MAX as usize).contains(&vc_buf),
            "vc_buf must be in 1..=255 (ring cursors are u8)"
        );
        assert!(
            ports * vcs <= 64,
            "ports * vcs must be <= 64 (input-VC worklists are u64 bitmasks)"
        );
        let pv = ports * vcs;
        let inputs = (0..n * pv).map(|_| InputVc::new()).collect();
        let flit_buf = vec![Flit { pkt: NO_PACKET, seq: 0, vc: 0, tail: false }; n * pv * vc_buf];
        let out_vcs = (0..n * pv)
            .map(|f| {
                let credits = if (f % pv) / vcs == LOCAL_PORT { u32::MAX } else { vc_buf as u32 };
                OutputVc::new(credits)
            })
            .collect();
        Self {
            n,
            ports,
            vcs,
            vc_buf,
            inputs,
            flit_buf,
            out_vcs,
            sa_rr: vec![0; n * ports],
            vc_rr: vec![0; n * ports],
            sa_in_ptr: vec![0; n * ports],
            va_ptr: vec![0; n],
            occupancy: vec![0; n],
            va_wait: vec![0; n],
            active: vec![0; n],
            wants_mask: vec![0; n],
            active_mask: vec![0; n],
            pipeline: vec![PipelineStats::default(); n],
            scratch_eligible: Vec::new(),
            scratch_requests: Vec::new(),
            scratch_cands: Vec::new(),
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the slab holds no routers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Ports per router.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// True when router `r` buffers no flit anywhere.
    #[inline]
    pub fn is_idle(&self, r: usize) -> bool {
        self.occupancy[r] == 0
    }

    /// Per-router buffered-flit counts (dense, for contiguous metric
    /// sweeps).
    #[inline]
    pub fn occupancies(&self) -> &[u32] {
        &self.occupancy
    }

    /// Per-router pipeline counters (dense).
    #[inline]
    pub fn pipelines(&self) -> &[PipelineStats] {
        &self.pipeline
    }

    /// Immutable view of router `r`.
    #[inline]
    pub fn router(&self, r: usize) -> RouterRef<'_> {
        debug_assert!(r < self.n);
        RouterRef { slab: self, r }
    }

    /// Mutable view of router `r`.
    #[inline]
    pub fn router_mut(&mut self, r: usize) -> RouterMut<'_> {
        debug_assert!(r < self.n);
        RouterMut { slab: self, r }
    }

    // -- internal indexing ------------------------------------------------

    /// Network-flat input/output VC index of router `r`'s `(port, vc)`
    /// pair given as a router-flat `port * vcs + vc` index.
    #[inline]
    fn io(&self, r: usize, flat: usize) -> usize {
        r * self.ports * self.vcs + flat
    }

    /// Network-flat per-port index.
    #[inline]
    fn pp(&self, r: usize, port: usize) -> usize {
        r * self.ports + port
    }

    #[inline]
    fn q_front_flat(&self, r: usize, flat: usize) -> Option<&Flit> {
        let gi = self.io(r, flat);
        let ivc = &self.inputs[gi];
        if ivc.len == 0 {
            None
        } else {
            Some(&self.flit_buf[gi * self.vc_buf + ivc.head as usize])
        }
    }

    #[inline]
    fn q_len_at(&self, r: usize, port: usize, vc: usize) -> usize {
        self.inputs[self.io(r, port * self.vcs + vc)].qlen()
    }

    fn q_iter_at(&self, r: usize, port: usize, vc: usize) -> impl Iterator<Item = &Flit> + '_ {
        let gi = self.io(r, port * self.vcs + vc);
        let ivc = &self.inputs[gi];
        let (head, len) = (ivc.head as usize, ivc.len as usize);
        let base = gi * self.vc_buf;
        let cap = self.vc_buf;
        (0..len).map(move |i| {
            let mut slot = head + i;
            if slot >= cap {
                slot -= cap;
            }
            &self.flit_buf[base + slot]
        })
    }

    fn buffered_flits_of(&self, r: usize) -> usize {
        let base = r * self.ports * self.vcs;
        self.inputs[base..base + self.ports * self.vcs].iter().map(|vc| vc.qlen()).sum()
    }
}

/// Immutable per-router view over the slab (sanitizer, metrics, debug
/// dumps).
#[derive(Clone, Copy)]
pub struct RouterRef<'a> {
    slab: &'a RouterSlab,
    r: usize,
}

impl<'a> RouterRef<'a> {
    /// Router/node id.
    #[inline]
    pub fn id(&self) -> usize {
        self.r
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.slab.ports
    }

    /// Number of VCs per port.
    pub fn vcs(&self) -> usize {
        self.slab.vcs
    }

    /// True when no flit is buffered anywhere in this router.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.slab.occupancy[self.r] == 0
    }

    /// Flits currently buffered across all input VCs (O(1), maintained
    /// incrementally — same value as [`RouterRef::buffered_flits`]).
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.slab.occupancy[self.r] as usize
    }

    /// Input VC at (`port`, `vc`).
    #[inline]
    pub fn input(&self, port: usize, vc: usize) -> &'a InputVc {
        &self.slab.inputs[self.slab.io(self.r, port * self.slab.vcs + vc)]
    }

    /// Output VC state at (`port`, `vc`).
    #[inline]
    pub fn out_vc(&self, port: usize, vc: usize) -> &'a OutputVc {
        &self.slab.out_vcs[self.slab.io(self.r, port * self.slab.vcs + vc)]
    }

    /// Buffered flit count of input VC (`port`, `vc`).
    #[inline]
    pub fn q_len(&self, port: usize, vc: usize) -> usize {
        self.slab.q_len_at(self.r, port, vc)
    }

    /// Front flit of input VC (`port`, `vc`), if any.
    #[inline]
    pub fn q_front(&self, port: usize, vc: usize) -> Option<&'a Flit> {
        self.slab.q_front_flat(self.r, port * self.slab.vcs + vc)
    }

    /// Iterate the buffered flits of input VC (`port`, `vc`) front to
    /// back (sanitizer/debug use; not on the hot path).
    pub fn q_iter(&self, port: usize, vc: usize) -> impl Iterator<Item = &'a Flit> + 'a {
        self.slab.q_iter_at(self.r, port, vc)
    }

    /// Total flits buffered across all input VCs, re-derived from the
    /// queues (the sanitizer's independent recount).
    pub fn buffered_flits(&self) -> usize {
        self.slab.buffered_flits_of(self.r)
    }

    /// Pipeline counters of this router.
    pub fn pipeline(&self) -> &'a PipelineStats {
        &self.slab.pipeline[self.r]
    }
}

/// Mutable per-router view over the slab — the engine's handle for one
/// router's cycle work.
pub struct RouterMut<'a> {
    slab: &'a mut RouterSlab,
    r: usize,
}

impl RouterMut<'_> {
    /// Router/node id.
    #[inline]
    pub fn id(&self) -> usize {
        self.r
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.slab.ports
    }

    /// Number of VCs per port.
    pub fn vcs(&self) -> usize {
        self.slab.vcs
    }

    /// True when no flit is buffered anywhere in this router.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.slab.occupancy[self.r] == 0
    }

    /// Flits currently buffered across all input VCs (O(1)).
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.slab.occupancy[self.r] as usize
    }

    /// Input VC at (`port`, `vc`).
    #[inline]
    pub fn input(&self, port: usize, vc: usize) -> &InputVc {
        &self.slab.inputs[self.slab.io(self.r, port * self.slab.vcs + vc)]
    }

    /// Output VC state at (`port`, `vc`).
    #[inline]
    pub fn out_vc(&self, port: usize, vc: usize) -> &OutputVc {
        &self.slab.out_vcs[self.slab.io(self.r, port * self.slab.vcs + vc)]
    }

    /// Mutable output VC state at (`port`, `vc`).
    #[inline]
    pub fn out_vc_mut(&mut self, port: usize, vc: usize) -> &mut OutputVc {
        let gi = self.slab.io(self.r, port * self.slab.vcs + vc);
        &mut self.slab.out_vcs[gi]
    }

    /// Front flit of input VC (`port`, `vc`), if any.
    #[inline]
    pub fn q_front(&self, port: usize, vc: usize) -> Option<&Flit> {
        self.slab.q_front_flat(self.r, port * self.slab.vcs + vc)
    }

    /// Append a flit to input VC `flat`. Caller enforces the depth bound.
    #[inline]
    fn q_push_flat(&mut self, flat: usize, flit: Flit) {
        let gi = self.slab.io(self.r, flat);
        let vc_buf = self.slab.vc_buf;
        let ivc = &mut self.slab.inputs[gi];
        debug_assert!((ivc.len as usize) < vc_buf);
        let mut slot = ivc.head as usize + ivc.len as usize;
        if slot >= vc_buf {
            slot -= vc_buf;
        }
        ivc.len += 1;
        self.slab.flit_buf[gi * vc_buf + slot] = flit;
    }

    /// Pop the front flit of input VC `flat`, if any.
    #[inline]
    fn q_pop_flat(&mut self, flat: usize) -> Option<Flit> {
        let gi = self.slab.io(self.r, flat);
        let vc_buf = self.slab.vc_buf;
        let ivc = &mut self.slab.inputs[gi];
        if ivc.len == 0 {
            return None;
        }
        let slot = ivc.head as usize;
        ivc.head = if slot + 1 >= vc_buf { 0 } else { slot as u8 + 1 };
        ivc.len -= 1;
        Some(self.slab.flit_buf[gi * vc_buf + slot])
    }

    /// Deposit an arriving flit into its input buffer.
    ///
    /// # Errors
    /// [`SimError::BufferOverflow`] if the buffer is already full —
    /// the upstream router spent a credit it did not have.
    #[inline]
    pub fn deposit(&mut self, port: usize, flit: Flit) -> Result<(), SimError> {
        let flat = port * self.slab.vcs + flit.vc as usize;
        let vc = &self.slab.inputs[self.slab.io(self.r, flat)];
        if vc.qlen() >= self.slab.vc_buf {
            return Err(SimError::BufferOverflow {
                router: self.r,
                port,
                vc: flit.vc as usize,
                depth: self.slab.vc_buf,
            });
        }
        // wormhole ordering: an empty, unallocated VC only ever receives
        // a packet head, so this deposit creates an allocation request
        if vc.state == VcState::Idle && vc.is_empty() {
            debug_assert_eq!(flit.seq, 0, "body flit into empty idle VC");
            self.slab.va_wait[self.r] += 1;
            self.slab.wants_mask[self.r] |= 1 << flat;
        }
        self.q_push_flat(flat, flit);
        self.slab.occupancy[self.r] += 1;
        Ok(())
    }

    /// Return a credit to output (`port`, `vc`).
    ///
    /// # Errors
    /// [`SimError::CreditOverflow`] if the credit count would exceed the
    /// downstream buffer depth.
    #[inline]
    pub fn credit(&mut self, port: usize, vc: usize) -> Result<(), SimError> {
        let gi = self.slab.io(self.r, port * self.slab.vcs + vc);
        let out = &mut self.slab.out_vcs[gi];
        if port != LOCAL_PORT {
            if out.credits >= self.slab.vc_buf as u32 {
                return Err(SimError::CreditOverflow {
                    router: self.r,
                    port,
                    vc,
                    depth: self.slab.vc_buf,
                });
            }
            out.credits += 1;
        }
        Ok(())
    }

    /// Total credits across VCs of `port` allowed by `mask` that are
    /// currently unowned — the local congestion metric used for adaptive
    /// routing.
    fn free_credit_score(&self, port: usize, mask: u64) -> u64 {
        let base = self.slab.io(self.r, port * self.slab.vcs);
        let mut score = 0;
        for (v, vc) in self.slab.out_vcs[base..base + self.slab.vcs].iter().enumerate() {
            if mask & (1 << v) != 0 && vc.is_free() {
                score += vc.credits as u64;
            }
        }
        score
    }

    /// Non-destructive check: does `mask` contain a claimable VC
    /// (unowned with credits) on `port`?
    fn pick_probe(&self, port: usize, mask: u64) -> bool {
        let base = self.slab.io(self.r, port * self.slab.vcs);
        self.slab.out_vcs[base..base + self.slab.vcs]
            .iter()
            .enumerate()
            .any(|(v, vc)| mask & (1 << v) != 0 && vc.is_free() && vc.credits > 0)
    }

    /// Pick a *claimable* VC of `port` within `mask` starting from the
    /// rotating pointer; returns the VC index. Claimable means unowned
    /// AND holding at least one credit: committing a packet to a
    /// credit-less VC would let it wait forever there, which breaks
    /// Duato's escape guarantee for adaptive routing (a blocked head
    /// must always be able to fall back to the escape VC — so heads stay
    /// unallocated, retrying each cycle, until a VC they can actually
    /// enter is available).
    fn pick_free_vc(&mut self, port: usize, mask: u64) -> Option<usize> {
        let n = self.slab.vcs;
        let base = self.slab.io(self.r, port * n);
        let pp = self.slab.pp(self.r, port);
        let mut v = self.slab.vc_rr[pp] as usize;
        for _ in 0..n {
            let ovc = &self.slab.out_vcs[base + v];
            if mask & (1 << v) != 0 && ovc.is_free() && ovc.credits > 0 {
                self.slab.vc_rr[pp] = if v + 1 == n { 0 } else { (v + 1) as u32 };
                return Some(v);
            }
            v += 1;
            if v == n {
                v = 0;
            }
        }
        None
    }

    /// Stage 1: VC allocation (includes route computation).
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if allocation state disagrees with
    /// buffer contents.
    pub fn vc_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
    ) -> Result<(), SimError> {
        let vcs = self.slab.vcs;
        let space = self.slab.ports * vcs;
        let r = self.r;

        // no VC is waiting for allocation (all buffered flits belong to
        // already-allocated packets): just advance the rotating pointer
        if self.slab.va_wait[r] == 0 {
            let p = self.slab.va_ptr[r] as usize;
            self.slab.va_ptr[r] = if p + 1 >= space.max(1) { 0 } else { (p + 1) as u32 };
            return Ok(());
        }

        // gather eligible input VCs as (flat index, packet age); ages
        // only matter to the age-based policy, so round-robin skips the
        // packet-slab lookup entirely (a likely cache miss per VC)
        let age_based = matches!(ctx.arb, Arbitration::AgeBased);
        let base = self.slab.io(r, 0);
        let vc_buf = self.slab.vc_buf;
        let mut eligible = std::mem::take(&mut self.slab.scratch_eligible);
        eligible.clear();
        // visit only the waiting VCs (bit i of `wants_mask` ⇔
        // `inputs[base + i].wants_allocation()`), in the same ascending
        // order as a full scan
        let mut wm = self.slab.wants_mask[r];
        while wm != 0 {
            let flat = wm.trailing_zeros() as usize;
            wm &= wm - 1;
            let ivc = &self.slab.inputs[base + flat];
            debug_assert!(ivc.wants_allocation());
            let age = if age_based {
                let head = self.slab.flit_buf[(base + flat) * vc_buf + ivc.head as usize];
                packets.get(head.pkt).birth
            } else {
                0
            };
            eligible.push((flat, age));
        }
        if eligible.is_empty() {
            self.slab.scratch_eligible = eligible;
            let p = self.slab.va_ptr[r] as usize;
            self.slab.va_ptr[r] = if p + 1 >= space.max(1) { 0 } else { (p + 1) as u32 };
            return Ok(());
        }
        // order by priority, then grant greedily (later grants see
        // earlier claims, so no output VC is double-allocated); a lone
        // requester (the common case at low load) needs no ordering
        if eligible.len() > 1 {
            match ctx.arb {
                Arbitration::RoundRobin => {
                    let ptr = self.slab.va_ptr[r] as usize;
                    eligible.sort_by_key(|&(idx, _)| {
                        let d = idx + space - ptr;
                        if d >= space {
                            d - space
                        } else {
                            d
                        }
                    });
                }
                Arbitration::AgeBased => {
                    eligible.sort_by_key(|&(idx, age)| (age, idx));
                }
            }
        }
        for i in 0..eligible.len() {
            let (flat, _) = eligible[i];
            if let Err(e) = self.try_allocate_one(ctx, packets, flat) {
                self.slab.scratch_eligible = eligible;
                return Err(e);
            }
        }
        self.slab.scratch_eligible = eligible;
        let p = self.slab.va_ptr[r] as usize;
        self.slab.va_ptr[r] = if p + 1 >= space { 0 } else { (p + 1) as u32 };
        Ok(())
    }

    /// Attempt VC allocation for one input VC (given by its flat
    /// `port * vcs + vc` index); claims output state on success.
    fn try_allocate_one(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
        flat: usize,
    ) -> Result<(), SimError> {
        let id = self.r;
        let vcs = self.slab.vcs;
        let pid = self
            .slab
            .q_front_flat(id, flat)
            .ok_or(SimError::MissingFlit {
                router: id,
                port: flat / vcs,
                vc: flat % vcs,
                stage: "VC allocation",
            })?
            .pkt;
        let pkt = packets.get(pid);
        let (class, dst, route) = (pkt.class as usize, pkt.dst, pkt.route);
        let cands = match ctx.survivors {
            Some(s) if id != dst => {
                let sp = s.ports(id, dst);
                if sp.is_empty() {
                    // unreachable in the surviving topology: route as if
                    // healthy — every original path crosses a dead
                    // element, so the packet terminates by being
                    // swallowed there instead of wedging a buffer here
                    ctx.routing.candidates_lut(ctx.topo, ctx.lut, id, dst, &route)
                } else {
                    sp
                }
            }
            Some(_) => PortSet::new(), // at the destination: eject
            None => ctx.routing.candidates_lut(ctx.topo, ctx.lut, id, dst, &route),
        };

        let claim = if cands.is_empty() {
            // eject here: any VC of the packet's class partition
            let mask = ctx.book.class_mask(class);
            self.pick_free_vc(LOCAL_PORT, mask).map(|vc| (LOCAL_PORT, vc, route))
        } else if ctx.routing.is_adaptive() {
            // adaptive: best candidate port by free downstream credits
            let mut best: Option<(usize, u64, crate::routing::RouteState, u64)> = None;
            for port in cands.iter() {
                let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, id, port, dst, &route);
                let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
                let score = self.free_credit_score(port, mask);
                let has_free = self.pick_probe(port, mask);
                if has_free && best.as_ref().is_none_or(|&(_, s, _, _)| score > s) {
                    best = Some((port, score, ns, mask));
                }
            }
            match best {
                Some((port, _, ns, mask)) => self.pick_free_vc(port, mask).map(|vc| (port, vc, ns)),
                None => {
                    // escape: DOR port, escape VC
                    let port = cands.get(0);
                    let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, id, port, dst, &route);
                    let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, true);
                    self.pick_free_vc(port, mask).map(|vc| (port, vc, ns))
                }
            }
        } else {
            let port = cands.get(0);
            let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, id, port, dst, &route);
            let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
            self.pick_free_vc(port, mask).map(|vc| (port, vc, ns))
        };

        if let Some((port, vc, ns)) = claim {
            self.slab.pipeline[id].va_grants += 1;
            let gi = self.slab.io(id, port * vcs + vc);
            self.slab.out_vcs[gi].owner = pid;
            self.slab.va_wait[id] -= 1;
            self.slab.wants_mask[id] &= !(1 << flat);
            self.slab.active[id] += 1;
            self.slab.active_mask[id] |= 1 << flat;
            let ii = self.slab.io(id, flat);
            let ivc = &mut self.slab.inputs[ii];
            ivc.state = VcState::Active;
            ivc.out_port = port as u8;
            ivc.out_vc = vc as u8;
            ivc.pkt = pid;
            if port != LOCAL_PORT {
                packets.get_mut(pid).route = ns;
            }
        } else {
            self.slab.pipeline[id].va_blocked += 1;
        }
        Ok(())
    }

    /// Stage 2: separable input-first switch allocation. Winning flits
    /// are appended to `wins`; buffer/credit/ownership state is updated.
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if a granted input VC's buffer is
    /// empty or its request vanished between the two stages.
    pub fn switch_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &PacketSlab,
        wins: &mut Vec<SaWin>,
    ) -> Result<(), SimError> {
        let ports = self.slab.ports;
        let vcs = self.slab.vcs;
        let id = self.r;
        let base = self.slab.io(id, 0);

        // no active VC ⇒ nothing can bid, and the barren scan below
        // would touch no state
        if self.slab.active[id] == 0 {
            return Ok(());
        }

        // input stage: one nomination per input port; as in VC
        // allocation, packet ages are only fetched for the age-based
        // policy
        let age_based = matches!(ctx.arb, Arbitration::AgeBased);
        let mut requests = std::mem::take(&mut self.slab.scratch_requests); // (in_port, in_vc, age)
        let mut cands = std::mem::take(&mut self.slab.scratch_cands);
        requests.clear();
        // per-port slices of `active_mask` visit only Active VCs, in the
        // same ascending (port, vc) order as a full scan
        let amask = self.slab.active_mask[id];
        let vc_bits = (1u64 << vcs) - 1;
        for p in 0..ports {
            let pmask = (amask >> (p * vcs)) & vc_bits;
            if pmask == 0 {
                continue;
            }
            cands.clear();
            let mut m = pmask;
            while m != 0 {
                let v = m.trailing_zeros() as usize;
                m &= m - 1;
                let ivc = &self.slab.inputs[base + p * vcs + v];
                debug_assert_eq!(ivc.state, VcState::Active);
                if ivc.is_empty() {
                    continue; // allocated, but the next body flit is in flight
                }
                let op = ivc.out_port as usize;
                let has_credit = op == LOCAL_PORT
                    || self.slab.out_vcs[base + op * vcs + ivc.out_vc as usize].credits > 0;
                if has_credit {
                    let age = if age_based { packets.get(ivc.pkt).birth } else { 0 };
                    cands.push((v, age));
                } else {
                    self.slab.pipeline[id].sa_credit_starved += 1;
                }
            }
            if let Some(pos) =
                arbitrate(ctx.arb, &cands, self.slab.sa_in_ptr[self.slab.pp(id, p)] as usize, vcs)
            {
                let (v, age) = cands[pos];
                requests.push((p, v, age));
            }
        }
        if requests.is_empty() {
            // nothing bid (e.g. all active VCs credit-starved): the
            // output stage would grant nothing and touch no state
            self.slab.scratch_requests = requests;
            self.slab.scratch_cands = cands;
            return Ok(());
        }

        // output stage: one grant per output port; only ports someone
        // requested can grant, so iterate those (ascending, as a full
        // port scan would)
        let mut omask = 0u64;
        for &(p, v, _) in &requests {
            omask |= 1 << self.slab.inputs[base + p * vcs + v].out_port;
        }
        let mut granted = 0u64;
        while omask != 0 {
            let o = omask.trailing_zeros() as usize;
            omask &= omask - 1;
            cands.clear();
            cands.extend(
                requests
                    .iter()
                    .filter(|&&(p, v, _)| {
                        self.slab.inputs[base + p * vcs + v].out_port as usize == o
                    })
                    .map(|&(p, _, age)| (p, age)),
            );
            let Some(pos) =
                arbitrate(ctx.arb, &cands, self.slab.sa_rr[self.slab.pp(id, o)] as usize, ports)
            else {
                continue;
            };
            let in_port = cands[pos].0;
            let Some(&(_, in_vc, _)) = requests.iter().find(|&&(p, _, _)| p == in_port) else {
                self.slab.scratch_requests = requests;
                self.slab.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: id,
                    port: in_port,
                    vc: 0,
                    stage: "switch allocation (granted port never requested)",
                });
            };

            // commit
            let in_flat = in_port * vcs + in_vc;
            let out_vc = self.slab.inputs[base + in_flat].out_vc as usize;
            let Some(mut flit) = self.q_pop_flat(in_flat) else {
                self.slab.scratch_requests = requests;
                self.slab.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: id,
                    port: in_port,
                    vc: in_vc,
                    stage: "switch traversal",
                });
            };
            self.slab.occupancy[id] -= 1;
            flit.vc = out_vc as u8;
            let is_tail = flit.tail;
            debug_assert_eq!(
                is_tail,
                flit.seq as usize == packets.get(flit.pkt).size as usize - 1,
                "flit tail bit disagrees with packet size"
            );
            if o != LOCAL_PORT {
                self.slab.out_vcs[base + o * vcs + out_vc].credits -= 1;
            }
            if is_tail {
                self.slab.out_vcs[base + o * vcs + out_vc].owner = NO_PACKET;
                self.slab.active[id] -= 1;
                self.slab.active_mask[id] &= !(1 << in_flat);
                let ivc = &mut self.slab.inputs[base + in_flat];
                ivc.release();
                // the next packet's head may already be queued behind
                // the departed tail
                if !ivc.is_empty() {
                    self.slab.va_wait[id] += 1;
                    self.slab.wants_mask[id] |= 1 << in_flat;
                }
            }
            self.slab.pipeline[id].sa_grants += 1;
            granted += 1;
            let in_pp = self.slab.pp(id, in_port);
            self.slab.sa_in_ptr[in_pp] = if in_vc + 1 == vcs { 0 } else { (in_vc + 1) as u32 };
            let out_pp = self.slab.pp(id, o);
            self.slab.sa_rr[out_pp] = if in_port + 1 == ports { 0 } else { (in_port + 1) as u32 };
            wins.push(SaWin {
                out_port: o as u8,
                out_vc: out_vc as u8,
                in_port: in_port as u8,
                in_vc: in_vc as u8,
                flit,
                is_tail,
            });
        }
        // every nomination either won an output grant or collided with
        // one that did
        self.slab.pipeline[id].sa_conflicts += requests.len() as u64 - granted;
        self.slab.scratch_requests = requests;
        self.slab.scratch_cands = cands;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Packet, PacketId, PacketSlab};
    use crate::routing::{Dor, RouteState, VcBook};
    use crate::topology::{port_plus, KAryNCube};

    static DOR_ROUTING: Routing = Routing::Dor(Dor);

    fn mk_packet(src: usize, dst: usize, size: u16, birth: u64) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            size,
            class: 0,
            birth,
            inject: u64::MAX,
            route: RouteState::direct(),
            payload: 0,
        }
    }

    struct Fixture {
        topo: KAryNCube,
        lut: RouteLut,
        book: VcBook,
        packets: PacketSlab,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = KAryNCube::mesh(&[4, 4]);
            let lut = RouteLut::new(&topo, false);
            let book = VcBook::new(2, 1, &Dor, &topo).unwrap();
            Self { topo, lut, book, packets: PacketSlab::new() }
        }
    }

    /// Flit of `pkt` with the tail bit derived from the slab entry, as
    /// the network's injection path does.
    fn flit_of(packets: &PacketSlab, pkt: PacketId, seq: u16, vc: u8) -> Flit {
        let size = packets.get(pkt).size;
        Flit { pkt, seq, vc, tail: seq + 1 == size }
    }

    /// Build a context borrowing only `topo`, `lut` and `book`, so
    /// `packets` stays independently borrowable.
    fn ctx_of<'a>(
        topo: &'a KAryNCube,
        lut: &'a RouteLut,
        book: &'a VcBook,
        arb: Arbitration,
    ) -> RouterCtx<'a> {
        RouterCtx { topo, routing: &DOR_ROUTING, lut, book, arb, survivors: None }
    }

    #[test]
    fn single_flit_traverses_va_and_sa() {
        let mut fx = Fixture::new();
        // router 0, packet heading to node 3 (straight +x)
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut slab = RouterSlab::new(1, 5, 2, 4);
        let mut r = slab.router_mut(0);
        r.deposit(0, flit_of(&fx.packets, pid, 0, 0)).unwrap();

        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        let ivc = r.input(0, 0);
        assert_eq!(ivc.state, VcState::Active);
        assert_eq!(ivc.out_port as usize, port_plus(0));

        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        let w = wins[0];
        assert_eq!(w.out_port as usize, port_plus(0));
        assert!(w.is_tail);
        // tail departure releases everything
        assert_eq!(r.input(0, 0).state, VcState::Idle);
        assert!(r.out_vc(port_plus(0), w.out_vc as usize).is_free());
        // one credit consumed downstream
        assert_eq!(r.out_vc(port_plus(0), w.out_vc as usize).credits, 3);
    }

    #[test]
    fn ejection_at_destination() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(3, 0, 1, 0));
        let mut slab = RouterSlab::new(1, 5, 2, 4);
        let mut r = slab.router_mut(0);
        r.deposit(port_plus(0), flit_of(&fx.packets, pid, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.input(port_plus(0), 0).out_port as usize, LOCAL_PORT);
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].out_port as usize, LOCAL_PORT);
    }

    #[test]
    fn no_credit_blocks_switch() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut slab = RouterSlab::new(1, 5, 2, 1);
        let mut r = slab.router_mut(0);
        r.deposit(0, flit_of(&fx.packets, pid, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // exhaust the credit of the allocated output VC
        let op = r.input(0, 0).out_port as usize;
        let ov = r.input(0, 0).out_vc as usize;
        r.out_vc_mut(op, ov).credits = 0;
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert!(wins.is_empty(), "no credit, no traversal");
        // credit returns, traversal proceeds
        r.credit(op, ov).unwrap();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
    }

    #[test]
    fn output_port_grants_one_per_cycle() {
        let mut fx = Fixture::new();
        // two packets from different input ports both heading +x
        let a = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut slab = RouterSlab::new(1, 5, 2, 4);
        let mut r = slab.router_mut(0);
        r.deposit(0, flit_of(&fx.packets, a, 0, 0)).unwrap();
        r.deposit(port_plus(1), flit_of(&fx.packets, b, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both got different output VCs of the same port (2 VCs available)
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1, "one grant per output port per cycle");
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 2, "second flit follows next cycle");
    }

    #[test]
    fn wormhole_blocks_second_packet_on_same_vc() {
        let mut fx = Fixture::new();
        // a 2-flit packet holds its output VC until the tail departs
        let a = fx.packets.insert(mk_packet(0, 3, 2, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut slab = RouterSlab::new(1, 5, 2, 4);
        let mut r = slab.router_mut(0);
        r.deposit(0, flit_of(&fx.packets, a, 0, 0)).unwrap();
        r.deposit(0, flit_of(&fx.packets, b, 0, 1)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both allocate (2 output VCs exist); they share the output port
        let mut owners: Vec<_> = (0..r.vcs()).map(|v| r.out_vc(port_plus(0), v).owner).collect();
        owners.sort_unstable();
        assert_eq!(owners, vec![a.min(b), a.max(b)]);
        // deposit a's body flit; drain everything
        r.deposit(0, flit_of(&fx.packets, a, 1, 0)).unwrap();
        let mut wins = Vec::new();
        for _ in 0..4 {
            r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        }
        assert_eq!(wins.len(), 3);
        assert!((0..r.vcs()).all(|v| r.out_vc(port_plus(0), v).is_free()));
    }

    #[test]
    fn age_based_va_prefers_oldest() {
        let mut fx = Fixture::new();
        // both want the only VC (mask 0b11 but we fill vc 1 with an owner)
        let young = fx.packets.insert(mk_packet(0, 3, 1, 100));
        let old = fx.packets.insert(mk_packet(0, 3, 1, 5));
        let mut slab = RouterSlab::new(1, 5, 2, 4);
        let mut r = slab.router_mut(0);
        // leave just one free output VC on port +x
        r.out_vc_mut(port_plus(0), 1).owner = 999;
        r.deposit(0, flit_of(&fx.packets, young, 0, 0)).unwrap();
        r.deposit(port_plus(1), flit_of(&fx.packets, old, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::AgeBased);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.out_vc(port_plus(0), 0).owner, old, "oldest packet wins VA");
        assert_eq!(r.input(0, 0).state, VcState::Idle, "young packet must retry");
    }

    #[test]
    fn slab_views_address_distinct_routers() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut slab = RouterSlab::new(3, 5, 2, 4);
        slab.router_mut(1).deposit(0, flit_of(&fx.packets, pid, 0, 0)).unwrap();
        assert!(slab.is_idle(0) && !slab.is_idle(1) && slab.is_idle(2));
        assert_eq!(slab.occupancies(), &[0, 1, 0]);
        assert_eq!(slab.router(1).buffered_flits(), 1);
        assert_eq!(slab.router(0).buffered_flits(), 0);
        // output credits are per router: spending one leaves neighbors alone
        slab.router_mut(2).out_vc_mut(port_plus(0), 0).credits = 1;
        assert_eq!(slab.router(0).out_vc(port_plus(0), 0).credits, 4);
        assert_eq!(slab.router(1).out_vc(port_plus(0), 0).credits, 4);
    }
}
