//! Input-queued virtual-channel router.
//!
//! Each cycle a router performs two logical stages:
//!
//! 1. **VC allocation** — every idle input VC with a head flit at its
//!    front computes its candidate output ports (via the routing
//!    algorithm) and tries to claim a free output VC permitted by the VC
//!    partition ([`crate::routing::VcBook`]). Adaptive routing picks the
//!    candidate port with the most free downstream credits, falling back
//!    to the escape VC on the DOR port.
//! 2. **Switch allocation** — a separable input-first allocator: each
//!    input port nominates one ready VC, then each output port grants one
//!    input. Winning flits depart; the router pipeline latency `t_r` is
//!    applied on the link (a flit granted at cycle `t` reaches the next
//!    router at `t + t_r + t_link`).
//!
//! The physical buffer depth is enforced end-to-end by credits: a flit
//! may only be granted toward an output VC holding credits, and credits
//! return upstream when flits depart the downstream buffer.

mod arbiter;
mod buffer;

pub use arbiter::arbitrate;
pub use buffer::{InputVc, OutputPort, OutputVc, VcState};

use crate::config::Arbitration;
use crate::error::SimError;
use crate::flit::{Flit, PacketSlab, NO_PACKET};
use crate::routing::{RoutingAlgorithm, VcBook};
use crate::topology::{Topology, LOCAL_PORT};

/// A switch-allocation winner: one flit leaving the router this cycle.
#[derive(Debug, Clone, Copy)]
pub struct SaWin {
    /// Output port the flit leaves through (0 = ejection).
    pub out_port: u8,
    /// Output VC (== downstream input VC).
    pub out_vc: u8,
    /// Input port the flit came from (0 = injection).
    pub in_port: u8,
    /// Input VC the flit came from.
    pub in_vc: u8,
    /// The departing flit (with `vc` rewritten to `out_vc`).
    pub flit: Flit,
    /// True when this is the packet's tail flit.
    pub is_tail: bool,
}

/// Per-router pipeline event counters, for bottleneck analysis: when a
/// network saturates, the dominant counter tells you whether output VCs
/// (`va_blocked`) or downstream buffer credits (`sa_credit_starved`)
/// are the limiting resource.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Successful VC allocations (one per packet per hop).
    pub va_grants: u64,
    /// VC-allocation attempts that found no free output VC.
    pub va_blocked: u64,
    /// Switch-allocation grants (one per flit per hop).
    pub sa_grants: u64,
    /// Active VCs that could not bid for the switch for lack of credits
    /// (per VC per cycle).
    pub sa_credit_starved: u64,
}

/// Context the router needs each cycle (shared, immutable).
pub struct RouterCtx<'a> {
    /// Topology, for routing and neighbor lookups.
    pub topo: &'a dyn Topology,
    /// Routing algorithm.
    pub routing: &'a dyn RoutingAlgorithm,
    /// VC partition.
    pub book: &'a VcBook,
    /// Arbitration policy.
    pub arb: Arbitration,
}

/// One router: per-port input VCs and output state.
#[derive(Debug)]
pub struct Router {
    /// Node/router id.
    pub id: usize,
    /// Input VCs, indexed `[port][vc]`.
    pub inputs: Vec<Vec<InputVc>>,
    /// Output ports, indexed `[port]`.
    pub outputs: Vec<OutputPort>,
    va_ptr: usize,
    sa_in_ptr: Vec<usize>,
    vc_buf: usize,
    /// Flits currently buffered across all input VCs; lets the engine
    /// skip allocation entirely on idle routers (the common case at low
    /// load) and keeps the hot path allocation-free.
    occupancy: usize,
    /// Pipeline event counters for bottleneck analysis.
    pub pipeline: PipelineStats,
    scratch_eligible: Vec<(usize, u64)>,
    scratch_requests: Vec<(usize, usize, u64)>,
    scratch_cands: Vec<(usize, u64)>,
}

impl Router {
    /// Build a router with `ports` ports of `vcs` VCs, `vc_buf`-deep
    /// input buffers, and matching initial output credits. The ejection
    /// port (output 0) is an infinite sink.
    pub fn new(id: usize, ports: usize, vcs: usize, vc_buf: usize) -> Self {
        let inputs = (0..ports).map(|_| (0..vcs).map(|_| InputVc::new(vc_buf)).collect()).collect();
        let outputs = (0..ports)
            .map(|p| {
                let credits = if p == LOCAL_PORT { u32::MAX } else { vc_buf as u32 };
                OutputPort::new(vcs, credits)
            })
            .collect();
        Self {
            id,
            inputs,
            outputs,
            va_ptr: 0,
            sa_in_ptr: vec![0; ports],
            vc_buf,
            occupancy: 0,
            pipeline: PipelineStats::default(),
            scratch_eligible: Vec::new(),
            scratch_requests: Vec::new(),
            scratch_cands: Vec::new(),
        }
    }

    /// True when no flit is buffered anywhere in this router.
    pub fn is_idle(&self) -> bool {
        self.occupancy == 0
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.inputs.len()
    }

    /// Number of VCs per port.
    pub fn vcs(&self) -> usize {
        self.inputs[0].len()
    }

    /// Deposit an arriving flit into its input buffer.
    ///
    /// # Errors
    /// [`SimError::BufferOverflow`] if the buffer is already full —
    /// the upstream router spent a credit it did not have.
    pub fn deposit(&mut self, port: usize, flit: Flit) -> Result<(), SimError> {
        let vc = &mut self.inputs[port][flit.vc as usize];
        if vc.q.len() >= self.vc_buf {
            return Err(SimError::BufferOverflow {
                router: self.id,
                port,
                vc: flit.vc as usize,
                depth: self.vc_buf,
            });
        }
        vc.q.push_back(flit);
        self.occupancy += 1;
        Ok(())
    }

    /// Return a credit to output (`port`, `vc`).
    ///
    /// # Errors
    /// [`SimError::CreditOverflow`] if the credit count would exceed the
    /// downstream buffer depth.
    pub fn credit(&mut self, port: usize, vc: usize) -> Result<(), SimError> {
        let out = &mut self.outputs[port].vcs[vc];
        if port != LOCAL_PORT {
            if out.credits >= self.vc_buf as u32 {
                return Err(SimError::CreditOverflow {
                    router: self.id,
                    port,
                    vc,
                    depth: self.vc_buf,
                });
            }
            out.credits += 1;
        }
        Ok(())
    }

    /// Total flits buffered across all input VCs.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().flatten().map(|vc| vc.q.len()).sum()
    }

    /// Stage 1: VC allocation (includes route computation).
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if allocation state disagrees with
    /// buffer contents.
    pub fn vc_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
    ) -> Result<(), SimError> {
        let ports = self.ports();
        let vcs = self.vcs();
        let space = ports * vcs;

        // gather eligible input VCs as (flat index, packet age)
        let mut eligible = std::mem::take(&mut self.scratch_eligible);
        eligible.clear();
        for p in 0..ports {
            for v in 0..vcs {
                let ivc = &self.inputs[p][v];
                if ivc.wants_allocation() {
                    let Some(head) = ivc.q.front() else {
                        self.scratch_eligible = eligible;
                        return Err(SimError::MissingFlit {
                            router: self.id,
                            port: p,
                            vc: v,
                            stage: "VC allocation",
                        });
                    };
                    eligible.push((p * vcs + v, packets.get(head.pkt).birth));
                }
            }
        }
        if eligible.is_empty() {
            self.scratch_eligible = eligible;
            self.va_ptr = (self.va_ptr + 1) % space.max(1);
            return Ok(());
        }
        // order by priority, then grant greedily (later grants see
        // earlier claims, so no output VC is double-allocated)
        match ctx.arb {
            Arbitration::RoundRobin => {
                let ptr = self.va_ptr;
                eligible.sort_by_key(|&(idx, _)| (idx + space - ptr) % space);
            }
            Arbitration::AgeBased => {
                eligible.sort_by_key(|&(idx, age)| (age, idx));
            }
        }
        for i in 0..eligible.len() {
            let (flat, _) = eligible[i];
            let (p, v) = (flat / vcs, flat % vcs);
            if let Err(e) = self.try_allocate_one(ctx, packets, p, v) {
                self.scratch_eligible = eligible;
                return Err(e);
            }
        }
        self.scratch_eligible = eligible;
        self.va_ptr = (self.va_ptr + 1) % space;
        Ok(())
    }

    /// Attempt VC allocation for one input VC; claims output state on
    /// success.
    fn try_allocate_one(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
        p: usize,
        v: usize,
    ) -> Result<(), SimError> {
        let pid = self.inputs[p][v]
            .q
            .front()
            .ok_or(SimError::MissingFlit {
                router: self.id,
                port: p,
                vc: v,
                stage: "VC allocation",
            })?
            .pkt;
        let pkt = packets.get(pid);
        let (class, dst, route) = (pkt.class as usize, pkt.dst, pkt.route);
        let cands = ctx.routing.candidates(ctx.topo, self.id, dst, &route);

        let claim = if cands.is_empty() {
            // eject here: any VC of the packet's class partition
            let mask = ctx.book.class_mask(class);
            self.outputs[LOCAL_PORT].pick_free_vc(mask).map(|vc| (LOCAL_PORT, vc, route))
        } else if ctx.routing.is_adaptive() {
            // adaptive: best candidate port by free downstream credits
            let mut best: Option<(usize, u64, crate::routing::RouteState, u64)> = None;
            for port in cands.iter() {
                let ns = ctx.routing.advance(ctx.topo, self.id, port, dst, &route);
                let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
                let score = self.outputs[port].free_credit_score(mask);
                let has_free = self.outputs[port].pick_probe(mask);
                if has_free && best.as_ref().is_none_or(|&(_, s, _, _)| score > s) {
                    best = Some((port, score, ns, mask));
                }
            }
            match best {
                Some((port, _, ns, mask)) => {
                    self.outputs[port].pick_free_vc(mask).map(|vc| (port, vc, ns))
                }
                None => {
                    // escape: DOR port, escape VC
                    let port = cands.get(0);
                    let ns = ctx.routing.advance(ctx.topo, self.id, port, dst, &route);
                    let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, true);
                    self.outputs[port].pick_free_vc(mask).map(|vc| (port, vc, ns))
                }
            }
        } else {
            let port = cands.get(0);
            let ns = ctx.routing.advance(ctx.topo, self.id, port, dst, &route);
            let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
            self.outputs[port].pick_free_vc(mask).map(|vc| (port, vc, ns))
        };

        if let Some((port, vc, ns)) = claim {
            self.pipeline.va_grants += 1;
            self.outputs[port].vcs[vc].owner = pid;
            let ivc = &mut self.inputs[p][v];
            ivc.state = VcState::Active;
            ivc.out_port = port as u8;
            ivc.out_vc = vc as u8;
            ivc.pkt = pid;
            if port != LOCAL_PORT {
                packets.get_mut(pid).route = ns;
            }
        } else {
            self.pipeline.va_blocked += 1;
        }
        Ok(())
    }

    /// Stage 2: separable input-first switch allocation. Winning flits
    /// are appended to `wins`; buffer/credit/ownership state is updated.
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if a granted input VC's buffer is
    /// empty or its request vanished between the two stages.
    pub fn switch_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &PacketSlab,
        wins: &mut Vec<SaWin>,
    ) -> Result<(), SimError> {
        let ports = self.ports();
        let vcs = self.vcs();

        // input stage: one nomination per input port
        let mut requests = std::mem::take(&mut self.scratch_requests); // (in_port, in_vc, age)
        let mut cands = std::mem::take(&mut self.scratch_cands);
        requests.clear();
        for p in 0..ports {
            cands.clear();
            for v in 0..vcs {
                let ivc = &self.inputs[p][v];
                if ivc.state != VcState::Active || ivc.q.is_empty() {
                    continue;
                }
                let op = ivc.out_port as usize;
                let has_credit =
                    op == LOCAL_PORT || self.outputs[op].vcs[ivc.out_vc as usize].credits > 0;
                if has_credit {
                    cands.push((v, packets.get(ivc.pkt).birth));
                } else {
                    self.pipeline.sa_credit_starved += 1;
                }
            }
            if let Some(pos) = arbitrate(ctx.arb, &cands, self.sa_in_ptr[p], vcs) {
                let (v, age) = cands[pos];
                requests.push((p, v, age));
            }
        }

        // output stage: one grant per output port
        for o in 0..ports {
            cands.clear();
            cands.extend(
                requests
                    .iter()
                    .filter(|&&(p, v, _)| self.inputs[p][v].out_port as usize == o)
                    .map(|&(p, _, age)| (p, age)),
            );
            let Some(pos) = arbitrate(ctx.arb, &cands, self.outputs[o].sa_rr, ports) else {
                continue;
            };
            let in_port = cands[pos].0;
            let Some(&(_, in_vc, _)) = requests.iter().find(|&&(p, _, _)| p == in_port) else {
                self.scratch_requests = requests;
                self.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: self.id,
                    port: in_port,
                    vc: 0,
                    stage: "switch allocation (granted port never requested)",
                });
            };

            // commit
            let out_vc = self.inputs[in_port][in_vc].out_vc as usize;
            let Some(mut flit) = self.inputs[in_port][in_vc].q.pop_front() else {
                self.scratch_requests = requests;
                self.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: self.id,
                    port: in_port,
                    vc: in_vc,
                    stage: "switch traversal",
                });
            };
            self.occupancy -= 1;
            flit.vc = out_vc as u8;
            let pkt = packets.get(flit.pkt);
            let is_tail = flit.seq as usize == pkt.size as usize - 1;
            if o != LOCAL_PORT {
                self.outputs[o].vcs[out_vc].credits -= 1;
            }
            if is_tail {
                self.outputs[o].vcs[out_vc].owner = NO_PACKET;
                self.inputs[in_port][in_vc].release();
            }
            self.pipeline.sa_grants += 1;
            self.sa_in_ptr[in_port] = (in_vc + 1) % vcs;
            self.outputs[o].sa_rr = (in_port + 1) % ports;
            wins.push(SaWin {
                out_port: o as u8,
                out_vc: out_vc as u8,
                in_port: in_port as u8,
                in_vc: in_vc as u8,
                flit,
                is_tail,
            });
        }
        self.scratch_requests = requests;
        self.scratch_cands = cands;
        Ok(())
    }
}

impl OutputPort {
    /// Non-destructive check: does `mask` contain a claimable VC
    /// (unowned with credits)?
    fn pick_probe(&self, mask: u64) -> bool {
        self.vcs
            .iter()
            .enumerate()
            .any(|(v, vc)| mask & (1 << v) != 0 && vc.is_free() && vc.credits > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::routing::{Dor, RouteState, VcBook};
    use crate::topology::{port_plus, KAryNCube};

    fn mk_packet(src: usize, dst: usize, size: u16, birth: u64) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            size,
            class: 0,
            birth,
            inject: u64::MAX,
            route: RouteState::direct(),
            payload: 0,
        }
    }

    struct Fixture {
        topo: KAryNCube,
        book: VcBook,
        packets: PacketSlab,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = KAryNCube::mesh(&[4, 4]);
            let book = VcBook::new(2, 1, &Dor, &topo).unwrap();
            Self { topo, book, packets: PacketSlab::new() }
        }
    }

    /// Build a context borrowing only `topo` and `book`, so `packets`
    /// stays independently borrowable.
    fn ctx_of<'a>(topo: &'a KAryNCube, book: &'a VcBook, arb: Arbitration) -> RouterCtx<'a> {
        RouterCtx { topo, routing: &Dor, book, arb }
    }

    #[test]
    fn single_flit_traverses_va_and_sa() {
        let mut fx = Fixture::new();
        // router 0, packet heading to node 3 (straight +x)
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, Flit { pkt: pid, seq: 0, vc: 0 }).unwrap();

        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        let ivc = &r.inputs[0][0];
        assert_eq!(ivc.state, VcState::Active);
        assert_eq!(ivc.out_port as usize, port_plus(0));

        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        let w = wins[0];
        assert_eq!(w.out_port as usize, port_plus(0));
        assert!(w.is_tail);
        // tail departure releases everything
        assert_eq!(r.inputs[0][0].state, VcState::Idle);
        assert!(r.outputs[port_plus(0)].vcs[w.out_vc as usize].is_free());
        // one credit consumed downstream
        assert_eq!(r.outputs[port_plus(0)].vcs[w.out_vc as usize].credits, 3);
    }

    #[test]
    fn ejection_at_destination() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(3, 0, 1, 0));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(port_plus(0), Flit { pkt: pid, seq: 0, vc: 0 }).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.inputs[port_plus(0)][0].out_port as usize, LOCAL_PORT);
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].out_port as usize, LOCAL_PORT);
    }

    #[test]
    fn no_credit_blocks_switch() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut r = Router::new(0, 5, 2, 1);
        r.deposit(0, Flit { pkt: pid, seq: 0, vc: 0 }).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // exhaust the credit of the allocated output VC
        let op = r.inputs[0][0].out_port as usize;
        let ov = r.inputs[0][0].out_vc as usize;
        r.outputs[op].vcs[ov].credits = 0;
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert!(wins.is_empty(), "no credit, no traversal");
        // credit returns, traversal proceeds
        r.credit(op, ov).unwrap();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
    }

    #[test]
    fn output_port_grants_one_per_cycle() {
        let mut fx = Fixture::new();
        // two packets from different input ports both heading +x
        let a = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, Flit { pkt: a, seq: 0, vc: 0 }).unwrap();
        r.deposit(port_plus(1), Flit { pkt: b, seq: 0, vc: 0 }).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both got different output VCs of the same port (2 VCs available)
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1, "one grant per output port per cycle");
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 2, "second flit follows next cycle");
    }

    #[test]
    fn wormhole_blocks_second_packet_on_same_vc() {
        let mut fx = Fixture::new();
        // a 2-flit packet holds its output VC until the tail departs
        let a = fx.packets.insert(mk_packet(0, 3, 2, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, Flit { pkt: a, seq: 0, vc: 0 }).unwrap();
        r.deposit(0, Flit { pkt: b, seq: 0, vc: 1 }).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both allocate (2 output VCs exist); they share the output port
        let mut owners: Vec<_> = r.outputs[port_plus(0)].vcs.iter().map(|vc| vc.owner).collect();
        owners.sort_unstable();
        assert_eq!(owners, vec![a.min(b), a.max(b)]);
        // deposit a's body flit; drain everything
        r.deposit(0, Flit { pkt: a, seq: 1, vc: 0 }).unwrap();
        let mut wins = Vec::new();
        for _ in 0..4 {
            r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        }
        assert_eq!(wins.len(), 3);
        assert!(r.outputs[port_plus(0)].vcs.iter().all(|vc| vc.is_free()));
    }

    #[test]
    fn age_based_va_prefers_oldest() {
        let mut fx = Fixture::new();
        // both want the only VC (mask 0b11 but we fill vc 1 with an owner)
        let young = fx.packets.insert(mk_packet(0, 3, 1, 100));
        let old = fx.packets.insert(mk_packet(0, 3, 1, 5));
        let mut r = Router::new(0, 5, 2, 4);
        // leave just one free output VC on port +x
        r.outputs[port_plus(0)].vcs[1].owner = 999;
        r.deposit(0, Flit { pkt: young, seq: 0, vc: 0 }).unwrap();
        r.deposit(port_plus(1), Flit { pkt: old, seq: 0, vc: 0 }).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.book, Arbitration::AgeBased);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.outputs[port_plus(0)].vcs[0].owner, old, "oldest packet wins VA");
        assert_eq!(r.inputs[0][0].state, VcState::Idle, "young packet must retry");
    }
}
