//! Input-queued virtual-channel router.
//!
//! Each cycle a router performs two logical stages:
//!
//! 1. **VC allocation** — every idle input VC with a head flit at its
//!    front computes its candidate output ports (via the routing
//!    algorithm) and tries to claim a free output VC permitted by the VC
//!    partition ([`crate::routing::VcBook`]). Adaptive routing picks the
//!    candidate port with the most free downstream credits, falling back
//!    to the escape VC on the DOR port.
//! 2. **Switch allocation** — a separable input-first allocator: each
//!    input port nominates one ready VC, then each output port grants one
//!    input. Winning flits depart; the router pipeline latency `t_r` is
//!    applied on the link (a flit granted at cycle `t` reaches the next
//!    router at `t + t_r + t_link`).
//!
//! The physical buffer depth is enforced end-to-end by credits: a flit
//! may only be granted toward an output VC holding credits, and credits
//! return upstream when flits depart the downstream buffer.

mod arbiter;
mod buffer;

pub use arbiter::arbitrate;
pub use buffer::{InputVc, OutputVc, VcState};

use crate::config::Arbitration;
use crate::error::SimError;
use crate::flit::{Flit, PacketSlab, NO_PACKET};
use crate::network::fault::SurvivorTable;
use crate::routing::{PortSet, RouteLut, RoutingAlgorithm, VcBook};
use crate::topology::{Topology, LOCAL_PORT};

/// A switch-allocation winner: one flit leaving the router this cycle.
#[derive(Debug, Clone, Copy)]
pub struct SaWin {
    /// Output port the flit leaves through (0 = ejection).
    pub out_port: u8,
    /// Output VC (== downstream input VC).
    pub out_vc: u8,
    /// Input port the flit came from (0 = injection).
    pub in_port: u8,
    /// Input VC the flit came from.
    pub in_vc: u8,
    /// The departing flit (with `vc` rewritten to `out_vc`).
    pub flit: Flit,
    /// True when this is the packet's tail flit.
    pub is_tail: bool,
}

/// Per-router pipeline event counters, for bottleneck analysis: when a
/// network saturates, the dominant counter tells you whether output VCs
/// (`va_blocked`) or downstream buffer credits (`sa_credit_starved`)
/// are the limiting resource.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Successful VC allocations (one per packet per hop).
    pub va_grants: u64,
    /// VC-allocation attempts that found no free output VC.
    pub va_blocked: u64,
    /// Switch-allocation grants (one per flit per hop).
    pub sa_grants: u64,
    /// Active VCs that could not bid for the switch for lack of credits
    /// (per VC per cycle).
    pub sa_credit_starved: u64,
    /// Input-stage switch nominations that lost output arbitration —
    /// two or more input ports contended for the same output port in
    /// the same cycle (per losing bid per cycle).
    pub sa_conflicts: u64,
}

/// Context the router needs each cycle (shared, immutable).
pub struct RouterCtx<'a> {
    /// Topology, for routing and neighbor lookups.
    pub topo: &'a dyn Topology,
    /// Routing algorithm.
    pub routing: &'a dyn RoutingAlgorithm,
    /// Precomputed route tables for the hot allocation path.
    pub lut: &'a RouteLut,
    /// VC partition.
    pub book: &'a VcBook,
    /// Arbitration policy.
    pub arb: Arbitration,
    /// Degraded-mode rerouting table, installed after a permanent
    /// fault. When present it overrides the routing function's
    /// candidate ports with surviving shortest-path next hops.
    pub survivors: Option<&'a SurvivorTable>,
}

/// One router: input VC and output VC state in flat, router-level
/// arrays (`port * vcs + vc` indexing) so the per-cycle scans walk
/// contiguous memory instead of chasing per-port heap allocations.
#[derive(Debug)]
pub struct Router {
    /// Node/router id.
    pub id: usize,
    ports: usize,
    vcs: usize,
    /// Input VCs, flattened `[port * vcs + vc]`.
    pub inputs: Vec<InputVc>,
    /// Flit storage for every input VC: `vc_buf` ring slots per VC,
    /// flattened `[(port * vcs + vc) * vc_buf + slot]`. One contiguous
    /// allocation per router — at default configs the whole store fits
    /// in a few cache lines, so the per-cycle allocator scans never
    /// chase per-VC heap queues.
    flit_buf: Vec<Flit>,
    /// Output VC state, flattened `[port * vcs + vc]`.
    pub out_vcs: Vec<OutputVc>,
    /// Per-output-port rotating pointer for the switch-output arbiter.
    sa_rr: Vec<usize>,
    /// Per-output-port rotating pointer for free-VC selection.
    vc_rr: Vec<usize>,
    va_ptr: usize,
    sa_in_ptr: Vec<usize>,
    vc_buf: usize,
    /// Flits currently buffered across all input VCs; lets the engine
    /// skip allocation entirely on idle routers (the common case at low
    /// load) and keeps the hot path allocation-free.
    occupancy: usize,
    /// Input VCs currently waiting for VC allocation, maintained
    /// incrementally so `vc_allocate` can skip its scan when zero.
    va_wait: usize,
    /// Input VCs in `Active` state, maintained incrementally so
    /// `switch_allocate` can skip its scan when zero.
    active: usize,
    /// Pipeline event counters for bottleneck analysis.
    pub pipeline: PipelineStats,
    scratch_eligible: Vec<(usize, u64)>,
    scratch_requests: Vec<(usize, usize, u64)>,
    scratch_cands: Vec<(usize, u64)>,
}

impl Router {
    /// Build a router with `ports` ports of `vcs` VCs, `vc_buf`-deep
    /// input buffers, and matching initial output credits. The ejection
    /// port (output 0) is an infinite sink.
    pub fn new(id: usize, ports: usize, vcs: usize, vc_buf: usize) -> Self {
        assert!(
            (1..=u8::MAX as usize).contains(&vc_buf),
            "vc_buf must be in 1..=255 (ring cursors are u8)"
        );
        let inputs = (0..ports * vcs).map(|_| InputVc::new()).collect();
        let flit_buf =
            vec![Flit { pkt: NO_PACKET, seq: 0, vc: 0, tail: false }; ports * vcs * vc_buf];
        let out_vcs = (0..ports * vcs)
            .map(|f| {
                let credits = if f / vcs == LOCAL_PORT { u32::MAX } else { vc_buf as u32 };
                OutputVc::new(credits)
            })
            .collect();
        Self {
            id,
            ports,
            vcs,
            inputs,
            flit_buf,
            out_vcs,
            sa_rr: vec![0; ports],
            vc_rr: vec![0; ports],
            va_ptr: 0,
            sa_in_ptr: vec![0; ports],
            vc_buf,
            occupancy: 0,
            va_wait: 0,
            active: 0,
            pipeline: PipelineStats::default(),
            scratch_eligible: Vec::new(),
            scratch_requests: Vec::new(),
            scratch_cands: Vec::new(),
        }
    }

    /// True when no flit is buffered anywhere in this router.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.occupancy == 0
    }

    /// Flits currently buffered across all input VCs (O(1), maintained
    /// incrementally — same value as [`Router::buffered_flits`]).
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Input VC at (`port`, `vc`).
    #[inline]
    pub fn input(&self, port: usize, vc: usize) -> &InputVc {
        &self.inputs[port * self.vcs + vc]
    }

    /// Mutable input VC at (`port`, `vc`).
    #[inline]
    pub fn input_mut(&mut self, port: usize, vc: usize) -> &mut InputVc {
        &mut self.inputs[port * self.vcs + vc]
    }

    /// Output VC state at (`port`, `vc`).
    #[inline]
    pub fn out_vc(&self, port: usize, vc: usize) -> &OutputVc {
        &self.out_vcs[port * self.vcs + vc]
    }

    /// Mutable output VC state at (`port`, `vc`).
    #[inline]
    pub fn out_vc_mut(&mut self, port: usize, vc: usize) -> &mut OutputVc {
        &mut self.out_vcs[port * self.vcs + vc]
    }

    /// Front flit of input VC `flat` (`port * vcs + vc`), if any.
    #[inline]
    fn q_front_flat(&self, flat: usize) -> Option<&Flit> {
        let ivc = &self.inputs[flat];
        if ivc.len == 0 {
            None
        } else {
            Some(&self.flit_buf[flat * self.vc_buf + ivc.head as usize])
        }
    }

    /// Append a flit to input VC `flat`. Caller enforces the depth bound.
    #[inline]
    fn q_push_flat(&mut self, flat: usize, flit: Flit) {
        let ivc = &mut self.inputs[flat];
        debug_assert!((ivc.len as usize) < self.vc_buf);
        let mut slot = ivc.head as usize + ivc.len as usize;
        if slot >= self.vc_buf {
            slot -= self.vc_buf;
        }
        ivc.len += 1;
        self.flit_buf[flat * self.vc_buf + slot] = flit;
    }

    /// Pop the front flit of input VC `flat`, if any.
    #[inline]
    fn q_pop_flat(&mut self, flat: usize) -> Option<Flit> {
        let ivc = &mut self.inputs[flat];
        if ivc.len == 0 {
            return None;
        }
        let slot = ivc.head as usize;
        ivc.head = if slot + 1 >= self.vc_buf { 0 } else { slot as u8 + 1 };
        ivc.len -= 1;
        Some(self.flit_buf[flat * self.vc_buf + slot])
    }

    /// Buffered flit count of input VC (`port`, `vc`).
    #[inline]
    pub fn q_len(&self, port: usize, vc: usize) -> usize {
        self.inputs[port * self.vcs + vc].qlen()
    }

    /// Front flit of input VC (`port`, `vc`), if any.
    #[inline]
    pub fn q_front(&self, port: usize, vc: usize) -> Option<&Flit> {
        self.q_front_flat(port * self.vcs + vc)
    }

    /// Iterate the buffered flits of input VC (`port`, `vc`) front to
    /// back (sanitizer/debug use; not on the hot path).
    pub fn q_iter(&self, port: usize, vc: usize) -> impl Iterator<Item = &Flit> + '_ {
        let flat = port * self.vcs + vc;
        let ivc = &self.inputs[flat];
        let (head, len) = (ivc.head as usize, ivc.len as usize);
        let base = flat * self.vc_buf;
        let cap = self.vc_buf;
        (0..len).map(move |i| {
            let mut slot = head + i;
            if slot >= cap {
                slot -= cap;
            }
            &self.flit_buf[base + slot]
        })
    }

    /// Deposit an arriving flit into its input buffer.
    ///
    /// # Errors
    /// [`SimError::BufferOverflow`] if the buffer is already full —
    /// the upstream router spent a credit it did not have.
    #[inline]
    pub fn deposit(&mut self, port: usize, flit: Flit) -> Result<(), SimError> {
        let flat = port * self.vcs + flit.vc as usize;
        let vc = &self.inputs[flat];
        if vc.qlen() >= self.vc_buf {
            return Err(SimError::BufferOverflow {
                router: self.id,
                port,
                vc: flit.vc as usize,
                depth: self.vc_buf,
            });
        }
        // wormhole ordering: an empty, unallocated VC only ever receives
        // a packet head, so this deposit creates an allocation request
        if vc.state == VcState::Idle && vc.is_empty() {
            debug_assert_eq!(flit.seq, 0, "body flit into empty idle VC");
            self.va_wait += 1;
        }
        self.q_push_flat(flat, flit);
        self.occupancy += 1;
        Ok(())
    }

    /// Return a credit to output (`port`, `vc`).
    ///
    /// # Errors
    /// [`SimError::CreditOverflow`] if the credit count would exceed the
    /// downstream buffer depth.
    #[inline]
    pub fn credit(&mut self, port: usize, vc: usize) -> Result<(), SimError> {
        let out = &mut self.out_vcs[port * self.vcs + vc];
        if port != LOCAL_PORT {
            if out.credits >= self.vc_buf as u32 {
                return Err(SimError::CreditOverflow {
                    router: self.id,
                    port,
                    vc,
                    depth: self.vc_buf,
                });
            }
            out.credits += 1;
        }
        Ok(())
    }

    /// Total flits buffered across all input VCs.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(|vc| vc.qlen()).sum()
    }

    /// Total credits across VCs of `port` allowed by `mask` that are
    /// currently unowned — the local congestion metric used for adaptive
    /// routing.
    fn free_credit_score(&self, port: usize, mask: u64) -> u64 {
        let base = port * self.vcs;
        let mut score = 0;
        for (v, vc) in self.out_vcs[base..base + self.vcs].iter().enumerate() {
            if mask & (1 << v) != 0 && vc.is_free() {
                score += vc.credits as u64;
            }
        }
        score
    }

    /// Non-destructive check: does `mask` contain a claimable VC
    /// (unowned with credits) on `port`?
    fn pick_probe(&self, port: usize, mask: u64) -> bool {
        let base = port * self.vcs;
        self.out_vcs[base..base + self.vcs]
            .iter()
            .enumerate()
            .any(|(v, vc)| mask & (1 << v) != 0 && vc.is_free() && vc.credits > 0)
    }

    /// Pick a *claimable* VC of `port` within `mask` starting from the
    /// rotating pointer; returns the VC index. Claimable means unowned
    /// AND holding at least one credit: committing a packet to a
    /// credit-less VC would let it wait forever there, which breaks
    /// Duato's escape guarantee for adaptive routing (a blocked head
    /// must always be able to fall back to the escape VC — so heads stay
    /// unallocated, retrying each cycle, until a VC they can actually
    /// enter is available).
    fn pick_free_vc(&mut self, port: usize, mask: u64) -> Option<usize> {
        let n = self.vcs;
        let base = port * n;
        let mut v = self.vc_rr[port];
        for _ in 0..n {
            let ovc = &self.out_vcs[base + v];
            if mask & (1 << v) != 0 && ovc.is_free() && ovc.credits > 0 {
                self.vc_rr[port] = if v + 1 == n { 0 } else { v + 1 };
                return Some(v);
            }
            v += 1;
            if v == n {
                v = 0;
            }
        }
        None
    }

    /// Stage 1: VC allocation (includes route computation).
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if allocation state disagrees with
    /// buffer contents.
    pub fn vc_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
    ) -> Result<(), SimError> {
        let vcs = self.vcs;
        let space = self.ports * vcs;

        // no VC is waiting for allocation (all buffered flits belong to
        // already-allocated packets): just advance the rotating pointer
        if self.va_wait == 0 {
            self.va_ptr = if self.va_ptr + 1 >= space.max(1) { 0 } else { self.va_ptr + 1 };
            return Ok(());
        }

        // gather eligible input VCs as (flat index, packet age); ages
        // only matter to the age-based policy, so round-robin skips the
        // packet-slab lookup entirely (a likely cache miss per VC)
        let age_based = matches!(ctx.arb, Arbitration::AgeBased);
        let mut eligible = std::mem::take(&mut self.scratch_eligible);
        eligible.clear();
        for flat in 0..space {
            let ivc = &self.inputs[flat];
            if ivc.wants_allocation() {
                let age = if age_based {
                    let head = self.flit_buf[flat * self.vc_buf + ivc.head as usize];
                    packets.get(head.pkt).birth
                } else {
                    0
                };
                eligible.push((flat, age));
            }
        }
        if eligible.is_empty() {
            self.scratch_eligible = eligible;
            self.va_ptr = if self.va_ptr + 1 >= space.max(1) { 0 } else { self.va_ptr + 1 };
            return Ok(());
        }
        // order by priority, then grant greedily (later grants see
        // earlier claims, so no output VC is double-allocated); a lone
        // requester (the common case at low load) needs no ordering
        if eligible.len() > 1 {
            match ctx.arb {
                Arbitration::RoundRobin => {
                    let ptr = self.va_ptr;
                    eligible.sort_by_key(|&(idx, _)| {
                        let d = idx + space - ptr;
                        if d >= space {
                            d - space
                        } else {
                            d
                        }
                    });
                }
                Arbitration::AgeBased => {
                    eligible.sort_by_key(|&(idx, age)| (age, idx));
                }
            }
        }
        for i in 0..eligible.len() {
            let (flat, _) = eligible[i];
            if let Err(e) = self.try_allocate_one(ctx, packets, flat) {
                self.scratch_eligible = eligible;
                return Err(e);
            }
        }
        self.scratch_eligible = eligible;
        self.va_ptr = if self.va_ptr + 1 >= space { 0 } else { self.va_ptr + 1 };
        Ok(())
    }

    /// Attempt VC allocation for one input VC (given by its flat
    /// `port * vcs + vc` index); claims output state on success.
    fn try_allocate_one(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &mut PacketSlab,
        flat: usize,
    ) -> Result<(), SimError> {
        let pid = self
            .q_front_flat(flat)
            .ok_or(SimError::MissingFlit {
                router: self.id,
                port: flat / self.vcs,
                vc: flat % self.vcs,
                stage: "VC allocation",
            })?
            .pkt;
        let pkt = packets.get(pid);
        let (class, dst, route) = (pkt.class as usize, pkt.dst, pkt.route);
        let cands = match ctx.survivors {
            Some(s) if self.id != dst => {
                let sp = s.ports(self.id, dst);
                if sp.is_empty() {
                    // unreachable in the surviving topology: route as if
                    // healthy — every original path crosses a dead
                    // element, so the packet terminates by being
                    // swallowed there instead of wedging a buffer here
                    ctx.routing.candidates_lut(ctx.topo, ctx.lut, self.id, dst, &route)
                } else {
                    sp
                }
            }
            Some(_) => PortSet::new(), // at the destination: eject
            None => ctx.routing.candidates_lut(ctx.topo, ctx.lut, self.id, dst, &route),
        };

        let claim = if cands.is_empty() {
            // eject here: any VC of the packet's class partition
            let mask = ctx.book.class_mask(class);
            self.pick_free_vc(LOCAL_PORT, mask).map(|vc| (LOCAL_PORT, vc, route))
        } else if ctx.routing.is_adaptive() {
            // adaptive: best candidate port by free downstream credits
            let mut best: Option<(usize, u64, crate::routing::RouteState, u64)> = None;
            for port in cands.iter() {
                let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, self.id, port, dst, &route);
                let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
                let score = self.free_credit_score(port, mask);
                let has_free = self.pick_probe(port, mask);
                if has_free && best.as_ref().is_none_or(|&(_, s, _, _)| score > s) {
                    best = Some((port, score, ns, mask));
                }
            }
            match best {
                Some((port, _, ns, mask)) => self.pick_free_vc(port, mask).map(|vc| (port, vc, ns)),
                None => {
                    // escape: DOR port, escape VC
                    let port = cands.get(0);
                    let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, self.id, port, dst, &route);
                    let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, true);
                    self.pick_free_vc(port, mask).map(|vc| (port, vc, ns))
                }
            }
        } else {
            let port = cands.get(0);
            let ns = ctx.routing.advance_lut(ctx.topo, ctx.lut, self.id, port, dst, &route);
            let mask = ctx.book.allowed(class, ns.phase as usize, ns.dateline, false);
            self.pick_free_vc(port, mask).map(|vc| (port, vc, ns))
        };

        if let Some((port, vc, ns)) = claim {
            self.pipeline.va_grants += 1;
            self.out_vcs[port * self.vcs + vc].owner = pid;
            self.va_wait -= 1;
            self.active += 1;
            let ivc = &mut self.inputs[flat];
            ivc.state = VcState::Active;
            ivc.out_port = port as u8;
            ivc.out_vc = vc as u8;
            ivc.pkt = pid;
            if port != LOCAL_PORT {
                packets.get_mut(pid).route = ns;
            }
        } else {
            self.pipeline.va_blocked += 1;
        }
        Ok(())
    }

    /// Stage 2: separable input-first switch allocation. Winning flits
    /// are appended to `wins`; buffer/credit/ownership state is updated.
    ///
    /// # Errors
    /// [`SimError::MissingFlit`] if a granted input VC's buffer is
    /// empty or its request vanished between the two stages.
    pub fn switch_allocate(
        &mut self,
        ctx: &RouterCtx<'_>,
        packets: &PacketSlab,
        wins: &mut Vec<SaWin>,
    ) -> Result<(), SimError> {
        let ports = self.ports;
        let vcs = self.vcs;

        // no active VC ⇒ nothing can bid, and the barren scan below
        // would touch no state
        if self.active == 0 {
            return Ok(());
        }

        // input stage: one nomination per input port; as in VC
        // allocation, packet ages are only fetched for the age-based
        // policy
        let age_based = matches!(ctx.arb, Arbitration::AgeBased);
        let mut requests = std::mem::take(&mut self.scratch_requests); // (in_port, in_vc, age)
        let mut cands = std::mem::take(&mut self.scratch_cands);
        requests.clear();
        for p in 0..ports {
            cands.clear();
            let base = p * vcs;
            for v in 0..vcs {
                let ivc = &self.inputs[base + v];
                if ivc.state != VcState::Active || ivc.is_empty() {
                    continue;
                }
                let op = ivc.out_port as usize;
                let has_credit =
                    op == LOCAL_PORT || self.out_vcs[op * vcs + ivc.out_vc as usize].credits > 0;
                if has_credit {
                    let age = if age_based { packets.get(ivc.pkt).birth } else { 0 };
                    cands.push((v, age));
                } else {
                    self.pipeline.sa_credit_starved += 1;
                }
            }
            if let Some(pos) = arbitrate(ctx.arb, &cands, self.sa_in_ptr[p], vcs) {
                let (v, age) = cands[pos];
                requests.push((p, v, age));
            }
        }
        if requests.is_empty() {
            // nothing bid (e.g. all active VCs credit-starved): the
            // output stage would grant nothing and touch no state
            self.scratch_requests = requests;
            self.scratch_cands = cands;
            return Ok(());
        }

        // output stage: one grant per output port
        let mut granted = 0u64;
        for o in 0..ports {
            cands.clear();
            cands.extend(
                requests
                    .iter()
                    .filter(|&&(p, v, _)| self.inputs[p * vcs + v].out_port as usize == o)
                    .map(|&(p, _, age)| (p, age)),
            );
            let Some(pos) = arbitrate(ctx.arb, &cands, self.sa_rr[o], ports) else {
                continue;
            };
            let in_port = cands[pos].0;
            let Some(&(_, in_vc, _)) = requests.iter().find(|&&(p, _, _)| p == in_port) else {
                self.scratch_requests = requests;
                self.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: self.id,
                    port: in_port,
                    vc: 0,
                    stage: "switch allocation (granted port never requested)",
                });
            };

            // commit
            let in_flat = in_port * vcs + in_vc;
            let out_vc = self.inputs[in_flat].out_vc as usize;
            let Some(mut flit) = self.q_pop_flat(in_flat) else {
                self.scratch_requests = requests;
                self.scratch_cands = cands;
                return Err(SimError::MissingFlit {
                    router: self.id,
                    port: in_port,
                    vc: in_vc,
                    stage: "switch traversal",
                });
            };
            self.occupancy -= 1;
            flit.vc = out_vc as u8;
            let is_tail = flit.tail;
            debug_assert_eq!(
                is_tail,
                flit.seq as usize == packets.get(flit.pkt).size as usize - 1,
                "flit tail bit disagrees with packet size"
            );
            if o != LOCAL_PORT {
                self.out_vcs[o * vcs + out_vc].credits -= 1;
            }
            if is_tail {
                self.out_vcs[o * vcs + out_vc].owner = NO_PACKET;
                self.active -= 1;
                let ivc = &mut self.inputs[in_flat];
                ivc.release();
                // the next packet's head may already be queued behind
                // the departed tail
                if !ivc.is_empty() {
                    self.va_wait += 1;
                }
            }
            self.pipeline.sa_grants += 1;
            granted += 1;
            self.sa_in_ptr[in_port] = if in_vc + 1 == vcs { 0 } else { in_vc + 1 };
            self.sa_rr[o] = if in_port + 1 == ports { 0 } else { in_port + 1 };
            wins.push(SaWin {
                out_port: o as u8,
                out_vc: out_vc as u8,
                in_port: in_port as u8,
                in_vc: in_vc as u8,
                flit,
                is_tail,
            });
        }
        // every nomination either won an output grant or collided with
        // one that did
        self.pipeline.sa_conflicts += requests.len() as u64 - granted;
        self.scratch_requests = requests;
        self.scratch_cands = cands;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Packet, PacketId};
    use crate::routing::{Dor, RouteState, VcBook};
    use crate::topology::{port_plus, KAryNCube};

    fn mk_packet(src: usize, dst: usize, size: u16, birth: u64) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            size,
            class: 0,
            birth,
            inject: u64::MAX,
            route: RouteState::direct(),
            payload: 0,
        }
    }

    struct Fixture {
        topo: KAryNCube,
        lut: RouteLut,
        book: VcBook,
        packets: PacketSlab,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = KAryNCube::mesh(&[4, 4]);
            let lut = RouteLut::new(&topo, false);
            let book = VcBook::new(2, 1, &Dor, &topo).unwrap();
            Self { topo, lut, book, packets: PacketSlab::new() }
        }
    }

    /// Flit of `pkt` with the tail bit derived from the slab entry, as
    /// the network's injection path does.
    fn flit_of(packets: &PacketSlab, pkt: PacketId, seq: u16, vc: u8) -> Flit {
        let size = packets.get(pkt).size;
        Flit { pkt, seq, vc, tail: seq + 1 == size }
    }

    /// Build a context borrowing only `topo`, `lut` and `book`, so
    /// `packets` stays independently borrowable.
    fn ctx_of<'a>(
        topo: &'a KAryNCube,
        lut: &'a RouteLut,
        book: &'a VcBook,
        arb: Arbitration,
    ) -> RouterCtx<'a> {
        RouterCtx { topo, routing: &Dor, lut, book, arb, survivors: None }
    }

    #[test]
    fn single_flit_traverses_va_and_sa() {
        let mut fx = Fixture::new();
        // router 0, packet heading to node 3 (straight +x)
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, flit_of(&fx.packets, pid, 0, 0)).unwrap();

        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        let ivc = r.input(0, 0);
        assert_eq!(ivc.state, VcState::Active);
        assert_eq!(ivc.out_port as usize, port_plus(0));

        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        let w = wins[0];
        assert_eq!(w.out_port as usize, port_plus(0));
        assert!(w.is_tail);
        // tail departure releases everything
        assert_eq!(r.input(0, 0).state, VcState::Idle);
        assert!(r.out_vc(port_plus(0), w.out_vc as usize).is_free());
        // one credit consumed downstream
        assert_eq!(r.out_vc(port_plus(0), w.out_vc as usize).credits, 3);
    }

    #[test]
    fn ejection_at_destination() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(3, 0, 1, 0));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(port_plus(0), flit_of(&fx.packets, pid, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.input(port_plus(0), 0).out_port as usize, LOCAL_PORT);
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].out_port as usize, LOCAL_PORT);
    }

    #[test]
    fn no_credit_blocks_switch() {
        let mut fx = Fixture::new();
        let pid = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let mut r = Router::new(0, 5, 2, 1);
        r.deposit(0, flit_of(&fx.packets, pid, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // exhaust the credit of the allocated output VC
        let op = r.input(0, 0).out_port as usize;
        let ov = r.input(0, 0).out_vc as usize;
        r.out_vc_mut(op, ov).credits = 0;
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert!(wins.is_empty(), "no credit, no traversal");
        // credit returns, traversal proceeds
        r.credit(op, ov).unwrap();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1);
    }

    #[test]
    fn output_port_grants_one_per_cycle() {
        let mut fx = Fixture::new();
        // two packets from different input ports both heading +x
        let a = fx.packets.insert(mk_packet(0, 3, 1, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, flit_of(&fx.packets, a, 0, 0)).unwrap();
        r.deposit(port_plus(1), flit_of(&fx.packets, b, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both got different output VCs of the same port (2 VCs available)
        let mut wins = Vec::new();
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 1, "one grant per output port per cycle");
        r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        assert_eq!(wins.len(), 2, "second flit follows next cycle");
    }

    #[test]
    fn wormhole_blocks_second_packet_on_same_vc() {
        let mut fx = Fixture::new();
        // a 2-flit packet holds its output VC until the tail departs
        let a = fx.packets.insert(mk_packet(0, 3, 2, 0));
        let b = fx.packets.insert(mk_packet(0, 3, 1, 1));
        let mut r = Router::new(0, 5, 2, 4);
        r.deposit(0, flit_of(&fx.packets, a, 0, 0)).unwrap();
        r.deposit(0, flit_of(&fx.packets, b, 0, 1)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::RoundRobin);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        // both allocate (2 output VCs exist); they share the output port
        let mut owners: Vec<_> = (0..r.vcs()).map(|v| r.out_vc(port_plus(0), v).owner).collect();
        owners.sort_unstable();
        assert_eq!(owners, vec![a.min(b), a.max(b)]);
        // deposit a's body flit; drain everything
        r.deposit(0, flit_of(&fx.packets, a, 1, 0)).unwrap();
        let mut wins = Vec::new();
        for _ in 0..4 {
            r.switch_allocate(&ctx, &fx.packets, &mut wins).unwrap();
        }
        assert_eq!(wins.len(), 3);
        assert!((0..r.vcs()).all(|v| r.out_vc(port_plus(0), v).is_free()));
    }

    #[test]
    fn age_based_va_prefers_oldest() {
        let mut fx = Fixture::new();
        // both want the only VC (mask 0b11 but we fill vc 1 with an owner)
        let young = fx.packets.insert(mk_packet(0, 3, 1, 100));
        let old = fx.packets.insert(mk_packet(0, 3, 1, 5));
        let mut r = Router::new(0, 5, 2, 4);
        // leave just one free output VC on port +x
        r.out_vc_mut(port_plus(0), 1).owner = 999;
        r.deposit(0, flit_of(&fx.packets, young, 0, 0)).unwrap();
        r.deposit(port_plus(1), flit_of(&fx.packets, old, 0, 0)).unwrap();
        let ctx = ctx_of(&fx.topo, &fx.lut, &fx.book, Arbitration::AgeBased);
        r.vc_allocate(&ctx, &mut fx.packets).unwrap();
        assert_eq!(r.out_vc(port_plus(0), 0).owner, old, "oldest packet wins VA");
        assert_eq!(r.input(0, 0).state, VcState::Idle, "young packet must retry");
    }
}
