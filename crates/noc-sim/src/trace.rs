//! Route tracing on an idle network (paper Fig 12: example DOR vs VAL
//! paths between a source/destination pair).

use std::fmt;

use crate::rng::SimRng;
use crate::routing::RoutingAlgorithm;
use crate::topology::Topology;

/// Why a route trace could not be completed.
///
/// Every variant indicates a misbehaving routing function (or a
/// topology/routing mismatch), not a property of the traffic: a correct
/// algorithm always produces a finite path ending at the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The routing function nominated an output port with no link behind
    /// it (fell off a mesh edge).
    Disconnected {
        /// Node where the dead port was selected.
        at: usize,
        /// The unconnected output port.
        port: usize,
        /// Nodes visited so far, including `at`.
        path: Vec<usize>,
    },
    /// The routing function stopped producing candidates (or exhausted
    /// the hop bound) before reaching the destination.
    Unterminated {
        /// Trace source.
        src: usize,
        /// Trace destination.
        dst: usize,
        /// Node where the trace stalled.
        stopped_at: usize,
        /// Hops taken before stalling.
        hops: usize,
        /// Whether the hop bound was exhausted (a routing livelock) as
        /// opposed to the candidate set going empty early.
        bound_exhausted: bool,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Disconnected { at, port, path } => write!(
                f,
                "route trace selected dead output port {port} at node {at} \
                 (path so far: {path:?})"
            ),
            TraceError::Unterminated { src, dst, stopped_at, hops, bound_exhausted } => {
                let why = if *bound_exhausted {
                    "exceeded the hop bound (routing livelock?)"
                } else {
                    "ran out of candidate ports"
                };
                write!(
                    f,
                    "route trace {src} -> {dst} {why} at node {stopped_at} after {hops} hop(s)"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The nodes a packet would visit from `src` to `dst` under `routing`
/// (taking the primary — DOR — candidate at every hop), including both
/// endpoints. For two-phase algorithms the randomly chosen intermediate
/// depends on `seed`.
///
/// Returns a [`TraceError`] instead of panicking when the routing
/// function misbehaves (dead port, empty candidate set away from the
/// destination, or no termination within `4 * nodes` hops), so figure
/// and verification code can report the failure and continue.
pub fn trace_route(
    topo: &dyn Topology,
    routing: &dyn RoutingAlgorithm,
    src: usize,
    dst: usize,
    seed: u64,
) -> Result<Vec<usize>, TraceError> {
    let mut rng = SimRng::new(seed);
    let mut state = routing.init(topo, src, dst, &mut rng);
    let mut cur = src;
    let mut path = vec![cur];
    // generous bound: no route should exceed twice the network diameter
    let bound = 4 * topo.num_nodes();
    let mut bound_exhausted = true;
    for _ in 0..bound {
        let cands = routing.candidates(topo, cur, dst, &state);
        if cands.is_empty() {
            bound_exhausted = false;
            break;
        }
        let port = cands.get(0);
        state = routing.advance(topo, cur, port, dst, &state);
        cur = match topo.neighbor(cur, port) {
            Some((next, _)) => next,
            None => return Err(TraceError::Disconnected { at: cur, port, path }),
        };
        path.push(cur);
    }
    if cur != dst {
        return Err(TraceError::Unterminated {
            src,
            dst,
            stopped_at: cur,
            hops: path.len() - 1,
            bound_exhausted,
        });
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Dor, PortSet, RouteState, Valiant};
    use crate::topology::KAryNCube;

    #[test]
    fn dor_trace_corner_to_corner() {
        let t = KAryNCube::mesh(&[8, 8]);
        let path = trace_route(&t, &Dor, 0, 63, 1).unwrap();
        assert_eq!(path.len(), 15); // 14 hops
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 63);
    }

    #[test]
    fn valiant_trace_visits_intermediate() {
        let t = KAryNCube::mesh(&[8, 8]);
        // For corner-to-corner transpose partners, VAL's intermediate is in
        // the minimal rectangle with probability ~1 only when it happens to
        // be; just verify termination and variable length.
        let p1 = trace_route(&t, &Valiant, 0, 63, 1).unwrap();
        let p2 = trace_route(&t, &Valiant, 0, 63, 2).unwrap();
        assert_eq!(*p1.last().unwrap(), 63);
        assert_eq!(*p2.last().unwrap(), 63);
    }

    #[test]
    fn trace_self_is_trivial() {
        let t = KAryNCube::mesh(&[4, 4]);
        assert_eq!(trace_route(&t, &Dor, 5, 5, 0).unwrap(), vec![5]);
    }

    /// A routing function that ping-pongs between two neighbors forever.
    struct PingPong;

    impl RoutingAlgorithm for PingPong {
        fn name(&self) -> &'static str {
            "PINGPONG"
        }
        fn num_phases(&self) -> usize {
            1
        }
        fn is_adaptive(&self) -> bool {
            false
        }
        fn init(
            &self,
            _topo: &dyn crate::topology::Topology,
            _src: usize,
            _dst: usize,
            _rng: &mut SimRng,
        ) -> RouteState {
            RouteState::direct()
        }
        fn candidates(
            &self,
            topo: &dyn crate::topology::Topology,
            cur: usize,
            _dst: usize,
            _state: &RouteState,
        ) -> PortSet {
            let mut set = PortSet::new();
            // first connected port: hops back and forth along one link
            for port in 1..topo.num_ports() {
                if topo.neighbor(cur, port).is_some() {
                    set.push(port);
                    break;
                }
            }
            set
        }
        fn advance(
            &self,
            _topo: &dyn crate::topology::Topology,
            _cur: usize,
            _port: usize,
            _dst: usize,
            state: &RouteState,
        ) -> RouteState {
            *state
        }
    }

    /// A routing function that walks off the mesh edge.
    struct EdgeJumper;

    impl RoutingAlgorithm for EdgeJumper {
        fn name(&self) -> &'static str {
            "EDGE"
        }
        fn num_phases(&self) -> usize {
            1
        }
        fn is_adaptive(&self) -> bool {
            false
        }
        fn init(
            &self,
            _topo: &dyn crate::topology::Topology,
            _src: usize,
            _dst: usize,
            _rng: &mut SimRng,
        ) -> RouteState {
            RouteState::direct()
        }
        fn candidates(
            &self,
            _topo: &dyn crate::topology::Topology,
            _cur: usize,
            _dst: usize,
            _state: &RouteState,
        ) -> PortSet {
            let mut set = PortSet::new();
            set.push(crate::topology::port_minus(0)); // -x from node 0: off the edge
            set
        }
        fn advance(
            &self,
            _topo: &dyn crate::topology::Topology,
            _cur: usize,
            _port: usize,
            _dst: usize,
            state: &RouteState,
        ) -> RouteState {
            *state
        }
    }

    #[test]
    fn livelocked_routing_reports_instead_of_panicking() {
        let t = KAryNCube::mesh(&[4, 4]);
        let err = trace_route(&t, &PingPong, 0, 15, 0).unwrap_err();
        match &err {
            TraceError::Unterminated { src, dst, hops, bound_exhausted, .. } => {
                assert_eq!((*src, *dst), (0, 15));
                assert_eq!(*hops, 4 * 16);
                assert!(bound_exhausted);
            }
            other => panic!("expected Unterminated, got {other:?}"),
        }
        assert!(err.to_string().contains("livelock"), "{err}");
    }

    #[test]
    fn dead_port_reports_instead_of_panicking() {
        let t = KAryNCube::mesh(&[4, 4]);
        let err = trace_route(&t, &EdgeJumper, 0, 15, 0).unwrap_err();
        match &err {
            TraceError::Disconnected { at, path, .. } => {
                assert_eq!(*at, 0);
                assert_eq!(path, &vec![0]);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
        assert!(err.to_string().contains("dead output port"), "{err}");
    }
}
