//! Route tracing on an idle network (paper Fig 12: example DOR vs VAL
//! paths between a source/destination pair).

use crate::rng::SimRng;
use crate::routing::RoutingAlgorithm;
use crate::topology::Topology;

/// The nodes a packet would visit from `src` to `dst` under `routing`
/// (taking the primary — DOR — candidate at every hop), including both
/// endpoints. For two-phase algorithms the randomly chosen intermediate
/// depends on `seed`.
pub fn trace_route(
    topo: &dyn Topology,
    routing: &dyn RoutingAlgorithm,
    src: usize,
    dst: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = SimRng::new(seed);
    let mut state = routing.init(topo, src, dst, &mut rng);
    let mut cur = src;
    let mut path = vec![cur];
    // generous bound: no route should exceed twice the network diameter
    let bound = 4 * topo.num_nodes();
    for _ in 0..bound {
        let cands = routing.candidates(topo, cur, dst, &state);
        if cands.is_empty() {
            break;
        }
        let port = cands.get(0);
        state = routing.advance(topo, cur, port, dst, &state);
        cur = topo.neighbor(cur, port).expect("candidate port must be connected").0;
        path.push(cur);
    }
    assert_eq!(cur, dst, "route trace did not terminate at the destination");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Dor, Valiant};
    use crate::topology::KAryNCube;

    #[test]
    fn dor_trace_corner_to_corner() {
        let t = KAryNCube::mesh(&[8, 8]);
        let path = trace_route(&t, &Dor, 0, 63, 1);
        assert_eq!(path.len(), 15); // 14 hops
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 63);
    }

    #[test]
    fn valiant_trace_visits_intermediate() {
        let t = KAryNCube::mesh(&[8, 8]);
        // For corner-to-corner transpose partners, VAL's intermediate is in
        // the minimal rectangle with probability ~1 only when it happens to
        // be; just verify termination and variable length.
        let p1 = trace_route(&t, &Valiant, 0, 63, 1);
        let p2 = trace_route(&t, &Valiant, 0, 63, 2);
        assert_eq!(*p1.last().unwrap(), 63);
        assert_eq!(*p2.last().unwrap(), 63);
    }

    #[test]
    fn trace_self_is_trivial() {
        let t = KAryNCube::mesh(&[4, 4]);
        assert_eq!(trace_route(&t, &Dor, 5, 5, 0), vec![5]);
    }
}
