//! Packets, flits, and the packet slab.
//!
//! A [`Packet`] is the unit of the workload (one request or reply); it is
//! broken into [`Flit`]s, the unit of flow control. Flits carry only an
//! index into the [`PacketSlab`] plus a sequence number, keeping the hot
//! per-cycle data two words wide.

use crate::routing::RouteState;

/// Simulation time in cycles.
pub type Cycle = u64;

/// Index into the packet slab (dense, reused).
pub type PacketId = u32;

/// Sentinel for "no packet".
pub const NO_PACKET: PacketId = u32::MAX;

/// Message class, used to partition virtual channels so request/reply
/// protocols cannot deadlock. Class 0 = requests, class 1 = replies in
/// the closed-loop models; open-loop traffic uses a single class 0.
pub type MsgClass = u8;

/// One flow-control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Slab index of the owning packet.
    pub pkt: PacketId,
    /// Position within the packet (0 = head).
    pub seq: u16,
    /// The VC this flit targets at the *downstream* buffer it is moving
    /// toward; rewritten at each switch allocation.
    pub vc: u8,
    /// True when this is the packet's last flit. Carried in the flit so
    /// the switch-allocation and ejection paths decide tail handling
    /// without a random packet-slab lookup per flit-hop (the slab stays
    /// cold on the flit fast path).
    pub tail: bool,
}

/// A packet in flight (or queued at a source).
///
/// Deliberately *not* `Copy` and with a counting [`Clone`]: the engine
/// must never duplicate packet state on its per-cycle path (flits carry
/// only the slab id). Debug builds count every clone so a regression
/// test can pin the hot path at zero (see [`packet_clones`]).
#[derive(Debug)]
pub struct Packet {
    /// Globally unique sequence number (never reused, unlike the slab id).
    pub uid: u64,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Length in flits (>= 1).
    pub size: u16,
    /// Message class for VC partitioning.
    pub class: MsgClass,
    /// Cycle the packet was created (entered the source queue).
    pub birth: Cycle,
    /// Cycle the head flit entered the network (left the source queue);
    /// `u64::MAX` until injection.
    pub inject: Cycle,
    /// Routing state (phase, intermediate, dateline bit).
    pub route: RouteState,
    /// Opaque workload tag (e.g. request id for reply matching).
    pub payload: u64,
}

impl Packet {
    /// True once the head flit has entered the network.
    #[inline]
    pub fn injected(&self) -> bool {
        self.inject != u64::MAX
    }
}

#[cfg(debug_assertions)]
thread_local! {
    static PACKET_CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`Packet::clone`] calls made on this thread so far.
///
/// Debug builds only. The engine's per-cycle path must not clone packet
/// state; tests snapshot this counter around a run and assert the delta
/// is zero, turning an accidental `clone()` into a test failure instead
/// of a silent slowdown. Thread-local so concurrently running tests (or
/// parallel experiment grids) do not observe each other.
#[cfg(debug_assertions)]
pub fn packet_clones() -> u64 {
    PACKET_CLONES.with(|c| c.get())
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        #[cfg(debug_assertions)]
        PACKET_CLONES.with(|c| c.set(c.get() + 1));
        Self {
            uid: self.uid,
            src: self.src,
            dst: self.dst,
            size: self.size,
            class: self.class,
            birth: self.birth,
            inject: self.inject,
            route: self.route,
            payload: self.payload,
        }
    }
}

/// Information handed to [`crate::network::NodeBehavior::deliver`] when a
/// packet fully arrives. Plain-old-data and `Copy`: behaviors retain it
/// by value without heap traffic.
#[derive(Debug, Clone, Copy)]
pub struct Delivered {
    /// Globally unique packet sequence number.
    pub uid: u64,
    /// Source node.
    pub src: usize,
    /// Destination node (the node receiving the delivery callback).
    pub dst: usize,
    /// Length in flits.
    pub size: u16,
    /// Message class.
    pub class: MsgClass,
    /// Creation cycle (source-queue entry).
    pub birth: Cycle,
    /// Network-entry cycle of the head flit.
    pub inject: Cycle,
    /// Opaque workload tag.
    pub payload: u64,
}

/// Request to create a packet, returned by
/// [`crate::network::NodeBehavior::pull`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Destination node.
    pub dst: usize,
    /// Length in flits (>= 1).
    pub size: u16,
    /// Message class.
    pub class: MsgClass,
    /// Opaque workload tag echoed back at delivery.
    pub payload: u64,
}

/// Dense slab of live packets with index reuse.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<PacketId>,
    next_uid: u64,
    live: usize,
}

impl PacketSlab {
    /// Empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a packet, assigning its `uid`; returns the slab id.
    pub fn insert(&mut self, mut pkt: Packet) -> PacketId {
        pkt.uid = self.next_uid;
        self.next_uid += 1;
        self.live += 1;
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(pkt);
                id
            }
            None => {
                self.slots.push(Some(pkt));
                (self.slots.len() - 1) as PacketId
            }
        }
    }

    /// Borrow a live packet.
    ///
    /// # Panics
    /// If `id` is not live (indicates a flit outliving its packet — a bug).
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slots[id as usize].as_ref().expect("dangling packet id")
    }

    /// Mutably borrow a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.slots[id as usize].as_mut().expect("dangling packet id")
    }

    /// Remove and return a packet, freeing its slot.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        let pkt = self.slots[id as usize].take().expect("double free of packet id");
        self.free.push(id);
        self.live -= 1;
        pkt
    }

    /// Number of live packets.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total uids ever assigned (== packets ever created).
    pub fn total_created(&self) -> u64 {
        self.next_uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(src: usize, dst: usize) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            size: 1,
            class: 0,
            birth: 0,
            inject: u64::MAX,
            route: RouteState::direct(),
            payload: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(mk(0, 1));
        let b = slab.insert(mk(2, 3));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.get(a).dst, 1);
        assert_eq!(slab.get(b).src, 2);
        let pa = slab.remove(a);
        assert_eq!(pa.dst, 1);
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn ids_are_reused_but_uids_are_not() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(mk(0, 1));
        let uid_a = slab.get(a).uid;
        slab.remove(a);
        let b = slab.insert(mk(4, 5));
        assert_eq!(a, b, "slot should be reused");
        assert_ne!(uid_a, slab.get(b).uid, "uid must be fresh");
        assert_eq!(slab.total_created(), 2);
    }

    #[test]
    #[should_panic]
    fn get_after_remove_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(mk(0, 1));
        slab.remove(a);
        slab.get(a);
    }

    #[test]
    #[should_panic]
    fn double_remove_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(mk(0, 1));
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn injected_flag() {
        let mut p = mk(0, 1);
        assert!(!p.injected());
        p.inject = 10;
        assert!(p.injected());
    }

    #[test]
    fn flit_is_small() {
        assert!(std::mem::size_of::<Flit>() <= 8);
    }
}
