//! Runtime invariant sanitizer (the `sanitize` cargo feature).
//!
//! After every cycle, [`super::Network::try_step`] calls into this
//! module to re-derive the engine's global conservation laws from
//! scratch and compare them against the counters the engine maintains
//! incrementally:
//!
//! - **Flit conservation** — every injected flit is either buffered in
//!   a router, in flight on a link, queued for ejection, or already
//!   ejected; nothing is duplicated or dropped.
//! - **Credit conservation** — for every (channel, VC): credits held
//!   upstream + credits in flight + flits in flight + flits buffered
//!   downstream always equals the configured buffer depth. The same
//!   law is checked on each node's injection channel.
//! - **Wormhole framing** — within every buffer and link, flits of a
//!   packet appear as consecutive sequence numbers, a new packet starts
//!   only after the previous packet's tail, and an un-allocated VC
//!   always has a head flit at its front.
//! - **Allocation consistency** — an active input VC and the output VC
//!   it claimed agree on the owning packet, and no output VC is
//!   claimed by two inputs.
//! - **Fault consistency** (only with a fault plan installed) — every
//!   effective dead-channel bit re-derives from its cause ledger
//!   (direct failure OR a dead endpoint router), the cached dead-set
//!   population counts match the bit vectors, and the survivor table
//!   is present exactly while some fault is active.
//! - **Progress watchdog** — if no flit moves for a configurable
//!   number of cycles while packets are live, the sanitizer fails the
//!   step with a pretty-printed wait-for chain (the deadlock cycle,
//!   when one exists) plus a full buffer snapshot.
//!
//! The checks cost roughly O(total buffered state) per cycle, so the
//! feature is off by default and meant for verification runs.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::error::SimError;
use crate::flit::{Cycle, Flit};
use crate::router::VcState;
use crate::topology::LOCAL_PORT;

use super::Network;

/// Counters proving the sanitizer actually ran (tests assert on them).
#[derive(Debug, Clone, Default)]
pub struct SanitizeStats {
    /// Cycles on which the full check suite executed.
    pub cycles_checked: u64,
    /// Flit-conservation evaluations (one per checked cycle).
    pub conservation_checks: u64,
    /// Per-(channel, VC) credit-conservation evaluations.
    pub credit_checks: u64,
    /// Per-queue wormhole framing evaluations.
    pub framing_checks: u64,
    /// Current cycles since the watchdog last saw a flit move.
    pub idle_cycles: u64,
}

/// Watchdog default: cycles without flit movement before declaring the
/// network stuck.
pub const DEFAULT_WATCHDOG: u64 = 1_000;

#[derive(Debug)]
pub(super) struct Sanitizer {
    stats: SanitizeStats,
    watchdog: u64,
    /// Progress signature: (flits injected, flits ejected, packets
    /// delivered, switch grants, flits dropped by faults).
    last_sig: (u64, u64, u64, u64, u64),
    last_progress: Cycle,
}

impl Sanitizer {
    pub(super) fn new() -> Self {
        Self {
            stats: SanitizeStats::default(),
            watchdog: DEFAULT_WATCHDOG,
            last_sig: (0, 0, 0, 0, 0),
            last_progress: 0,
        }
    }
}

impl Network {
    /// Sanitizer counters (how many checks have run so far).
    pub fn sanitize_stats(&self) -> &SanitizeStats {
        &self.san.stats
    }

    /// Set the watchdog threshold: cycles without any flit movement
    /// (while packets are live) before [`SimError::Stuck`] is raised.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.san.watchdog = cycles.max(1);
    }

    /// Run the full invariant suite; called at the end of every
    /// [`Network::try_step`] when the `sanitize` feature is on.
    pub(super) fn sanitize_check(&mut self) -> Result<(), SimError> {
        let t = self.cycle;
        self.check_flit_conservation(t)?;
        self.check_credit_conservation(t)?;
        self.check_framing(t)?;
        self.check_allocation_consistency(t)?;
        self.sanitize_fault_consistency(t)?;
        self.check_watchdog(t)?;
        self.san.stats.cycles_checked += 1;
        Ok(())
    }

    /// Injected flits = ejected + buffered + in flight + awaiting
    /// ejection.
    fn check_flit_conservation(&mut self, t: Cycle) -> Result<(), SimError> {
        let buffered: u64 =
            (0..self.routers.len()).map(|r| self.routers.router(r).buffered_flits() as u64).sum();
        let in_flight: u64 = self.links.iter().flatten().map(|l| l.in_flight() as u64).sum();
        let ejecting: u64 = self.nis.iter().map(|ni| ni.eject_q.len() as u64).sum();
        let accounted =
            self.stats.flits_ejected + buffered + in_flight + ejecting + self.stats.flits_dropped;
        self.san.stats.conservation_checks += 1;
        if accounted != self.stats.flits_injected {
            return Err(SimError::Invariant {
                cycle: t,
                check: "flit conservation",
                detail: format!(
                    "{} flits injected but {accounted} accounted for \
                     ({} ejected + {buffered} buffered + {in_flight} on links + \
                     {ejecting} awaiting ejection + {} dropped by faults)",
                    self.stats.flits_injected, self.stats.flits_ejected, self.stats.flits_dropped
                ),
            });
        }
        Ok(())
    }

    /// Per (channel, VC): upstream credits + in-flight credits +
    /// in-flight flits + downstream occupancy == buffer depth. Also
    /// checked for every node's injection channel.
    fn check_credit_conservation(&mut self, t: Cycle) -> Result<(), SimError> {
        let vc_buf = self.cfg.vc_buf as u64;
        let vcs = self.cfg.vcs;
        let ports = self.topo.num_ports();
        for r in 0..self.routers.len() {
            for p in 1..ports {
                let li = self.link_idx(r, p);
                let Some(link) = self.links[li].as_ref() else { continue };
                let (dr, dp) = (link.dst_router, link.dst_port);
                for v in 0..vcs {
                    let held = self.routers.router(r).out_vc(p, v).credits as u64;
                    let credits_in_flight =
                        link.iter_credits().filter(|&&(_, cv)| cv as usize == v).count() as u64;
                    let flits_in_flight =
                        link.iter_flits().filter(|&&(_, f)| f.vc as usize == v).count() as u64;
                    let downstream = self.routers.router(dr).q_len(dp, v) as u64;
                    let total = held + credits_in_flight + flits_in_flight + downstream;
                    self.san.stats.credit_checks += 1;
                    if total != vc_buf {
                        return Err(SimError::Invariant {
                            cycle: t,
                            check: "credit conservation",
                            detail: format!(
                                "channel router {r} out[{p}][{v}] -> router {dr} \
                                 in[{dp}][{v}]: {held} held + {credits_in_flight} \
                                 credits in flight + {flits_in_flight} flits in \
                                 flight + {downstream} buffered = {total}, \
                                 expected {vc_buf}"
                            ),
                        });
                    }
                }
            }
            // injection channel: NI -> router local input port
            for v in 0..vcs {
                let ni = &self.nis[r];
                let held = ni.inj_credits[v] as u64;
                let credits_in_flight =
                    ni.credit_q.iter().filter(|&&(_, cv)| cv as usize == v).count() as u64;
                let buffered = self.routers.router(r).q_len(LOCAL_PORT, v) as u64;
                let total = held + credits_in_flight + buffered;
                self.san.stats.credit_checks += 1;
                if total != vc_buf {
                    return Err(SimError::Invariant {
                        cycle: t,
                        check: "credit conservation",
                        detail: format!(
                            "injection channel node {r} VC {v}: {held} held + \
                             {credits_in_flight} credits in flight + {buffered} \
                             buffered = {total}, expected {vc_buf}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Wormhole framing inside every queue: consecutive sequence
    /// numbers within a packet, packet changes only across a tail, and
    /// un-allocated VCs start with a head flit.
    fn check_framing(&mut self, t: Cycle) -> Result<(), SimError> {
        // router input buffers
        for ri in 0..self.routers.len() {
            let r = self.routers.router(ri);
            for p in 0..r.ports() {
                for v in 0..r.vcs() {
                    let ivc = r.input(p, v);
                    self.san.stats.framing_checks += 1;
                    let where_ = || format!("router {ri} in[{p}][{v}]");
                    self.check_queue_framing(t, r.q_iter(p, v), &where_())?;
                    if ivc.state != VcState::Active {
                        if let Some(front) = r.q_front(p, v) {
                            if front.seq != 0 {
                                return Err(SimError::Invariant {
                                    cycle: t,
                                    check: "VC framing",
                                    detail: format!(
                                        "{}: un-allocated VC fronts a body flit \
                                         (pkt {} seq {})",
                                        where_(),
                                        front.pkt,
                                        front.seq
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        // links and ejection queues carry interleaved VCs: check per VC
        let vcs = self.cfg.vcs;
        for (i, link) in self.links.iter().enumerate() {
            let Some(link) = link.as_ref() else { continue };
            for v in 0..vcs {
                self.san.stats.framing_checks += 1;
                let flits = link.iter_flits().map(|(_, f)| f).filter(|f| f.vc as usize == v);
                self.check_queue_framing(t, flits, &format!("link {i} VC {v}"))?;
            }
        }
        for (n, ni) in self.nis.iter().enumerate() {
            for v in 0..vcs {
                self.san.stats.framing_checks += 1;
                let flits = ni.eject_q.iter().map(|(_, f)| f).filter(|f| f.vc as usize == v);
                self.check_queue_framing(t, flits, &format!("node {n} eject VC {v}"))?;
            }
        }
        Ok(())
    }

    /// Shared framing walk over one flit sequence.
    fn check_queue_framing<'a>(
        &self,
        t: Cycle,
        flits: impl Iterator<Item = &'a Flit>,
        where_: &str,
    ) -> Result<(), SimError> {
        let mut prev: Option<&Flit> = None;
        for f in flits {
            if let Some(p) = prev {
                let ok = if f.pkt == p.pkt {
                    f.seq == p.seq + 1
                } else {
                    // packet switch: previous must be a tail, next a head
                    let prev_size = self.packets.get(p.pkt).size;
                    p.seq as usize == prev_size as usize - 1 && f.seq == 0
                };
                if !ok {
                    return Err(SimError::Invariant {
                        cycle: t,
                        check: "VC framing",
                        detail: format!(
                            "{where_}: pkt {} seq {} followed by pkt {} seq {}",
                            p.pkt, p.seq, f.pkt, f.seq
                        ),
                    });
                }
            }
            prev = Some(f);
        }
        Ok(())
    }

    /// Active input VCs and the output VCs they claimed must agree on
    /// the owning packet, one input per output VC.
    fn check_allocation_consistency(&mut self, t: Cycle) -> Result<(), SimError> {
        for ri in 0..self.routers.len() {
            let r = self.routers.router(ri);
            let mut claimed: HashSet<(usize, usize)> = HashSet::new();
            for p in 0..r.ports() {
                for v in 0..r.vcs() {
                    let ivc = r.input(p, v);
                    if ivc.state != VcState::Active {
                        continue;
                    }
                    let (op, ov) = (ivc.out_port as usize, ivc.out_vc as usize);
                    let owner = r.out_vc(op, ov).owner;
                    if owner != ivc.pkt {
                        return Err(SimError::Invariant {
                            cycle: t,
                            check: "allocation consistency",
                            detail: format!(
                                "router {ri}: in[{p}][{v}] streams pkt {} through \
                                 out[{op}][{ov}] owned by pkt {owner}",
                                ivc.pkt
                            ),
                        });
                    }
                    if !claimed.insert((op, ov)) {
                        return Err(SimError::Invariant {
                            cycle: t,
                            check: "allocation consistency",
                            detail: format!(
                                "router {ri}: out[{op}][{ov}] claimed by two input VCs"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Raise [`SimError::Stuck`] when nothing has moved for the
    /// watchdog threshold while packets are live.
    fn check_watchdog(&mut self, t: Cycle) -> Result<(), SimError> {
        let pipe = self.pipeline_stats();
        let sig = (
            self.stats.flits_injected,
            self.stats.flits_ejected,
            self.stats.packets_delivered,
            pipe.sa_grants,
            self.stats.flits_dropped,
        );
        if sig != self.san.last_sig || self.packets.live() == 0 {
            self.san.last_sig = sig;
            self.san.last_progress = t;
            self.san.stats.idle_cycles = 0;
            return Ok(());
        }
        let idle = t.saturating_sub(self.san.last_progress);
        self.san.stats.idle_cycles = idle;
        if idle < self.san.watchdog {
            return Ok(());
        }
        let mut detail = self.wait_for_chain();
        detail.push_str("--- buffer snapshot ---\n");
        detail.push_str(&self.debug_state());
        Err(SimError::Stuck { cycle: t, idle_cycles: idle, detail })
    }

    /// Walk the wait-for graph from each blocked input VC until a
    /// channel repeats (a deadlock cycle) or the chain leaves the
    /// allocated state; pretty-print the longest finding.
    fn wait_for_chain(&self) -> String {
        let mut best = String::new();
        let mut best_is_cycle = false;
        for start_r in 0..self.routers.len() {
            for p in 0..self.routers.ports() {
                for v in 0..self.routers.vcs() {
                    let ivc = self.routers.router(start_r).input(p, v);
                    if ivc.state != VcState::Active || ivc.is_empty() {
                        continue;
                    }
                    let (text, is_cycle) = self.walk_chain(start_r, p, v);
                    if is_cycle {
                        return format!("--- wait-for cycle ---\n{text}");
                    }
                    if !best_is_cycle && text.len() > best.len() {
                        best = text;
                        best_is_cycle = is_cycle;
                    }
                }
            }
        }
        if best.is_empty() {
            "--- no allocated VC is waiting (stalled before VC allocation) ---\n".to_string()
        } else {
            format!("--- longest wait-for chain (no cycle found) ---\n{best}")
        }
    }

    /// Follow allocated output VCs downstream from one input VC.
    fn walk_chain(&self, mut r: usize, mut p: usize, mut v: usize) -> (String, bool) {
        let mut out = String::new();
        let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
        loop {
            if !seen.insert((r, p, v)) {
                let _ = writeln!(out, "  router {r} in[{p}][{v}]  <- cycle closes here");
                return (out, true);
            }
            let ivc = self.routers.router(r).input(p, v);
            if ivc.state != VcState::Active {
                let _ = writeln!(
                    out,
                    "  router {r} in[{p}][{v}]: waiting for VC allocation \
                     (qlen {})",
                    ivc.qlen()
                );
                return (out, false);
            }
            let (op, ov) = (ivc.out_port as usize, ivc.out_vc as usize);
            let credits = self.routers.router(r).out_vc(op, ov).credits;
            let _ = writeln!(
                out,
                "  router {r} in[{p}][{v}] (pkt {}, qlen {}) -> out[{op}][{ov}] \
                 (credits {credits})",
                ivc.pkt,
                ivc.qlen()
            );
            if op == LOCAL_PORT {
                let _ = writeln!(out, "  ejecting at router {r} (not blocked by fabric)");
                return (out, false);
            }
            let Some((dr, dp)) = self.topo.neighbor(r, op) else {
                return (out, false);
            };
            (r, p, v) = (dr, dp, ov);
        }
    }
}
