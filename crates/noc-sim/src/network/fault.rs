//! Deterministic fault injection and end-to-end recovery.
//!
//! A [`FaultPlan`] describes everything that goes wrong during a run:
//! permanent link failures, permanent router failures, and a transient
//! per-traversal corruption probability — plus an optional end-to-end
//! [`RetxPolicy`] under which source NIs retransmit undelivered
//! packets. Install it with [`Network::set_fault_plan`] before
//! stepping; a network without a plan behaves exactly as before (the
//! fault hooks are a single `Option` check per cycle).
//!
//! # Fault semantics
//!
//! Failures are **packet-granular and fail-stop at channel entry**: the
//! drop decision is made once, when a packet's *head* flit is switched
//! onto a link. A dead (or corrupting) channel swallows the whole
//! packet at that same link — the head and every later flit of the
//! packet that arrives there — while packets whose head already crossed
//! before the failure drain normally. This keeps every engine
//! invariant intact under the `sanitize` feature:
//!
//! - **Wormhole framing** is preserved everywhere: a packet is only
//!   ever truncated at the single channel that swallows it, so every
//!   upstream buffer and link still sees head..tail in order.
//! - **Credit conservation** is exact: the credit consumed by switch
//!   allocation for a swallowed flit is refunded in the same cycle, so
//!   a dead channel never leaks (and never wedges) downstream buffer
//!   slots.
//! - **Flit conservation** gains one term: swallowed flits are counted
//!   in [`super::NetStats::flits_dropped`].
//!
//! A **router failure** kills every incident link (both directions) and
//! the node's NI: queued source packets are discarded, no new packets
//! are pulled, and packets that still reach the dead NI's ejection port
//! are lost. Flits already buffered inside the dead router keep
//! switching mechanically and drain into the dead links.
//!
//! # Rerouting
//!
//! After every permanent fault the engine rebuilds a [`SurvivorTable`]:
//! per-destination shortest-path next hops (breadth-first search over
//! the surviving directed graph, deterministic port-order tie-breaks).
//! While the table is installed, VC allocation routes by it instead of
//! the configured routing function; destinations that are unreachable
//! in the surviving topology fall back to the original routing, which
//! guarantees the packet is swallowed by a dead channel on the way (any
//! original path to an unreachable destination crosses the cut). The
//! BFS table does not preserve the configured algorithm's turn/dateline
//! deadlock-freedom argument — degraded-mode runs should be bounded by
//! a cycle budget (see `noc-exp`'s divergence watchdog) or checked with
//! `noc-verify`'s fault-connectivity lint.
//!
//! # Retransmission
//!
//! With a [`RetxPolicy`], every non-self packet pull opens a *transfer*
//! keyed by the uid of its first attempt. Delivery of any attempt
//! completes the transfer (later duplicates are suppressed before the
//! behavior/digest see them); an undelivered transfer is retransmitted
//! after a timeout with capped exponential backoff, and abandoned once
//! its destination is unreachable or `max_attempts` is exhausted.
//! Everything is bookkept per `(config, seed, plan)` — replays are
//! bit-identical, including the delivery digest.

use std::collections::{HashMap, HashSet};

use crate::error::SimError;
use crate::flit::{Cycle, Packet, PacketId, PacketSlab, PacketSpec};
use crate::rng::SimRng;
use crate::router::{RouterMut, SaWin};
use crate::routing::PortSet;
use crate::topology::Topology;

use super::{NetStats, Network};

/// One permanent fault, applied at the start of its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The directed channel leaving `router` through `port` fails:
    /// packets whose head enters it from this cycle on are lost.
    LinkFail {
        /// Cycle the failure takes effect.
        cycle: Cycle,
        /// Router the channel leaves.
        router: usize,
        /// Output port (>= 1) of the channel.
        port: usize,
    },
    /// Fail-stop router failure: every incident channel dies and the
    /// node's NI stops producing and consuming packets.
    RouterFail {
        /// Cycle the failure takes effect.
        cycle: Cycle,
        /// The failing router.
        router: usize,
    },
}

impl FaultEvent {
    /// Cycle the event takes effect.
    pub fn cycle(&self) -> Cycle {
        match *self {
            FaultEvent::LinkFail { cycle, .. } | FaultEvent::RouterFail { cycle, .. } => cycle,
        }
    }
}

/// End-to-end retransmission policy applied by source NIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxPolicy {
    /// Base per-transfer timeout in cycles (attempt 1).
    pub timeout: u64,
    /// Upper bound on the exponentially backed-off timeout.
    pub backoff_cap: u64,
    /// Give up after this many injection attempts (0 = never).
    pub max_attempts: u32,
}

impl Default for RetxPolicy {
    fn default() -> Self {
        Self { timeout: 512, backoff_cap: 8_192, max_attempts: 16 }
    }
}

impl RetxPolicy {
    /// Deadline delta for the attempt that was just sent:
    /// `timeout * 2^(attempt-1)`, capped.
    fn deadline_after(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.timeout.saturating_mul(1u64 << shift).min(self.backoff_cap.max(self.timeout))
    }
}

/// A complete fault scenario for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Permanent faults; applied in cycle order.
    pub events: Vec<FaultEvent>,
    /// Per head-flit link-traversal probability of transient corruption
    /// (the packet is dropped and, under retransmission, resent).
    pub corrupt_rate: f64,
    /// Seed of the dedicated corruption RNG. Kept separate from the
    /// simulation RNG so enabling faults never perturbs the traffic
    /// stream itself.
    pub corrupt_seed: u64,
    /// End-to-end retransmission policy; `None` means lost packets stay
    /// lost (delivered fraction then measures raw damage).
    pub retx: Option<RetxPolicy>,
}

/// Degradation counters maintained while a fault plan is installed.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Transfers opened (non-self packet pulls at live NIs).
    pub transfers_started: u64,
    /// Transfers that completed (first delivery of any attempt).
    pub transfers_delivered: u64,
    /// Transfers given up on (destination unreachable or attempts
    /// exhausted, or the source NI died with the packet still queued).
    pub transfers_abandoned: u64,
    /// Packets re-enqueued by the retransmission protocol.
    pub retransmissions: u64,
    /// Deliveries suppressed because the transfer had already
    /// completed via an earlier attempt.
    pub duplicate_deliveries: u64,
    /// Whole packets swallowed by dead or corrupting channels, lost at
    /// a dead NI, or discarded from a dead NI's source queue.
    pub packets_dropped: u64,
    /// Directed channels killed by `LinkFail` events.
    pub links_failed: u64,
    /// Routers killed by `RouterFail` events.
    pub routers_failed: u64,
}

impl FaultStats {
    /// Fraction of opened transfers that completed; `1.0` when no
    /// transfer was opened. Exactly `1.0` iff nothing was lost.
    pub fn delivered_fraction(&self) -> f64 {
        if self.transfers_started == 0 {
            1.0
        } else {
            self.transfers_delivered as f64 / self.transfers_started as f64
        }
    }
}

/// Per-destination next hops over the surviving topology.
///
/// Built by reverse breadth-first search from every live destination
/// over the live directed graph; `ports(cur, dst)` lists every output
/// port of `cur` that starts a shortest surviving path (ascending port
/// order, so tie-breaks are deterministic). Empty means `dst` is
/// unreachable from `cur` (or `cur == dst`).
#[derive(Debug)]
pub struct SurvivorTable {
    n: usize,
    table: Vec<PortSet>,
}

impl SurvivorTable {
    /// Build the table for the given dead-channel / dead-router sets.
    /// `dead_link` is indexed like the engine's link array
    /// (`router * (ports-1) + (port-1)`).
    pub fn build(topo: &dyn Topology, dead_link: &[bool], dead_router: &[bool]) -> Self {
        let n = topo.num_nodes();
        let ports = topo.num_ports();
        let mut table = vec![PortSet::new(); n * n];
        // reverse adjacency among survivors: rev[u] lists the live
        // channels (v --p--> u)
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            if dead_router[v] {
                continue;
            }
            for p in 1..ports {
                if let Some((u, _)) = topo.neighbor(v, p) {
                    if !dead_link[v * (ports - 1) + (p - 1)] && !dead_router[u] {
                        rev[u].push(v as u32);
                    }
                }
            }
        }
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..n {
            if dead_router[dst] {
                continue;
            }
            dist.fill(u32::MAX);
            dist[dst] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &v in &rev[u] {
                    let v = v as usize;
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for cur in 0..n {
                if cur == dst || dead_router[cur] || dist[cur] == u32::MAX {
                    continue;
                }
                let mut set = PortSet::new();
                for p in 1..ports {
                    if let Some((w, _)) = topo.neighbor(cur, p) {
                        if !dead_link[cur * (ports - 1) + (p - 1)]
                            && !dead_router[w]
                            && dist[w] != u32::MAX
                            && dist[w] + 1 == dist[cur]
                        {
                            set.push(p);
                        }
                    }
                }
                table[cur * n + dst] = set;
            }
        }
        Self { n, table }
    }

    /// Shortest-surviving-path output ports of `cur` toward `dst`.
    pub fn ports(&self, cur: usize, dst: usize) -> PortSet {
        self.table[cur * self.n + dst]
    }

    /// True when a surviving path `cur -> dst` exists (trivially true
    /// for `cur == dst`).
    pub fn reachable(&self, cur: usize, dst: usize) -> bool {
        cur == dst || !self.table[cur * self.n + dst].is_empty()
    }
}

/// One open transfer in the retransmission ledger.
#[derive(Debug, Clone, Copy)]
struct PendingTx {
    node: usize,
    spec: PacketSpec,
    xfer: u64,
    deadline: Cycle,
    attempt: u32,
    done: bool,
}

/// Mutable fault-injection runtime owned by the network.
#[derive(Debug)]
pub(super) struct FaultState {
    plan: FaultPlan,
    /// Next unapplied index into `plan.events`.
    next_event: usize,
    /// Dead directed channels, indexed like `Network::links`.
    pub(super) dead_link: Vec<bool>,
    /// Dead routers/NIs.
    pub(super) dead_router: Vec<bool>,
    /// Dedicated corruption RNG (never shared with the traffic RNG).
    rng: SimRng,
    /// Packets being swallowed: id -> the one link that eats them.
    dooming: HashMap<PacketId, u32>,
    /// Live fault-tracked packets -> transfer id (uid of attempt 1).
    xfer_of: HashMap<PacketId, u64>,
    /// Resolved transfer ids (delivered or abandoned); late or
    /// duplicate arrivals of resolved transfers are suppressed so
    /// `transfers_delivered + transfers_abandoned` partitions
    /// retransmission-tracked transfers exactly.
    resolved: HashSet<u64>,
    /// Retransmission ledger, in registration order.
    pending: Vec<PendingTx>,
    /// Open-transfer index: xfer id -> `pending` slot.
    pending_idx: HashMap<u64, u32>,
    /// Ledger entries not yet done.
    pending_open: usize,
    /// Earliest deadline of any open ledger entry (scan gate; may be
    /// stale-early, never stale-late).
    next_deadline: Cycle,
    pub(super) stats: FaultStats,
}

impl FaultState {
    /// Decide whether this switch-allocation winner is swallowed by a
    /// fault, and if so do all drop bookkeeping (including the credit
    /// refund that keeps credit conservation exact). Returns true when
    /// the flit must NOT be pushed onto the link.
    pub(super) fn swallow(
        &mut self,
        stats: &mut NetStats,
        packets: &mut PacketSlab,
        router: &mut RouterMut<'_>,
        li: usize,
        w: &SaWin,
    ) -> Result<bool, SimError> {
        let pid = w.flit.pkt;
        let doomed = match self.dooming.get(&pid) {
            // a packet is only truncated at the single channel that
            // took its head; elsewhere its flits forward normally
            Some(&at) => at as usize == li,
            None => {
                w.flit.seq == 0
                    && (self.dead_link[li]
                        || (self.plan.corrupt_rate > 0.0
                            && self.rng.chance(self.plan.corrupt_rate)))
            }
        };
        if !doomed {
            return Ok(false);
        }
        if w.flit.seq == 0 {
            self.stats.packets_dropped += 1;
            if !w.is_tail {
                self.dooming.insert(pid, li as u32);
            }
        }
        if w.is_tail {
            // tail is last in flit order: the whole packet is accounted
            self.dooming.remove(&pid);
            self.xfer_of.remove(&pid);
            packets.remove(pid);
        }
        stats.flits_dropped += 1;
        // refund the output-VC credit switch allocation just consumed
        router.credit(w.out_port as usize, w.out_vc as usize)?;
        Ok(true)
    }

    /// Close the ledger entry of `xfer`, if one is open.
    fn close_pending(&mut self, xfer: u64) -> bool {
        if let Some(i) = self.pending_idx.remove(&xfer) {
            let p = &mut self.pending[i as usize];
            if !p.done {
                p.done = true;
                self.pending_open -= 1;
                return true;
            }
        }
        false
    }

    /// Drop closed entries once they dominate the ledger, so timeout
    /// scans stay proportional to *open* transfers.
    fn compact_pending(&mut self) {
        if self.pending.len() < 64 || self.pending_open * 2 >= self.pending.len() {
            return;
        }
        self.pending.retain(|p| !p.done);
        self.pending_idx.clear();
        for (i, p) in self.pending.iter().enumerate() {
            self.pending_idx.insert(p.xfer, i as u32);
        }
    }
}

impl Network {
    /// Install a fault plan. Must be called before the first step of
    /// the run; events are applied at the start of their cycle.
    ///
    /// # Panics
    /// If the network has already stepped, or an event names a router
    /// or port outside the topology.
    pub fn set_fault_plan(&mut self, mut plan: FaultPlan) {
        assert_eq!(self.cycle, 0, "install the fault plan before stepping");
        let n = self.num_nodes();
        let ports = self.topo.num_ports();
        for ev in &plan.events {
            match *ev {
                FaultEvent::LinkFail { router, port, .. } => {
                    assert!(router < n, "LinkFail router {router} out of range");
                    assert!((1..ports).contains(&port), "LinkFail port {port} out of range");
                }
                FaultEvent::RouterFail { router, .. } => {
                    assert!(router < n, "RouterFail router {router} out of range");
                }
            }
        }
        plan.events.sort_by_key(FaultEvent::cycle); // stable: ties keep plan order
        let rng = SimRng::new(plan.corrupt_seed);
        self.fault = Some(Box::new(FaultState {
            plan,
            next_event: 0,
            dead_link: vec![false; self.links.len()],
            dead_router: vec![false; n],
            rng,
            dooming: HashMap::new(),
            xfer_of: HashMap::new(),
            resolved: HashSet::new(),
            pending: Vec::new(),
            pending_idx: HashMap::new(),
            pending_open: 0,
            next_deadline: Cycle::MAX,
            stats: FaultStats::default(),
        }));
    }

    /// Degradation counters, when a fault plan is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| &f.stats)
    }

    /// True when no transfer is awaiting delivery or retransmission.
    /// `is_idle() && fault_settled()` means the run has fully resolved:
    /// every transfer was delivered or abandoned.
    pub fn fault_settled(&self) -> bool {
        self.fault.as_ref().is_none_or(|f| f.pending_open == 0)
    }

    /// The rerouting table, present once a permanent fault has fired.
    pub fn survivor_table(&self) -> Option<&SurvivorTable> {
        self.survivors.as_deref()
    }

    /// Per-cycle fault work, run before anything else in the cycle:
    /// apply due permanent faults, then time out / retransmit / abandon
    /// open transfers.
    pub(super) fn fault_pre_step(&mut self, t: Cycle) {
        self.fault_apply_events(t);
        self.fault_retx_scan(t);
    }

    fn fault_apply_events(&mut self, t: Cycle) {
        let mut changed = false;
        loop {
            let ev = {
                let f = self.fault.as_ref().expect("fault state present");
                match f.plan.events.get(f.next_event) {
                    Some(&ev) if ev.cycle() <= t => ev,
                    _ => break,
                }
            };
            self.fault.as_mut().expect("fault state present").next_event += 1;
            match ev {
                FaultEvent::LinkFail { router, port, .. } => {
                    let li = self.link_idx(router, port);
                    if self.fault_kill_link(li) {
                        self.fault.as_mut().expect("fault state present").stats.links_failed += 1;
                        changed = true;
                    }
                }
                FaultEvent::RouterFail { router, .. } => {
                    if self.fault_kill_router(router) {
                        changed = true;
                    }
                }
            }
        }
        if changed {
            let f = self.fault.as_ref().expect("fault state present");
            self.survivors = Some(Box::new(SurvivorTable::build(
                self.topo.as_ref(),
                &f.dead_link,
                &f.dead_router,
            )));
        }
    }

    /// Mark channel `li` dead; false when absent or already dead.
    fn fault_kill_link(&mut self, li: usize) -> bool {
        if self.links[li].is_none() {
            return false;
        }
        let f = self.fault.as_mut().expect("fault state present");
        if f.dead_link[li] {
            return false;
        }
        f.dead_link[li] = true;
        true
    }

    /// Fail-stop `router`: kill incident channels and its NI, discard
    /// its queued source packets.
    fn fault_kill_router(&mut self, router: usize) -> bool {
        {
            let f = self.fault.as_mut().expect("fault state present");
            if f.dead_router[router] {
                return false;
            }
            f.dead_router[router] = true;
            f.stats.routers_failed += 1;
        }
        let ports = self.topo.num_ports();
        for p in 1..ports {
            let li = self.link_idx(router, p);
            self.fault_kill_link(li);
            let ui = self.up_link[li];
            if ui != u32::MAX {
                self.fault_kill_link(ui as usize);
            }
        }
        // discard packets still queued at the dead NI (none of their
        // flits exist yet, so flit conservation is untouched); their
        // transfers are abandoned — nobody is left to retransmit them
        for c in 0..self.cfg.classes {
            while let Some(pid) = self.nis[router].class_q[c].pop_front() {
                self.inj_backlog -= 1;
                self.packets.remove(pid);
                let f = self.fault.as_mut().expect("fault state present");
                f.stats.packets_dropped += 1;
                if let Some(x) = f.xfer_of.remove(&pid) {
                    if f.close_pending(x) {
                        f.stats.transfers_abandoned += 1;
                        f.resolved.insert(x);
                    }
                }
            }
        }
        true
    }

    /// Scan the retransmission ledger for due deadlines.
    fn fault_retx_scan(&mut self, t: Cycle) {
        let Some(policy) = self.fault.as_ref().and_then(|f| f.plan.retx) else { return };
        {
            let f = self.fault.as_mut().expect("fault state present");
            if f.pending_open == 0 || t < f.next_deadline {
                return;
            }
            f.compact_pending();
        }
        let len = self.fault.as_ref().expect("fault state present").pending.len();
        let mut next_deadline = Cycle::MAX;
        for idx in 0..len {
            let (node, spec, xfer, attempt) = {
                let f = self.fault.as_ref().expect("fault state present");
                let p = &f.pending[idx];
                if p.done {
                    continue;
                }
                if p.deadline > t {
                    next_deadline = next_deadline.min(p.deadline);
                    continue;
                }
                (p.node, p.spec, p.xfer, p.attempt)
            };
            let unreachable =
                {
                    let f = self.fault.as_ref().expect("fault state present");
                    f.dead_router[node] || f.dead_router[spec.dst]
                } || self.survivors.as_ref().is_some_and(|s| !s.reachable(node, spec.dst));
            if unreachable || (policy.max_attempts > 0 && attempt >= policy.max_attempts) {
                let f = self.fault.as_mut().expect("fault state present");
                if f.close_pending(xfer) {
                    f.stats.transfers_abandoned += 1;
                    f.resolved.insert(xfer);
                }
                continue;
            }
            // retransmit: a fresh packet carrying the same spec
            let route = self.routing.init(self.topo.as_ref(), node, spec.dst, &mut self.rng);
            let pid = self.packets.insert(Packet {
                uid: 0,
                src: node,
                dst: spec.dst,
                size: spec.size,
                class: spec.class,
                birth: t,
                inject: u64::MAX,
                route,
                payload: spec.payload,
            });
            self.nis[node].class_q[spec.class as usize].push_back(pid);
            self.inj_backlog += 1;
            super::bit_set(&mut self.ni_work, node);
            let f = self.fault.as_mut().expect("fault state present");
            f.xfer_of.insert(pid, xfer);
            f.stats.retransmissions += 1;
            let p = &mut f.pending[idx];
            p.attempt += 1;
            p.deadline = t + policy.deadline_after(p.attempt);
            next_deadline = next_deadline.min(p.deadline);
        }
        self.fault.as_mut().expect("fault state present").next_deadline = next_deadline;
    }

    /// True when `node`'s NI is dead (no pulls, deliveries lost).
    pub(super) fn fault_node_dead(&self, node: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| f.dead_router[node])
    }

    /// Open a transfer for a freshly pulled non-self packet.
    pub(super) fn fault_register(
        &mut self,
        node: usize,
        pid: PacketId,
        spec: PacketSpec,
        t: Cycle,
    ) {
        let uid = self.packets.get(pid).uid;
        let f = self.fault.as_mut().expect("fault state present");
        f.stats.transfers_started += 1;
        f.xfer_of.insert(pid, uid);
        if let Some(policy) = f.plan.retx {
            let deadline = t + policy.timeout;
            f.pending_idx.insert(uid, f.pending.len() as u32);
            f.pending.push(PendingTx { node, spec, xfer: uid, deadline, attempt: 1, done: false });
            f.pending_open += 1;
            f.next_deadline = f.next_deadline.min(deadline);
        }
    }

    /// Fault bookkeeping for a tail flit reaching NI `node`. Returns
    /// true when the delivery should proceed (not a duplicate, not a
    /// dead NI); with no fault plan installed this is always true.
    pub(super) fn fault_on_tail(&mut self, node: usize, pid: PacketId) -> bool {
        let Some(f) = self.fault.as_mut() else { return true };
        let xfer = f.xfer_of.remove(&pid);
        if f.dead_router[node] {
            f.stats.packets_dropped += 1;
            return false;
        }
        if let Some(x) = xfer {
            if !f.resolved.insert(x) {
                f.stats.duplicate_deliveries += 1;
                return false;
            }
            f.stats.transfers_delivered += 1;
            f.close_pending(x);
        }
        true
    }
}
