//! Deterministic fault injection, online repair, and recovery.
//!
//! A [`FaultPlan`] describes everything that goes wrong during a run:
//! timed link/router failures *and repairs*, a transient per-traversal
//! corruption probability — plus two selectable recovery modes: an
//! end-to-end [`RetxPolicy`] under which source NIs retransmit
//! undelivered packets, and a hop-level [`LinkRetryPolicy`] under which
//! CRC-detected corruption is replayed from a per-link retry buffer
//! instead of being dropped. Install the plan with
//! [`Network::set_fault_plan`] (or the validating
//! [`Network::try_set_fault_plan`]) before stepping; a network without
//! a plan behaves exactly as before (the fault hooks are a single
//! `Option` check per cycle).
//!
//! # Fault semantics
//!
//! Failures are **packet-granular and fail-stop at channel entry**: the
//! drop decision is made once, when a packet's *head* flit is switched
//! onto a link. A dead (or corrupting) channel swallows the whole
//! packet at that same link — the head and every later flit of the
//! packet that arrives there — while packets whose head already crossed
//! before the failure drain normally. This keeps every engine
//! invariant intact under the `sanitize` feature:
//!
//! - **Wormhole framing** is preserved everywhere: a packet is only
//!   ever truncated at the single channel that swallows it, so every
//!   upstream buffer and link still sees head..tail in order.
//! - **Credit conservation** is exact: the credit consumed by switch
//!   allocation for a swallowed flit is refunded in the same cycle, so
//!   a dead channel never leaks (and never wedges) downstream buffer
//!   slots.
//! - **Flit conservation** gains one term: swallowed flits are counted
//!   in [`super::NetStats::flits_dropped`].
//!
//! A **router failure** kills every incident link (both directions) and
//! the node's NI: queued source packets are discarded, no new packets
//! are pulled, and packets that still reach the dead NI's ejection port
//! are lost. Flits already buffered inside the dead router keep
//! switching mechanically and drain into the dead links.
//!
//! # Epochs and repair
//!
//! Topology state changes in **epochs**: each cycle whose due events
//! net-change the surviving graph closes one epoch
//! ([`FaultStats::epochs`] counts them) and triggers one in-place
//! [`SurvivorTable::rebuild`] at the boundary. Direct link failures
//! ([`FaultEvent::LinkFail`]) are tracked separately from the
//! *effective* dead set, so a channel stays dead while either its own
//! failure is unrepaired or either endpoint router is down, and
//! [`FaultEvent::LinkRepair`] / [`FaultEvent::RouterRepair`] restore
//! exactly the channels whose every cause has cleared. When an epoch
//! leaves the topology fully healed the survivor table is dropped
//! entirely — routing re-converges online to the configured algorithm.
//! A packet mid-swallow keeps draining into the channel that took its
//! head even if that channel is repaired mid-packet (the pinning in
//! `dooming` is by link, not by link state), so wormhole framing holds
//! across repair boundaries.
//!
//! # Rerouting
//!
//! While any fault is active the engine maintains a [`SurvivorTable`]:
//! per-destination shortest-path next hops (breadth-first search over
//! the surviving directed graph, deterministic port-order tie-breaks).
//! While the table is installed, VC allocation routes by it instead of
//! the configured routing function; destinations that are unreachable
//! in the surviving topology fall back to the original routing, which
//! guarantees the packet is swallowed by a dead channel on the way (any
//! original path to an unreachable destination crosses the cut). The
//! BFS table does not preserve the configured algorithm's turn/dateline
//! deadlock-freedom argument — degraded-mode runs should be bounded by
//! a cycle budget (see `noc-exp`'s divergence watchdog) or checked with
//! `noc-verify`'s fault-connectivity lint.
//!
//! # Recovery: end-to-end vs link-level
//!
//! With a [`RetxPolicy`], every non-self packet pull opens a *transfer*
//! keyed by the uid of its first attempt. Delivery of any attempt
//! completes the transfer (later duplicates are suppressed before the
//! behavior/digest see them); an undelivered transfer is retransmitted
//! after a timeout with capped exponential backoff, and abandoned once
//! its destination is unreachable or `max_attempts` is exhausted —
//! except that while the plan still holds unapplied events, abandonment
//! for unreachability is *deferred*: a repair may yet restore the path,
//! so the transfer is re-armed one base timeout out instead.
//!
//! With a [`LinkRetryPolicy`], corruption detected at a link's receiver
//! (the CRC model) is not an end-to-end loss: the sender holds every
//! in-flight flit in a retry buffer and replays on nack, each round
//! costing [`LinkRetryPolicy::replay_rtt`] cycles, bounded by
//! [`LinkRetryPolicy::max_replays`] rounds before the hop gives up and
//! the packet is dropped (recoverable end-to-end if both modes are on).
//! Replay delay is modeled by pushing the flit's link-exit time out and
//! clamping every later flit on that channel behind it (the link is
//! FIFO, exactly like a replaying wire). Dead channels are not
//! retryable — only corruption is.
//!
//! Everything is bookkept per `(config, seed, plan)` — replays are
//! bit-identical, including the delivery digest.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::{ConfigError, SimError};
use crate::flit::{Cycle, Packet, PacketId, PacketSlab, PacketSpec};
use crate::rng::SimRng;
use crate::router::{RouterMut, SaWin};
use crate::routing::PortSet;
use crate::topology::Topology;

use super::{NetStats, Network};

/// One timed fault or repair, applied at the start of its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The directed channel leaving `router` through `port` fails:
    /// packets whose head enters it from this cycle on are lost.
    LinkFail {
        /// Cycle the failure takes effect.
        cycle: Cycle,
        /// Router the channel leaves.
        router: usize,
        /// Output port (>= 1) of the channel.
        port: usize,
    },
    /// Fail-stop router failure: every incident channel dies and the
    /// node's NI stops producing and consuming packets.
    RouterFail {
        /// Cycle the failure takes effect.
        cycle: Cycle,
        /// The failing router.
        router: usize,
    },
    /// The directed channel leaving `router` through `port` comes back
    /// up. The channel only carries traffic again once every cause of
    /// death has cleared (its own failure *and* both endpoint routers).
    LinkRepair {
        /// Cycle the repair takes effect.
        cycle: Cycle,
        /// Router the channel leaves.
        router: usize,
        /// Output port (>= 1) of the channel.
        port: usize,
    },
    /// The router comes back up: its NI resumes producing and consuming
    /// packets, and incident channels revive unless independently
    /// failed (or their far endpoint is still down).
    RouterRepair {
        /// Cycle the repair takes effect.
        cycle: Cycle,
        /// The recovering router.
        router: usize,
    },
}

impl FaultEvent {
    /// Cycle the event takes effect.
    pub fn cycle(&self) -> Cycle {
        match *self {
            FaultEvent::LinkFail { cycle, .. }
            | FaultEvent::RouterFail { cycle, .. }
            | FaultEvent::LinkRepair { cycle, .. }
            | FaultEvent::RouterRepair { cycle, .. } => cycle,
        }
    }

    /// True for repair events (the "comes back up" half of a timeline).
    pub fn is_repair(&self) -> bool {
        matches!(self, FaultEvent::LinkRepair { .. } | FaultEvent::RouterRepair { .. })
    }
}

/// End-to-end retransmission policy applied by source NIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxPolicy {
    /// Base per-transfer timeout in cycles (attempt 1).
    pub timeout: u64,
    /// Upper bound on the exponentially backed-off timeout.
    pub backoff_cap: u64,
    /// Give up after this many injection attempts (0 = never).
    pub max_attempts: u32,
}

impl Default for RetxPolicy {
    fn default() -> Self {
        Self { timeout: 512, backoff_cap: 8_192, max_attempts: 16 }
    }
}

impl RetxPolicy {
    /// Deadline delta for the attempt that was just sent:
    /// `timeout * 2^(attempt-1)`, capped at `backoff_cap`. Shift-safe
    /// for any `attempt` (large attempt counts saturate at the cap
    /// instead of overflowing the shift).
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        let cap = self.backoff_cap.max(self.timeout);
        let shift = attempt.saturating_sub(1);
        match 1u64.checked_shl(shift) {
            Some(f) => self.timeout.saturating_mul(f).min(cap),
            None => cap,
        }
    }
}

/// Hop-level recovery: replay CRC-corrupted traversals from a per-link
/// retry buffer instead of dropping the packet end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRetryPolicy {
    /// Cycles one nack + replay round adds to the traversal (the link's
    /// ack/nack round-trip).
    pub replay_rtt: u64,
    /// Replay rounds before the hop gives up and drops the packet
    /// (recoverable end-to-end when a [`RetxPolicy`] is also set).
    pub max_replays: u32,
    /// Retry-buffer depth in flits: while a channel already holds this
    /// many un-acked flits, each further push stalls one extra
    /// `replay_rtt` (modeled ack/nack credit backpressure). `0`
    /// disables the depth bound (occupancy is still tracked).
    pub buf_depth: u32,
}

impl Default for LinkRetryPolicy {
    fn default() -> Self {
        Self { replay_rtt: 6, max_replays: 4, buf_depth: 16 }
    }
}

/// A complete fault scenario for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Timed faults and repairs; applied in cycle order.
    pub events: Vec<FaultEvent>,
    /// Per head-flit link-traversal probability of transient corruption
    /// (the packet is dropped and, under retransmission, resent —
    /// unless [`FaultPlan::link_retry`] recovers the traversal first).
    pub corrupt_rate: f64,
    /// Seed of the dedicated corruption RNG. Kept separate from the
    /// simulation RNG so enabling faults never perturbs the traffic
    /// stream itself.
    pub corrupt_seed: u64,
    /// End-to-end retransmission policy; `None` means lost packets stay
    /// lost (delivered fraction then measures raw damage).
    pub retx: Option<RetxPolicy>,
    /// Link-level retry policy; `None` means corruption drops the
    /// packet at the channel (the pre-repair behavior). Selectable
    /// independently of `retx` so hop-level and end-to-end recovery
    /// can be A/B'd on the same schedule.
    pub link_retry: Option<LinkRetryPolicy>,
}

impl FaultPlan {
    /// Check every probability and policy parameter, so a malformed
    /// plan fails loudly at install time instead of silently skewing a
    /// run.
    ///
    /// # Errors
    /// [`ConfigError::Parameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.corrupt_rate.is_finite() || !(0.0..=1.0).contains(&self.corrupt_rate) {
            return Err(ConfigError::Parameter {
                name: "corrupt_rate",
                why: format!("probability must be in [0, 1], got {}", self.corrupt_rate),
            });
        }
        if let Some(rx) = self.retx {
            if rx.timeout == 0 {
                return Err(ConfigError::Parameter {
                    name: "retx.timeout",
                    why: "base timeout must be at least 1 cycle".into(),
                });
            }
        }
        if let Some(lr) = self.link_retry {
            if lr.replay_rtt == 0 {
                return Err(ConfigError::Parameter {
                    name: "link_retry.replay_rtt",
                    why: "replay round-trip must be at least 1 cycle".into(),
                });
            }
            if lr.max_replays == 0 {
                return Err(ConfigError::Parameter {
                    name: "link_retry.max_replays",
                    why: "at least one replay round is required (use link_retry: None \
                          to disable hop-level recovery)"
                        .into(),
                });
            }
        }
        Ok(())
    }
}

/// Degradation counters maintained while a fault plan is installed.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Transfers opened (non-self packet pulls at live NIs).
    pub transfers_started: u64,
    /// Transfers that completed (first delivery of any attempt).
    pub transfers_delivered: u64,
    /// Transfers given up on (destination unreachable or attempts
    /// exhausted, or the source NI died with the packet still queued).
    pub transfers_abandoned: u64,
    /// Packets re-enqueued by the retransmission protocol.
    pub retransmissions: u64,
    /// Deliveries suppressed because the transfer had already
    /// completed via an earlier attempt.
    pub duplicate_deliveries: u64,
    /// Whole packets swallowed by dead or corrupting channels, lost at
    /// a dead NI, or discarded from a dead NI's source queue.
    pub packets_dropped: u64,
    /// Directed channels killed by `LinkFail` events.
    pub links_failed: u64,
    /// Routers killed by `RouterFail` events.
    pub routers_failed: u64,
    /// Directed channels whose `LinkFail` was cleared by `LinkRepair`.
    pub links_repaired: u64,
    /// Routers revived by `RouterRepair`.
    pub routers_repaired: u64,
    /// Topology epochs: event batches that net-changed the surviving
    /// graph, each closing with one survivor-table rebuild.
    pub epochs: u64,
    /// Link-level replay rounds performed (nack + resend).
    pub link_replays: u64,
    /// Packets dropped at a hop after exhausting its replay budget.
    pub replay_drops: u64,
    /// Peak per-link retry-buffer occupancy (un-acked flits in flight),
    /// tracked only while a [`LinkRetryPolicy`] is installed.
    pub replay_buf_peak: u64,
    /// Pushes stalled one replay round-trip by a full retry buffer.
    pub replay_buf_stalls: u64,
}

impl FaultStats {
    /// Fraction of opened transfers that completed; `1.0` when no
    /// transfer was opened. Exactly `1.0` iff nothing was lost.
    pub fn delivered_fraction(&self) -> f64 {
        if self.transfers_started == 0 {
            1.0
        } else {
            self.transfers_delivered as f64 / self.transfers_started as f64
        }
    }
}

/// Per-destination next hops over the surviving topology.
///
/// Built by reverse breadth-first search from every live destination
/// over the live directed graph; `ports(cur, dst)` lists every output
/// port of `cur` that starts a shortest surviving path (ascending port
/// order, so tie-breaks are deterministic). Empty means `dst` is
/// unreachable from `cur` (or `cur == dst`).
#[derive(Debug)]
pub struct SurvivorTable {
    n: usize,
    table: Vec<PortSet>,
    /// Reverse-adjacency scratch, reused across epoch rebuilds.
    rev: Vec<Vec<u32>>,
    /// BFS distance scratch, reused across epoch rebuilds.
    dist: Vec<u32>,
    /// BFS queue scratch, reused across epoch rebuilds.
    queue: VecDeque<usize>,
}

impl SurvivorTable {
    /// Build the table for the given dead-channel / dead-router sets.
    /// `dead_link` is indexed like the engine's link array
    /// (`router * (ports-1) + (port-1)`).
    pub fn build(topo: &dyn Topology, dead_link: &[bool], dead_router: &[bool]) -> Self {
        let n = topo.num_nodes();
        let mut t = Self {
            n,
            table: vec![PortSet::new(); n * n],
            rev: vec![Vec::new(); n],
            dist: vec![u32::MAX; n],
            queue: VecDeque::new(),
        };
        t.rebuild(topo, dead_link, dead_router);
        t
    }

    /// Recompute the table in place for new dead sets, reusing every
    /// allocation (table, adjacency, BFS scratch) — the per-epoch
    /// incremental rebuild, so a flapping timeline costs no steady
    /// allocator traffic after its first epoch.
    pub fn rebuild(&mut self, topo: &dyn Topology, dead_link: &[bool], dead_router: &[bool]) {
        let n = self.n;
        debug_assert_eq!(n, topo.num_nodes(), "survivor table bound to one topology");
        let ports = topo.num_ports();
        self.table.iter_mut().for_each(|s| *s = PortSet::new());
        // reverse adjacency among survivors: rev[u] lists the live
        // channels (v --p--> u)
        self.rev.iter_mut().for_each(Vec::clear);
        for v in 0..n {
            if dead_router[v] {
                continue;
            }
            for p in 1..ports {
                if let Some((u, _)) = topo.neighbor(v, p) {
                    if !dead_link[v * (ports - 1) + (p - 1)] && !dead_router[u] {
                        self.rev[u].push(v as u32);
                    }
                }
            }
        }
        for dst in 0..n {
            if dead_router[dst] {
                continue;
            }
            self.dist.fill(u32::MAX);
            self.dist[dst] = 0;
            self.queue.clear();
            self.queue.push_back(dst);
            while let Some(u) = self.queue.pop_front() {
                for &v in &self.rev[u] {
                    let v = v as usize;
                    if self.dist[v] == u32::MAX {
                        self.dist[v] = self.dist[u] + 1;
                        self.queue.push_back(v);
                    }
                }
            }
            for cur in 0..n {
                if cur == dst || dead_router[cur] || self.dist[cur] == u32::MAX {
                    continue;
                }
                let mut set = PortSet::new();
                for p in 1..ports {
                    if let Some((w, _)) = topo.neighbor(cur, p) {
                        if !dead_link[cur * (ports - 1) + (p - 1)]
                            && !dead_router[w]
                            && self.dist[w] != u32::MAX
                            && self.dist[w] + 1 == self.dist[cur]
                        {
                            set.push(p);
                        }
                    }
                }
                self.table[cur * n + dst] = set;
            }
        }
    }

    /// Shortest-surviving-path output ports of `cur` toward `dst`.
    pub fn ports(&self, cur: usize, dst: usize) -> PortSet {
        self.table[cur * self.n + dst]
    }

    /// True when a surviving path `cur -> dst` exists (trivially true
    /// for `cur == dst`).
    pub fn reachable(&self, cur: usize, dst: usize) -> bool {
        cur == dst || !self.table[cur * self.n + dst].is_empty()
    }
}

/// One open transfer in the retransmission ledger.
#[derive(Debug, Clone, Copy)]
struct PendingTx {
    node: usize,
    spec: PacketSpec,
    xfer: u64,
    deadline: Cycle,
    attempt: u32,
    done: bool,
}

/// Mutable fault-injection runtime owned by the network.
#[derive(Debug)]
pub(super) struct FaultState {
    plan: FaultPlan,
    /// Next unapplied index into `plan.events`.
    next_event: usize,
    /// *Effectively* dead directed channels (directly failed, or either
    /// endpoint router down), indexed like `Network::links`.
    pub(super) dead_link: Vec<bool>,
    /// Directly failed channels (`LinkFail` not yet repaired) — the
    /// cause ledger behind `dead_link`, so router repairs only revive
    /// channels with no independent failure of their own.
    pub(super) link_failed: Vec<bool>,
    /// Dead routers/NIs.
    pub(super) dead_router: Vec<bool>,
    /// Population counts of `dead_link` / `dead_router`, so an epoch
    /// that fully heals the topology can drop the survivor table in
    /// O(1) instead of rescanning.
    pub(super) dead_links_count: usize,
    pub(super) dead_routers_count: usize,
    /// Per-link earliest admissible push time under link-level retry:
    /// replays delay the wire, and the FIFO link must keep later flits
    /// behind them. Empty unless `plan.link_retry` is set.
    link_lag: Vec<Cycle>,
    /// Dedicated corruption RNG (never shared with the traffic RNG).
    rng: SimRng,
    /// Packets being swallowed: id -> the one link that eats them.
    dooming: HashMap<PacketId, u32>,
    /// Live fault-tracked packets -> transfer id (uid of attempt 1).
    xfer_of: HashMap<PacketId, u64>,
    /// Resolved transfer ids (delivered or abandoned); late or
    /// duplicate arrivals of resolved transfers are suppressed so
    /// `transfers_delivered + transfers_abandoned` partitions
    /// retransmission-tracked transfers exactly.
    resolved: HashSet<u64>,
    /// Retransmission ledger, in registration order.
    pending: Vec<PendingTx>,
    /// Open-transfer index: xfer id -> `pending` slot.
    pending_idx: HashMap<u64, u32>,
    /// Ledger entries not yet done.
    pending_open: usize,
    /// Earliest deadline of any open ledger entry (scan gate; may be
    /// stale-early, never stale-late).
    next_deadline: Cycle,
    pub(super) stats: FaultStats,
}

impl FaultState {
    /// Judge this switch-allocation winner at its channel entry.
    ///
    /// Returns `Ok(None)` when the flit is swallowed by a fault — all
    /// drop bookkeeping (including the credit refund that keeps credit
    /// conservation exact) has been done and the flit must NOT be
    /// pushed onto the link. Returns `Ok(Some(ready))` when the flit
    /// forwards; `ready` is the link-exit cycle, which under link-level
    /// retry may include replay delay and the FIFO lag of earlier
    /// replays on the same channel. `link` carries the channel's
    /// `(delay, in-flight flits)` when it exists; for a nonexistent
    /// channel the verdict is `Forward` at the nominal time and the
    /// caller raises its usual dead-port error.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_link_entry(
        &mut self,
        stats: &mut NetStats,
        packets: &mut PacketSlab,
        router: &mut RouterMut<'_>,
        li: usize,
        link: Option<(Cycle, usize)>,
        base: Cycle,
        w: &SaWin,
    ) -> Result<Option<Cycle>, SimError> {
        let pid = w.flit.pkt;
        // replay rounds bought by link-level retry for this head flit
        let mut replay_rounds = 0u32;
        let doomed = match self.dooming.get(&pid) {
            // a packet is only truncated at the single channel that
            // took its head; elsewhere its flits forward normally
            Some(&at) => at as usize == li,
            None if w.flit.seq != 0 => false,
            None if self.dead_link[li] => true, // dead wire: nothing to replay from
            None => {
                if self.plan.corrupt_rate > 0.0 && self.rng.chance(self.plan.corrupt_rate) {
                    match self.plan.link_retry {
                        // no hop-level recovery: corruption is a loss
                        None => true,
                        // CRC caught it at the receiver: bounded replay
                        // from the sender's retry buffer, each round an
                        // independent corruption draw
                        Some(lr) => {
                            let mut recovered = false;
                            while replay_rounds < lr.max_replays {
                                replay_rounds += 1;
                                if !self.rng.chance(self.plan.corrupt_rate) {
                                    recovered = true;
                                    break;
                                }
                            }
                            self.stats.link_replays += replay_rounds as u64;
                            if !recovered {
                                self.stats.replay_drops += 1;
                            }
                            !recovered
                        }
                    }
                } else {
                    false
                }
            }
        };
        if !doomed {
            let Some((delay, in_flight)) = link else { return Ok(Some(base)) };
            let mut ready = base + delay;
            if let Some(lr) = self.plan.link_retry {
                // the sender retains every in-flight flit until acked;
                // occupancy is the retry-buffer fill level
                let occupancy = in_flight as u64 + 1;
                self.stats.replay_buf_peak = self.stats.replay_buf_peak.max(occupancy);
                if lr.buf_depth > 0 && in_flight >= lr.buf_depth as usize {
                    self.stats.replay_buf_stalls += 1;
                    ready += lr.replay_rtt;
                }
                ready += replay_rounds as u64 * lr.replay_rtt;
                // the wire is FIFO: stay behind any replaying
                // predecessor, and hold successors behind us
                let lag = &mut self.link_lag[li];
                ready = ready.max(*lag);
                *lag = ready;
            }
            return Ok(Some(ready));
        }
        if w.flit.seq == 0 {
            self.stats.packets_dropped += 1;
            if !w.is_tail {
                self.dooming.insert(pid, li as u32);
            }
        }
        if w.is_tail {
            // tail is last in flit order: the whole packet is accounted
            self.dooming.remove(&pid);
            self.xfer_of.remove(&pid);
            packets.remove(pid);
        }
        stats.flits_dropped += 1;
        // refund the output-VC credit switch allocation just consumed
        router.credit(w.out_port as usize, w.out_vc as usize)?;
        Ok(None)
    }

    /// Close the ledger entry of `xfer`, if one is open.
    fn close_pending(&mut self, xfer: u64) -> bool {
        if let Some(i) = self.pending_idx.remove(&xfer) {
            let p = &mut self.pending[i as usize];
            if !p.done {
                p.done = true;
                self.pending_open -= 1;
                return true;
            }
        }
        false
    }

    /// Drop closed entries once they dominate the ledger, so timeout
    /// scans stay proportional to *open* transfers.
    fn compact_pending(&mut self) {
        if self.pending.len() < 64 || self.pending_open * 2 >= self.pending.len() {
            return;
        }
        self.pending.retain(|p| !p.done);
        self.pending_idx.clear();
        for (i, p) in self.pending.iter().enumerate() {
            self.pending_idx.insert(p.xfer, i as u32);
        }
    }
}

impl Network {
    /// Install a fault plan. Must be called before the first step of
    /// the run; events are applied at the start of their cycle.
    ///
    /// # Panics
    /// If the network has already stepped, an event names a router or
    /// port outside the topology, or the plan fails
    /// [`FaultPlan::validate`]. Use [`Network::try_set_fault_plan`] to
    /// observe plan problems as typed errors instead.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = self.try_set_fault_plan(plan) {
            panic!("invalid fault plan: {e}");
        }
    }

    /// Validating twin of [`Network::set_fault_plan`]: probability and
    /// policy parameters plus event ranges are checked up front.
    ///
    /// # Errors
    /// [`ConfigError::Parameter`] naming the offending plan field.
    ///
    /// # Panics
    /// If the network has already stepped (a usage error, not a plan
    /// problem).
    pub fn try_set_fault_plan(&mut self, mut plan: FaultPlan) -> Result<(), ConfigError> {
        assert_eq!(self.cycle, 0, "install the fault plan before stepping");
        plan.validate()?;
        let n = self.num_nodes();
        let ports = self.topo.num_ports();
        for ev in &plan.events {
            let (router, port) = match *ev {
                FaultEvent::LinkFail { router, port, .. }
                | FaultEvent::LinkRepair { router, port, .. } => (router, Some(port)),
                FaultEvent::RouterFail { router, .. } | FaultEvent::RouterRepair { router, .. } => {
                    (router, None)
                }
            };
            if router >= n {
                return Err(ConfigError::Parameter {
                    name: "events",
                    why: format!("{ev:?} names router {router}, topology has {n}"),
                });
            }
            if let Some(port) = port {
                if !(1..ports).contains(&port) {
                    return Err(ConfigError::Parameter {
                        name: "events",
                        why: format!("{ev:?} names port {port}, valid ports are 1..{ports}"),
                    });
                }
            }
        }
        plan.events.sort_by_key(FaultEvent::cycle); // stable: ties keep plan order
        let rng = SimRng::new(plan.corrupt_seed);
        let link_lag =
            if plan.link_retry.is_some() { vec![0; self.links.len()] } else { Vec::new() };
        self.fault = Some(Box::new(FaultState {
            plan,
            next_event: 0,
            dead_link: vec![false; self.links.len()],
            link_failed: vec![false; self.links.len()],
            dead_router: vec![false; n],
            dead_links_count: 0,
            dead_routers_count: 0,
            link_lag,
            rng,
            dooming: HashMap::new(),
            xfer_of: HashMap::new(),
            resolved: HashSet::new(),
            pending: Vec::new(),
            pending_idx: HashMap::new(),
            pending_open: 0,
            next_deadline: Cycle::MAX,
            stats: FaultStats::default(),
        }));
        Ok(())
    }

    /// Degradation counters, when a fault plan is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| &f.stats)
    }

    /// True when no transfer is awaiting delivery or retransmission.
    /// `is_idle() && fault_settled()` means the run has fully resolved:
    /// every transfer was delivered or abandoned.
    pub fn fault_settled(&self) -> bool {
        self.fault.as_ref().is_none_or(|f| f.pending_open == 0)
    }

    /// The rerouting table, present once a permanent fault has fired.
    pub fn survivor_table(&self) -> Option<&SurvivorTable> {
        self.survivors.as_deref()
    }

    /// Per-cycle fault work, run before anything else in the cycle:
    /// apply due fault/repair events, then time out / retransmit /
    /// abandon open transfers.
    pub(super) fn fault_pre_step(&mut self, t: Cycle) {
        self.fault_apply_events(t);
        self.fault_retx_scan(t);
    }

    /// Earliest future cycle at which the fault layer itself must act:
    /// the next unapplied event or the next retransmission deadline.
    /// `None` when the installed plan is fully exhausted and settled —
    /// the quiescent-cycle fast-forward may then skip freely.
    pub(super) fn fault_next_wake(&self) -> Option<Cycle> {
        let f = self.fault.as_ref()?;
        let mut next = f.plan.events.get(f.next_event).map(FaultEvent::cycle);
        if f.pending_open > 0 {
            let d = f.next_deadline;
            next = Some(next.map_or(d, |n| n.min(d)));
        }
        next
    }

    /// Apply every event due by `t`. A batch that net-changes the
    /// surviving graph closes one epoch: the survivor table is rebuilt
    /// in place at the boundary (or dropped entirely when the epoch
    /// heals the last fault, handing routing back to the configured
    /// algorithm).
    fn fault_apply_events(&mut self, t: Cycle) {
        let mut changed = false;
        loop {
            let ev = {
                let f = self.fault.as_ref().expect("fault state present");
                match f.plan.events.get(f.next_event) {
                    Some(&ev) if ev.cycle() <= t => ev,
                    _ => break,
                }
            };
            self.fault.as_mut().expect("fault state present").next_event += 1;
            match ev {
                FaultEvent::LinkFail { router, port, .. } => {
                    let li = self.link_idx(router, port);
                    if self.links[li].is_some() {
                        let f = self.fault.as_mut().expect("fault state present");
                        if !f.link_failed[li] {
                            f.link_failed[li] = true;
                            f.stats.links_failed += 1;
                        }
                        changed |= self.fault_recompute_link(li);
                    }
                }
                FaultEvent::LinkRepair { router, port, .. } => {
                    let li = self.link_idx(router, port);
                    if self.links[li].is_some() {
                        let f = self.fault.as_mut().expect("fault state present");
                        if f.link_failed[li] {
                            f.link_failed[li] = false;
                            f.stats.links_repaired += 1;
                        }
                        changed |= self.fault_recompute_link(li);
                    }
                }
                FaultEvent::RouterFail { router, .. } => {
                    changed |= self.fault_kill_router(router);
                }
                FaultEvent::RouterRepair { router, .. } => {
                    changed |= self.fault_repair_router(router);
                }
            }
        }
        if changed {
            let f = self.fault.as_mut().expect("fault state present");
            f.stats.epochs += 1;
            if f.dead_links_count == 0 && f.dead_routers_count == 0 {
                // fully healed: back to the configured routing function
                self.survivors = None;
            } else if let Some(s) = self.survivors.as_deref_mut() {
                s.rebuild(self.topo.as_ref(), &f.dead_link, &f.dead_router);
            } else {
                self.survivors = Some(Box::new(SurvivorTable::build(
                    self.topo.as_ref(),
                    &f.dead_link,
                    &f.dead_router,
                )));
            }
        }
    }

    /// Re-derive channel `li`'s effective liveness from its cause
    /// ledger (own failure, endpoint routers); true when it flipped.
    fn fault_recompute_link(&mut self, li: usize) -> bool {
        let Some(link) = self.links[li].as_ref() else { return false };
        let src = li / (self.topo.num_ports() - 1);
        let dst = link.dst_router;
        let f = self.fault.as_mut().expect("fault state present");
        let dead = f.link_failed[li] || f.dead_router[src] || f.dead_router[dst];
        if f.dead_link[li] == dead {
            return false;
        }
        f.dead_link[li] = dead;
        if dead {
            f.dead_links_count += 1;
        } else {
            f.dead_links_count -= 1;
        }
        true
    }

    /// Fail-stop `router`: kill incident channels and its NI, discard
    /// its queued source packets.
    fn fault_kill_router(&mut self, router: usize) -> bool {
        {
            let f = self.fault.as_mut().expect("fault state present");
            if f.dead_router[router] {
                return false;
            }
            f.dead_router[router] = true;
            f.dead_routers_count += 1;
            f.stats.routers_failed += 1;
        }
        let ports = self.topo.num_ports();
        for p in 1..ports {
            let li = self.link_idx(router, p);
            self.fault_recompute_link(li);
            let ui = self.up_link[li];
            if ui != u32::MAX {
                self.fault_recompute_link(ui as usize);
            }
        }
        // will this router come back? if so, its open transfers stay
        // open for the retransmission protocol to recover after repair
        let revives = {
            let f = self.fault.as_ref().expect("fault state present");
            f.plan.events[f.next_event..]
                .iter()
                .any(|ev| matches!(*ev, FaultEvent::RouterRepair { router: r, .. } if r == router))
        };
        // discard packets still queued at the dead NI (none of their
        // flits exist yet, so flit conservation is untouched); their
        // transfers are abandoned immediately unless a repair of this
        // router is still scheduled — then somebody IS left to
        // retransmit them, and the ledger keeps them open
        for c in 0..self.cfg.classes {
            while let Some(pid) = self.nis[router].class_q[c].pop_front() {
                self.inj_backlog -= 1;
                self.packets.remove(pid);
                let f = self.fault.as_mut().expect("fault state present");
                f.stats.packets_dropped += 1;
                if let Some(x) = f.xfer_of.remove(&pid) {
                    if !revives && f.close_pending(x) {
                        f.stats.transfers_abandoned += 1;
                        f.resolved.insert(x);
                    }
                }
            }
        }
        true
    }

    /// Revive `router`: its NI resumes pulling and accepting packets,
    /// and incident channels with no independent failure come back.
    fn fault_repair_router(&mut self, router: usize) -> bool {
        {
            let f = self.fault.as_mut().expect("fault state present");
            if !f.dead_router[router] {
                return false;
            }
            f.dead_router[router] = false;
            f.dead_routers_count -= 1;
            f.stats.routers_repaired += 1;
        }
        let ports = self.topo.num_ports();
        for p in 1..ports {
            let li = self.link_idx(router, p);
            self.fault_recompute_link(li);
            let ui = self.up_link[li];
            if ui != u32::MAX {
                self.fault_recompute_link(ui as usize);
            }
        }
        true
    }

    /// Scan the retransmission ledger for due deadlines.
    fn fault_retx_scan(&mut self, t: Cycle) {
        let Some(policy) = self.fault.as_ref().and_then(|f| f.plan.retx) else { return };
        {
            let f = self.fault.as_mut().expect("fault state present");
            if f.pending_open == 0 || t < f.next_deadline {
                return;
            }
            f.compact_pending();
        }
        let len = self.fault.as_ref().expect("fault state present").pending.len();
        let mut next_deadline = Cycle::MAX;
        for idx in 0..len {
            let (node, spec, xfer, attempt) = {
                let f = self.fault.as_ref().expect("fault state present");
                let p = &f.pending[idx];
                if p.done {
                    continue;
                }
                if p.deadline > t {
                    next_deadline = next_deadline.min(p.deadline);
                    continue;
                }
                (p.node, p.spec, p.xfer, p.attempt)
            };
            let unreachable =
                {
                    let f = self.fault.as_ref().expect("fault state present");
                    f.dead_router[node] || f.dead_router[spec.dst]
                } || self.survivors.as_ref().is_some_and(|s| !s.reachable(node, spec.dst));
            if unreachable {
                // while the plan still holds unapplied events, a repair
                // may restore the path: defer instead of abandoning
                // (deferral is not an attempt, so the budget is kept)
                let more_events = {
                    let f = self.fault.as_ref().expect("fault state present");
                    f.next_event < f.plan.events.len()
                };
                let f = self.fault.as_mut().expect("fault state present");
                if more_events {
                    let p = &mut f.pending[idx];
                    p.deadline = t + policy.timeout;
                    next_deadline = next_deadline.min(p.deadline);
                } else if f.close_pending(xfer) {
                    f.stats.transfers_abandoned += 1;
                    f.resolved.insert(xfer);
                }
                continue;
            }
            if policy.max_attempts > 0 && attempt >= policy.max_attempts {
                let f = self.fault.as_mut().expect("fault state present");
                if f.close_pending(xfer) {
                    f.stats.transfers_abandoned += 1;
                    f.resolved.insert(xfer);
                }
                continue;
            }
            // retransmit: a fresh packet carrying the same spec
            let route = self.routing.init(self.topo.as_ref(), node, spec.dst, &mut self.rng);
            let pid = self.packets.insert(Packet {
                uid: 0,
                src: node,
                dst: spec.dst,
                size: spec.size,
                class: spec.class,
                birth: t,
                inject: u64::MAX,
                route,
                payload: spec.payload,
            });
            self.nis[node].class_q[spec.class as usize].push_back(pid);
            self.inj_backlog += 1;
            super::bit_set(&mut self.ni_work, node);
            let f = self.fault.as_mut().expect("fault state present");
            f.xfer_of.insert(pid, xfer);
            f.stats.retransmissions += 1;
            let p = &mut f.pending[idx];
            p.attempt += 1;
            p.deadline = t + policy.timeout_for(p.attempt);
            next_deadline = next_deadline.min(p.deadline);
        }
        self.fault.as_mut().expect("fault state present").next_deadline = next_deadline;
    }

    /// True when `node`'s NI is dead (no pulls, deliveries lost).
    pub(super) fn fault_node_dead(&self, node: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| f.dead_router[node])
    }

    /// Open a transfer for a freshly pulled non-self packet.
    pub(super) fn fault_register(
        &mut self,
        node: usize,
        pid: PacketId,
        spec: PacketSpec,
        t: Cycle,
    ) {
        let uid = self.packets.get(pid).uid;
        let f = self.fault.as_mut().expect("fault state present");
        f.stats.transfers_started += 1;
        f.xfer_of.insert(pid, uid);
        if let Some(policy) = f.plan.retx {
            let deadline = t + policy.timeout;
            f.pending_idx.insert(uid, f.pending.len() as u32);
            f.pending.push(PendingTx { node, spec, xfer: uid, deadline, attempt: 1, done: false });
            f.pending_open += 1;
            f.next_deadline = f.next_deadline.min(deadline);
        }
    }

    /// Fault bookkeeping for a tail flit reaching NI `node`. Returns
    /// true when the delivery should proceed (not a duplicate, not a
    /// dead NI); with no fault plan installed this is always true.
    pub(super) fn fault_on_tail(&mut self, node: usize, pid: PacketId) -> bool {
        let Some(f) = self.fault.as_mut() else { return true };
        let xfer = f.xfer_of.remove(&pid);
        if f.dead_router[node] {
            f.stats.packets_dropped += 1;
            return false;
        }
        if let Some(x) = xfer {
            if !f.resolved.insert(x) {
                f.stats.duplicate_deliveries += 1;
                return false;
            }
            f.stats.transfers_delivered += 1;
            f.close_pending(x);
        }
        true
    }

    /// Fault-layer consistency laws, re-derived from scratch for the
    /// runtime sanitizer: every effective dead-channel bit must equal
    /// its cause ledger (own failure OR either endpoint router down),
    /// and the cached population counts must match the bit vectors.
    #[cfg(feature = "sanitize")]
    pub(super) fn sanitize_fault_consistency(&self, t: Cycle) -> Result<(), SimError> {
        let Some(f) = self.fault.as_ref() else { return Ok(()) };
        let ports1 = self.topo.num_ports() - 1;
        let mut dead_links = 0usize;
        for (li, link) in self.links.iter().enumerate() {
            let Some(link) = link.as_ref() else {
                if f.dead_link[li] || f.link_failed[li] {
                    return Err(SimError::Invariant {
                        cycle: t,
                        check: "fault consistency",
                        detail: format!("nonexistent channel {li} is marked failed or dead"),
                    });
                }
                continue;
            };
            let src = li / ports1;
            let expect = f.link_failed[li] || f.dead_router[src] || f.dead_router[link.dst_router];
            if f.dead_link[li] != expect {
                return Err(SimError::Invariant {
                    cycle: t,
                    check: "fault consistency",
                    detail: format!(
                        "channel {li} (router {src} -> {}): effective dead={} but cause \
                         ledger says {} (failed={}, src dead={}, dst dead={})",
                        link.dst_router,
                        f.dead_link[li],
                        expect,
                        f.link_failed[li],
                        f.dead_router[src],
                        f.dead_router[link.dst_router],
                    ),
                });
            }
            dead_links += f.dead_link[li] as usize;
        }
        let dead_routers = f.dead_router.iter().filter(|&&d| d).count();
        if dead_links != f.dead_links_count || dead_routers != f.dead_routers_count {
            return Err(SimError::Invariant {
                cycle: t,
                check: "fault consistency",
                detail: format!(
                    "population counts drifted: {dead_links} dead channels (cached {}), \
                     {dead_routers} dead routers (cached {})",
                    f.dead_links_count, f.dead_routers_count
                ),
            });
        }
        if (f.dead_links_count > 0 || f.dead_routers_count > 0) != self.survivors.is_some() {
            return Err(SimError::Invariant {
                cycle: t,
                check: "fault consistency",
                detail: format!(
                    "survivor table presence ({}) disagrees with dead sets ({} links, \
                     {} routers)",
                    self.survivors.is_some(),
                    f.dead_links_count,
                    f.dead_routers_count
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetConfig, TopologyKind};

    #[test]
    fn timeout_for_is_shift_safe_for_huge_attempt_counts() {
        let p = RetxPolicy { timeout: 100, backoff_cap: 10_000, max_attempts: 200 };
        assert_eq!(p.timeout_for(1), 100);
        assert_eq!(p.timeout_for(2), 200);
        assert_eq!(p.timeout_for(8), 10_000, "capped");
        // attempts past 64 used to overflow the shift; now they saturate
        assert_eq!(p.timeout_for(65), 10_000);
        assert_eq!(p.timeout_for(u32::MAX), 10_000);
        // a cap below the base timeout never shrinks attempt 1
        let q = RetxPolicy { timeout: 500, backoff_cap: 10, max_attempts: 0 };
        assert_eq!(q.timeout_for(1), 500);
        assert_eq!(q.timeout_for(90), 500);
    }

    #[test]
    fn plan_validation_rejects_bad_probabilities_and_policies() {
        let ok = FaultPlan { corrupt_rate: 0.5, ..FaultPlan::default() };
        assert!(ok.validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let p = FaultPlan { corrupt_rate: bad, ..FaultPlan::default() };
            assert!(p.validate().is_err(), "corrupt_rate {bad} must be rejected");
        }
        let p = FaultPlan {
            retx: Some(RetxPolicy { timeout: 0, ..RetxPolicy::default() }),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            link_retry: Some(LinkRetryPolicy { replay_rtt: 0, ..LinkRetryPolicy::default() }),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            link_retry: Some(LinkRetryPolicy { max_replays: 0, ..LinkRetryPolicy::default() }),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn try_set_fault_plan_surfaces_range_errors_as_config_errors() {
        let mut net =
            Network::new(NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }))
                .unwrap();
        let err = net
            .try_set_fault_plan(FaultPlan {
                events: vec![FaultEvent::LinkRepair { cycle: 0, router: 99, port: 1 }],
                ..FaultPlan::default()
            })
            .unwrap_err();
        assert!(matches!(err, ConfigError::Parameter { name: "events", .. }), "{err}");
        let err = net
            .try_set_fault_plan(FaultPlan { corrupt_rate: 2.0, ..FaultPlan::default() })
            .unwrap_err();
        assert!(matches!(err, ConfigError::Parameter { name: "corrupt_rate", .. }), "{err}");
    }

    #[test]
    fn repair_events_restore_the_surviving_graph_and_count_epochs() {
        let mut net =
            Network::new(NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }))
                .unwrap();
        net.set_fault_plan(FaultPlan {
            events: vec![
                FaultEvent::LinkFail { cycle: 5, router: 5, port: 1 },
                FaultEvent::RouterFail { cycle: 10, router: 10 },
                FaultEvent::RouterRepair { cycle: 20, router: 10 },
                FaultEvent::LinkRepair { cycle: 30, router: 5, port: 1 },
            ],
            ..FaultPlan::default()
        });
        struct Idle;
        impl crate::network::NodeBehavior for Idle {
            fn pull(&mut self, _: usize, _: Cycle) -> Option<PacketSpec> {
                None
            }
            fn deliver(&mut self, _: usize, _: &crate::flit::Delivered, _: Cycle) {}
            fn quiescent(&self) -> bool {
                true
            }
        }
        let mut b = Idle;
        net.run(6, &mut b);
        assert!(net.survivor_table().is_some(), "one dead link installs the table");
        let s = net.fault_stats().unwrap();
        assert_eq!((s.links_failed, s.epochs), (1, 1));
        net.run(10, &mut b);
        let s = net.fault_stats().unwrap();
        assert_eq!((s.routers_failed, s.epochs), (1, 2));
        net.run(10, &mut b);
        let s = net.fault_stats().unwrap();
        assert_eq!((s.routers_repaired, s.epochs), (1, 3));
        assert!(net.survivor_table().is_some(), "link 5:1 is still down");
        net.run(10, &mut b);
        let s = net.fault_stats().unwrap();
        assert_eq!((s.links_repaired, s.epochs), (1, 4));
        assert!(net.survivor_table().is_none(), "fully healed: configured routing resumes");
    }
}
