//! Opt-in in-simulation observability.
//!
//! When enabled (via [`crate::config::NetConfig::metrics`] or
//! [`crate::network::Network::enable_metrics`]), the engine records
//! cycle-bucketed per-channel flit counts, per-router buffer occupancy,
//! and credit-stall / switch-conflict counters, so a run can answer
//! "which link saturated, and when" instead of only end-of-run
//! aggregates.
//!
//! # Cost model
//!
//! The collector is a `Option<Box<...>>` field on the network, exactly
//! like the fault layer: when disabled the entire subsystem is one
//! branch per cycle and the simulation is bit-identical to an
//! uninstrumented run (the digest proptests pin this). When enabled,
//! per-cycle work is O(routers) (occupancy sampling) plus O(links) once
//! per bin — the per-channel counts are *diffed* from the engine's
//! existing [`crate::channel::Link::flits_carried`] ledger at bin
//! boundaries rather than hooked per flit, so even instrumented runs
//! add no work to the flit hot path.
//!
//! The collector only ever *reads* engine state (counters, occupancy);
//! it never touches the RNG, buffers, or schedules, which is what makes
//! the metrics-on digest guarantee structural rather than accidental.

use serde::{Deserialize, Serialize};

use noc_stats::{OnlineStats, TimeSeries};

use crate::channel::Link;
use crate::flit::Cycle;
use crate::network::NetStats;
use crate::router::RouterSlab;

/// Default metrics bin width in cycles — fine enough to localize
/// saturation onsets in the quick test configurations, coarse enough
/// that a million-cycle run stays a few thousand bins.
pub const DEFAULT_BIN_WIDTH: u64 = 256;

/// Cycle-bucketed flit counts for one directed channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelMetrics {
    /// Source router of the channel.
    pub src: usize,
    /// Output port at the source router (1-based; 0 is ejection).
    pub port: usize,
    /// Destination router.
    pub dst: usize,
    /// Total flits carried over the run — equals the engine's
    /// [`crate::channel::Link::flits_carried`] ledger for this link.
    pub total: u64,
    /// Binned flit counts; rate = flits/cycle over each bin.
    pub flits: TimeSeries,
}

impl ChannelMetrics {
    /// Peak per-cycle rate over all bins and the start cycle of the bin
    /// where it first occurred. `(0.0, 0)` for an idle channel.
    pub fn peak(&self) -> (f64, Cycle) {
        let mut best = (0.0f64, 0u64);
        for (start, rate) in self.flits.rates() {
            if rate > best.0 {
                best = (rate, start);
            }
        }
        best
    }

    /// Mean utilization (flits/cycle) over `cycles` simulated cycles.
    pub fn utilization(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total as f64 / cycles as f64
        }
    }

    /// Start cycle of the first bin whose rate reached `frac` of the
    /// channel's peak rate — "when did this link saturate". `None` for
    /// an idle channel.
    pub fn saturated_at(&self, frac: f64) -> Option<Cycle> {
        let (peak, _) = self.peak();
        if peak <= 0.0 {
            return None;
        }
        self.flits.rates().into_iter().find(|&(_, r)| r >= frac * peak).map(|(start, _)| start)
    }
}

/// Per-router counters and occupancy statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterMetrics {
    /// Router id.
    pub id: usize,
    /// Buffered-flit occupancy, sampled once per cycle while metrics
    /// were enabled.
    pub occupancy: OnlineStats,
    /// Switch bids rejected for lack of downstream credits
    /// ([`crate::router::PipelineStats::sa_credit_starved`]).
    pub credit_stalls: u64,
    /// Switch bids that lost output-port arbitration
    /// ([`crate::router::PipelineStats::sa_conflicts`]).
    pub sa_conflicts: u64,
    /// VC-allocation attempts that found no free output VC.
    pub va_blocked: u64,
}

/// Everything the collector recorded, in plain-data form.
///
/// Produced by [`crate::network::Network::metrics_snapshot`]; rendering
/// and JSON export live in the `core` crate's figure layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Bin width in cycles.
    pub bin_width: u64,
    /// Cycles simulated when the snapshot was taken.
    pub cycles: Cycle,
    /// Per-channel cycle-bucketed flit counts (connected links only).
    pub channels: Vec<ChannelMetrics>,
    /// Per-router occupancy and stall counters.
    pub routers: Vec<RouterMetrics>,
    /// Network-wide buffered-flit occupancy; each cycle contributes its
    /// total buffered flits, so a bin's rate is the mean occupancy over
    /// that bin.
    pub occupancy: TimeSeries,
    /// Network-wide injection over time (flits/cycle per bin).
    pub injected: TimeSeries,
    /// Network-wide credit stalls over time (events/cycle per bin).
    pub credit_stalls: TimeSeries,
    /// Network-wide switch conflicts over time (events/cycle per bin).
    pub sa_conflicts: TimeSeries,
    /// Engine ledger echo: total flits injected.
    pub flits_injected: u64,
    /// Engine ledger echo: total flits carried across all links — must
    /// equal the sum of per-channel totals (conservation).
    pub link_flits: u64,
}

impl MetricsSnapshot {
    /// Channels sorted by total flits, busiest first.
    pub fn hottest_channels(&self) -> Vec<&ChannelMetrics> {
        let mut v: Vec<&ChannelMetrics> = self.channels.iter().collect();
        v.sort_by(|a, b| b.total.cmp(&a.total).then(a.src.cmp(&b.src)).then(a.port.cmp(&b.port)));
        v
    }

    /// Conservation check: the sum of per-channel totals must equal the
    /// engine's link ledger. Returns the two sums on mismatch.
    pub fn check_conservation(&self) -> Result<(), (u64, u64)> {
        let sum: u64 = self.channels.iter().map(|c| c.total).sum();
        if sum == self.link_flits {
            Ok(())
        } else {
            Err((sum, self.link_flits))
        }
    }
}

/// The in-engine collector. Owned by the network as an
/// `Option<Box<Collector>>`; all methods only read engine state.
#[derive(Debug)]
pub(crate) struct Collector {
    bin_width: u64,
    /// `flits_carried` at the last bin flush, per link slot (same
    /// indexing as the network's link vector, `u64::MAX` for gaps).
    prev_link: Vec<u64>,
    /// Binned per-channel counts, parallel to `prev_link`.
    link_series: Vec<TimeSeries>,
    /// Network-wide counter values at the last bin flush.
    prev_injected: u64,
    prev_stalls: u64,
    prev_conflicts: u64,
    /// Cycle up to which bins have been flushed (exclusive).
    flushed_to: Cycle,
    per_router_occ: Vec<OnlineStats>,
    occupancy: TimeSeries,
    injected: TimeSeries,
    credit_stalls: TimeSeries,
    sa_conflicts: TimeSeries,
}

impl Collector {
    /// New collector for a network with `links` link slots and `routers`
    /// routers.
    pub(crate) fn new(bin_width: u64, links: usize, routers: usize) -> Self {
        assert!(bin_width > 0, "metrics bin width must be positive");
        Self {
            bin_width,
            prev_link: vec![0; links],
            link_series: (0..links).map(|_| TimeSeries::new(bin_width)).collect(),
            prev_injected: 0,
            prev_stalls: 0,
            prev_conflicts: 0,
            flushed_to: 0,
            per_router_occ: (0..routers).map(|_| OnlineStats::new()).collect(),
            occupancy: TimeSeries::new(bin_width),
            injected: TimeSeries::new(bin_width),
            credit_stalls: TimeSeries::new(bin_width),
            sa_conflicts: TimeSeries::new(bin_width),
        }
    }

    /// Baseline the delta trackers to the engine's current counters, so
    /// a collector enabled mid-run reports only traffic from now on in
    /// its binned series (totals still echo the absolute ledgers).
    pub(crate) fn resync(
        &mut self,
        links: &[Option<Link>],
        routers: &RouterSlab,
        stats: &NetStats,
    ) {
        for (i, slot) in links.iter().enumerate() {
            if let Some(l) = slot.as_ref() {
                self.prev_link[i] = l.flits_carried;
            }
        }
        let mut stalls = 0u64;
        let mut conflicts = 0u64;
        for p in routers.pipelines() {
            stalls += p.sa_credit_starved;
            conflicts += p.sa_conflicts;
        }
        self.prev_stalls = stalls;
        self.prev_conflicts = conflicts;
        self.prev_injected = stats.flits_injected;
    }

    /// Record cycle `t`. Called once per cycle after the pipeline stages
    /// ran; flushes counter deltas into bins at bin boundaries.
    pub(crate) fn tick(
        &mut self,
        t: Cycle,
        routers: &RouterSlab,
        links: &[Option<Link>],
        stats: &NetStats,
    ) {
        let mut total_occ = 0u64;
        for (&o, occ) in routers.occupancies().iter().zip(self.per_router_occ.iter_mut()) {
            occ.push(o as f64);
            total_occ += o as u64;
        }
        self.occupancy.push(t, total_occ as f64);
        if (t + 1).is_multiple_of(self.bin_width) {
            self.flush(t, links, stats);
            self.flush_pipeline(t, routers);
        }
    }

    /// Fold counter deltas since the last flush into the bin containing
    /// cycle `t`.
    fn flush(&mut self, t: Cycle, links: &[Option<Link>], stats: &NetStats) {
        for (i, slot) in links.iter().enumerate() {
            let Some(link) = slot.as_ref() else { continue };
            let delta = link.flits_carried - self.prev_link[i];
            if delta > 0 {
                self.link_series[i].push(t, delta as f64);
                self.prev_link[i] = link.flits_carried;
            }
        }
        let inj = stats.flits_injected;
        if inj > self.prev_injected {
            self.injected.push(t, (inj - self.prev_injected) as f64);
            self.prev_injected = inj;
        }
        self.flushed_to = t + 1;
    }

    /// Flush pipeline-counter deltas since the last bin boundary.
    fn flush_pipeline(&mut self, t: Cycle, routers: &RouterSlab) {
        let mut stalls = 0u64;
        let mut conflicts = 0u64;
        for p in routers.pipelines() {
            stalls += p.sa_credit_starved;
            conflicts += p.sa_conflicts;
        }
        if stalls > self.prev_stalls {
            self.credit_stalls.push(t, (stalls - self.prev_stalls) as f64);
            self.prev_stalls = stalls;
        }
        if conflicts > self.prev_conflicts {
            self.sa_conflicts.push(t, (conflicts - self.prev_conflicts) as f64);
            self.prev_conflicts = conflicts;
        }
    }

    /// Build the plain-data snapshot, flushing any partial bin first so
    /// totals match the engine ledgers exactly.
    pub(crate) fn snapshot(
        &mut self,
        cycle: Cycle,
        ports: usize,
        routers: &RouterSlab,
        links: &[Option<Link>],
        stats: &NetStats,
    ) -> MetricsSnapshot {
        if cycle > self.flushed_to {
            self.flush(cycle - 1, links, stats);
            self.flush_pipeline(cycle - 1, routers);
        }
        let mut channels = Vec::new();
        let mut link_flits = 0u64;
        for (i, slot) in links.iter().enumerate() {
            let Some(link) = slot.as_ref() else { continue };
            link_flits += link.flits_carried;
            channels.push(ChannelMetrics {
                src: i / (ports - 1),
                port: i % (ports - 1) + 1,
                dst: link.dst_router,
                total: link.flits_carried,
                flits: self.link_series[i].clone(),
            });
        }
        let router_metrics = routers
            .pipelines()
            .iter()
            .zip(self.per_router_occ.iter())
            .enumerate()
            .map(|(i, (p, occ))| RouterMetrics {
                id: i,
                occupancy: occ.clone(),
                credit_stalls: p.sa_credit_starved,
                sa_conflicts: p.sa_conflicts,
                va_blocked: p.va_blocked,
            })
            .collect();
        MetricsSnapshot {
            bin_width: self.bin_width,
            cycles: cycle,
            channels,
            routers: router_metrics,
            occupancy: self.occupancy.clone(),
            injected: self.injected.clone(),
            credit_stalls: self.credit_stalls.clone(),
            sa_conflicts: self.sa_conflicts.clone(),
            flits_injected: stats.flits_injected,
            link_flits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_peak_and_saturation() {
        let mut c =
            ChannelMetrics { src: 0, port: 1, dst: 1, total: 0, flits: TimeSeries::new(10) };
        // ramp: bin 0 quiet, bin 1 half rate, bin 2 peak
        c.flits.push(5, 1.0);
        c.flits.push(15, 5.0);
        c.flits.push(25, 10.0);
        c.total = 16;
        let (peak, at) = c.peak();
        assert!((peak - 1.0).abs() < 1e-12);
        assert_eq!(at, 20);
        assert_eq!(c.saturated_at(0.45), Some(10), "half-rate bin crosses 45% of peak");
        assert_eq!(c.saturated_at(0.95), Some(20));
        assert!((c.utilization(32) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_channel_never_saturates() {
        let c = ChannelMetrics { src: 0, port: 1, dst: 1, total: 0, flits: TimeSeries::new(10) };
        assert_eq!(c.peak(), (0.0, 0));
        assert_eq!(c.saturated_at(0.9), None);
        assert_eq!(c.utilization(0), 0.0);
    }
}
