//! Property tests on topologies, routing algorithms, and the VC
//! partition — the deadlock-freedom preconditions.

use proptest::prelude::*;

use noc_sim::rng::SimRng;
use noc_sim::routing::{
    dor_port, minimal_ports, Dor, MinAdaptive, Romm, RouteState, RoutingAlgorithm, Valiant, VcBook,
};
use noc_sim::topology::{KAryNCube, Topology};

fn topo_strategy() -> impl Strategy<Value = KAryNCube> {
    (2usize..7, 2usize..7, prop::bool::ANY).prop_map(|(kx, ky, wrap)| {
        if wrap {
            KAryNCube::torus(&[kx, ky])
        } else {
            KAryNCube::mesh(&[kx, ky])
        }
    })
}

/// Walk a route taking candidate index `pick % len` at each hop.
fn walk(
    topo: &dyn Topology,
    algo: &dyn RoutingAlgorithm,
    src: usize,
    dst: usize,
    seed: u64,
    adversarial_pick: bool,
) -> Vec<usize> {
    let mut rng = SimRng::new(seed);
    let mut state = algo.init(topo, src, dst, &mut rng);
    let mut cur = src;
    let mut path = vec![cur];
    for step in 0..4 * topo.num_nodes() {
        let cands = algo.candidates(topo, cur, dst, &state);
        if cands.is_empty() {
            break;
        }
        let idx = if adversarial_pick { step % cands.len() } else { 0 };
        let port = cands.get(idx);
        state = algo.advance(topo, cur, port, dst, &state);
        cur = topo.neighbor(cur, port).expect("candidate port connected").0;
        path.push(cur);
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dor_is_minimal_everywhere(topo in topo_strategy(), seed in 0u64..100) {
        let n = topo.num_nodes();
        let mut rng = SimRng::new(seed);
        let src = rng.below(n);
        let dst = rng.below(n);
        let path = walk(&topo, &Dor, src, dst, seed, false);
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert_eq!(path.len() - 1, topo.min_hops(src, dst));
    }

    #[test]
    fn two_phase_routes_terminate_and_visit_mid(
        topo in topo_strategy(),
        seed in 0u64..100,
    ) {
        let n = topo.num_nodes();
        let mut rng = SimRng::new(seed ^ 1);
        let src = rng.below(n);
        let dst = rng.below(n);
        for algo in [&Valiant as &dyn RoutingAlgorithm, &Romm] {
            let mut init_rng = SimRng::new(seed);
            let state = algo.init(&topo, src, dst, &mut init_rng);
            let path = walk(&topo, algo, src, dst, seed, false);
            prop_assert_eq!(*path.last().unwrap(), dst, "{} must reach dst", algo.name());
            if state.intermediate != usize::MAX {
                prop_assert!(path.contains(&state.intermediate),
                    "{} must pass its intermediate", algo.name());
            }
        }
    }

    #[test]
    fn adaptive_any_choice_stays_minimal(
        topo in topo_strategy(),
        seed in 0u64..100,
    ) {
        let n = topo.num_nodes();
        let mut rng = SimRng::new(seed ^ 2);
        let src = rng.below(n);
        let dst = rng.below(n);
        // even when an adversary picks among candidates, MA stays minimal
        let path = walk(&topo, &MinAdaptive, src, dst, seed, true);
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert_eq!(path.len() - 1, topo.min_hops(src, dst));
    }

    #[test]
    fn minimal_ports_all_reduce_distance(topo in topo_strategy(), seed in 0u64..200) {
        let n = topo.num_nodes();
        let mut rng = SimRng::new(seed ^ 3);
        let src = rng.below(n);
        let dst = rng.below(n);
        prop_assume!(src != dst);
        let ports = minimal_ports(&topo, src, dst);
        prop_assert!(!ports.is_empty());
        let d0 = topo.min_hops(src, dst);
        for p in ports.iter() {
            let next = topo.neighbor(src, p).expect("connected").0;
            prop_assert_eq!(topo.min_hops(next, dst), d0 - 1);
        }
        // the DOR port is always the first candidate
        prop_assert_eq!(ports.get(0), dor_port(&topo, src, dst).unwrap());
    }

    #[test]
    fn links_reciprocal_on_random_cubes(topo in topo_strategy()) {
        for node in 0..topo.num_nodes() {
            for port in 1..topo.num_ports() {
                if let Some((m, q)) = topo.neighbor(node, port) {
                    prop_assert_eq!(topo.neighbor(m, q), Some((node, port)));
                }
            }
        }
    }

    #[test]
    fn vcbook_masks_are_disjoint_by_class(
        topo in topo_strategy(),
        vcs_per_block in 1usize..4,
        classes in 1usize..3,
    ) {
        // choose a VC count the partition accepts for DOR
        let need = if topo.has_wrap() { 2 } else { 1 };
        let block = vcs_per_block.max(need);
        let vcs = classes * block;
        let book = match VcBook::new(vcs, classes, &Dor, &topo) {
            Ok(b) => b,
            Err(_) => return Ok(()), // undersized combos are rejected, fine
        };
        let mut union = 0u64;
        for c in 0..classes {
            let m = book.class_mask(c);
            prop_assert!(m != 0);
            prop_assert_eq!(union & m, 0, "class masks must be disjoint");
            union |= m;
            // allowed masks stay within the class mask
            for dateline in [false, true] {
                let a = book.allowed(c, 0, dateline, false);
                prop_assert!(a != 0);
                prop_assert_eq!(a & !m, 0);
            }
            prop_assert_eq!(book.injection(c) & !m, 0);
        }
        // the union covers exactly vcs bits
        prop_assert_eq!(union.count_ones() as usize, vcs);
    }

    #[test]
    fn dateline_masks_disjoint_on_wrapped_topologies(
        k in 3usize..7,
        classes in 1usize..3,
    ) {
        let topo = KAryNCube::torus(&[k, k]);
        let vcs = classes * 2;
        let book = VcBook::new(vcs, classes, &Dor, &topo).unwrap();
        for c in 0..classes {
            let lo = book.allowed(c, 0, false, false);
            let hi = book.allowed(c, 0, true, false);
            prop_assert!(lo != 0 && hi != 0);
            prop_assert_eq!(lo & hi, 0, "dateline halves must not overlap");
        }
    }

    #[test]
    fn route_state_effective_target_flips_exactly_at_mid(
        mid in 0usize..16,
        dst in 0usize..16,
        cur in 0usize..16,
    ) {
        let s = RouteState::via(mid);
        let t = s.effective_target(cur, dst);
        if cur == mid {
            prop_assert_eq!(t, dst);
        } else {
            prop_assert_eq!(t, mid);
        }
    }
}
