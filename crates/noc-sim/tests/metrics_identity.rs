//! The observability layer must be *observation only*: enabling
//! metrics collection — at construction or mid-run — cannot change a
//! single delivery. These property tests pin that with the delivery
//! digest, a cycle-exact FNV-1a fingerprint of the full delivery
//! stream: equal digests mean the instrumented and uninstrumented runs
//! delivered exactly the same packets at exactly the same cycles.
//!
//! The CI matrix also runs this file with `--features sanitize`, so the
//! per-cycle conservation sanitizer watches both runs too.

use proptest::prelude::*;

use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;

/// Bernoulli single-flit uniform-random injector, deterministic in its
/// seed — both the instrumented and plain runs build identical copies.
struct Injector {
    rng: SimRng,
    p: f64,
    nodes: usize,
    polled: Vec<Cycle>,
}

impl Injector {
    fn new(nodes: usize, p: f64, seed: u64) -> Self {
        Self { rng: SimRng::new(seed), p, nodes, polled: vec![Cycle::MAX; nodes] }
    }
}

impl NodeBehavior for Injector {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        // one Bernoulli draw per node per cycle, like the open-loop driver
        if self.polled[node] == cycle {
            return None;
        }
        self.polled[node] = cycle;
        if !self.rng.chance(self.p) {
            return None;
        }
        let dst = self.rng.below(self.nodes);
        Some(PacketSpec { dst, size: 1, class: 0, payload: 0 })
    }

    fn deliver(&mut self, _node: usize, _d: &Delivered, _cycle: Cycle) {}

    fn quiescent(&self) -> bool {
        false // an open-loop source never stops by itself
    }
}

fn cfg_strategy() -> impl Strategy<Value = (NetConfig, u64, f64)> {
    let topo =
        prop_oneof![Just(TopologyKind::Mesh2D { k: 4 }), Just(TopologyKind::Torus2D { k: 4 }),];
    let routing = prop_oneof![
        Just(RoutingKind::Dor),
        Just(RoutingKind::Valiant),
        Just(RoutingKind::MinAdaptive),
    ];
    (topo, routing, 0u64..1000, 1u64..4).prop_map(|(t, r, seed, load)| {
        let vcs = if matches!(r, RoutingKind::Dor) { 2 } else { 4 };
        let cfg =
            NetConfig::baseline().with_topology(t).with_routing(r).with_vcs(vcs).with_seed(seed);
        (cfg, seed, load as f64 * 0.05)
    })
}

/// Run `cycles` cycles and return the full stats fingerprint.
fn run_plain(cfg: &NetConfig, p: f64, seed: u64, cycles: u64) -> (u64, u64, u64, u64) {
    let mut net = Network::new(cfg.clone()).unwrap();
    let mut b = Injector::new(net.num_nodes(), p, seed ^ 0xabcd);
    net.run(cycles, &mut b);
    let s = net.stats();
    (s.delivery_digest, s.flits_injected, s.flits_ejected, s.packets_delivered)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn metrics_on_is_bit_identical_to_metrics_off(
        (cfg, seed, p) in cfg_strategy(),
        bin in prop_oneof![Just(64u64), Just(128), Just(257)],
    ) {
        let cycles = 2_000;
        let plain = run_plain(&cfg, p, seed, cycles);

        let mut net = Network::new(cfg.clone().with_metrics(bin)).unwrap();
        prop_assert!(net.metrics_enabled());
        let mut b = Injector::new(net.num_nodes(), p, seed ^ 0xabcd);
        net.run(cycles, &mut b);
        let s = net.stats();
        let instrumented =
            (s.delivery_digest, s.flits_injected, s.flits_ejected, s.packets_delivered);
        prop_assert_eq!(plain, instrumented,
            "metrics collection perturbed the simulation (bin {})", bin);

        // and the snapshot itself must conserve flits against the
        // engine's own ledgers
        let snap = net.metrics_snapshot().expect("metrics were enabled");
        prop_assert_eq!(snap.cycles, cycles);
        prop_assert_eq!(snap.flits_injected, plain.1);
        prop_assert!(snap.check_conservation().is_ok(),
            "channel totals must sum to the link ledger: {:?}", snap.check_conservation());
        let series_total: f64 = snap.channels.iter().map(|c| c.flits.total()).sum();
        prop_assert_eq!(series_total as u64, snap.link_flits,
            "binned series must account for every link traversal");
    }

    #[test]
    fn enabling_metrics_mid_run_is_also_invisible(
        (cfg, seed, p) in cfg_strategy(),
    ) {
        let cycles = 2_000;
        let plain = run_plain(&cfg, p, seed, cycles);

        let mut net = Network::new(cfg.clone()).unwrap();
        prop_assert!(!net.metrics_enabled());
        let mut b = Injector::new(net.num_nodes(), p, seed ^ 0xabcd);
        net.run(cycles / 2, &mut b);
        net.enable_metrics(128);
        net.run(cycles - cycles / 2, &mut b);
        let s = net.stats();
        let instrumented =
            (s.delivery_digest, s.flits_injected, s.flits_ejected, s.packets_delivered);
        prop_assert_eq!(plain, instrumented, "mid-run enable perturbed the simulation");

        // the resynced collector baselines at the enable point, so the
        // snapshot still conserves (totals are absolute ledger echoes)
        let snap = net.metrics_snapshot().expect("metrics were enabled");
        prop_assert!(snap.check_conservation().is_ok());
    }
}
