//! Network-level stress tests: request/reply protocols, adversarial
//! permutations near saturation, wormhole interleaving with bimodal
//! sizes, escape-VC pressure for adaptive routing, and arbitration
//! policy effects — the situations where VC partitioning bugs would
//! surface as deadlock or packet loss.

use std::collections::VecDeque;

use noc_sim::config::{Arbitration, NetConfig, RoutingKind, TopologyKind};
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;

/// A miniature request/reply protocol directly over the network: every
/// node fires `reqs` requests as fast as possible; each request's
/// destination issues a reply; completion = all replies back.
struct ReqReply {
    remaining: Vec<u64>,
    outstanding: u64,
    replies_pending: Vec<VecDeque<usize>>,
    polled: Vec<Cycle>,
    rng: SimRng,
    nodes: usize,
    completed: u64,
}

impl ReqReply {
    fn new(nodes: usize, reqs: u64, seed: u64) -> Self {
        Self {
            remaining: vec![reqs; nodes],
            outstanding: 0,
            replies_pending: vec![VecDeque::new(); nodes],
            polled: vec![Cycle::MAX; nodes],
            rng: SimRng::new(seed),
            nodes,
            completed: 0,
        }
    }
}

impl NodeBehavior for ReqReply {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        if let Some(dst) = self.replies_pending[node].pop_front() {
            return Some(PacketSpec { dst, size: 3, class: 1, payload: 0 });
        }
        if self.polled[node] == cycle || self.remaining[node] == 0 {
            return None;
        }
        self.polled[node] = cycle;
        self.remaining[node] -= 1;
        self.outstanding += 1;
        let dst = self.rng.below(self.nodes);
        Some(PacketSpec { dst, size: 1, class: 0, payload: 0 })
    }

    fn deliver(&mut self, node: usize, d: &Delivered, _cycle: Cycle) {
        if d.class == 0 {
            self.replies_pending[node].push_back(d.src);
        } else {
            self.outstanding -= 1;
            self.completed += 1;
        }
    }

    fn quiescent(&self) -> bool {
        self.remaining.iter().all(|&r| r == 0)
            && self.outstanding == 0
            && self.replies_pending.iter().all(|q| q.is_empty())
    }
}

#[test]
fn request_reply_protocol_never_deadlocks_at_full_pressure() {
    // every node streams requests with NO outstanding limit: maximum
    // protocol pressure. Class partitioning must keep replies draining.
    for topo in [TopologyKind::Mesh2D { k: 4 }, TopologyKind::Torus2D { k: 4 }] {
        let cfg = NetConfig::baseline().with_topology(topo).with_vcs(4).with_classes(2);
        let mut net = Network::new(cfg).unwrap();
        let mut b = ReqReply::new(16, 150, 9);
        assert!(net.drain(&mut b, 2_000_000), "deadlock under {topo:?}");
        assert_eq!(b.completed, 16 * 150);
    }
}

/// A simple scripted source used by the remaining tests.
struct Storm {
    sends: Vec<(Cycle, usize, usize, u16)>,
    delivered: u64,
    flits: u64,
}

impl Storm {
    fn random(
        nodes: usize,
        packets: usize,
        window: u64,
        sizes: &[u16],
        seed: u64,
        pattern: impl Fn(usize, &mut SimRng) -> usize,
    ) -> Self {
        let mut rng = SimRng::new(seed);
        let sends = (0..packets)
            .map(|i| {
                let src = rng.below(nodes);
                let dst = pattern(src, &mut rng);
                let size = sizes[rng.below(sizes.len())];
                (i as u64 % window, src, dst, size)
            })
            .collect();
        Self { sends, delivered: 0, flits: 0 }
    }
}

impl NodeBehavior for Storm {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        let idx = self.sends.iter().position(|&(c, s, ..)| s == node && c <= cycle)?;
        let (_, _, dst, size) = self.sends.remove(idx);
        Some(PacketSpec { dst, size, class: 0, payload: 0 })
    }

    fn deliver(&mut self, _node: usize, d: &Delivered, _cycle: Cycle) {
        self.delivered += 1;
        self.flits += d.size as u64;
    }

    fn quiescent(&self) -> bool {
        self.sends.is_empty()
    }
}

#[test]
fn tornado_on_torus_drains_with_dateline_vcs() {
    // tornado is the adversarial pattern for wrap topologies: everyone
    // travels almost half-way around in the same rotational direction,
    // maximizing dateline crossings
    let k = 8;
    let cfg =
        NetConfig::baseline().with_topology(TopologyKind::Torus2D { k }).with_vcs(2).with_seed(3);
    let mut net = Network::new(cfg).unwrap();
    let shift = k / 2 - 1;
    let mut b = Storm::random(64, 2_000, 400, &[1], 4, move |src, _| {
        let (x, y) = (src % k, src / k);
        ((y + shift) % k) * k + (x + shift) % k
    });
    assert!(net.drain(&mut b, 2_000_000), "tornado deadlocked the torus");
    assert_eq!(b.delivered, 2_000);
}

#[test]
fn bimodal_wormhole_storm_conserves_flits() {
    let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 8 }).with_vc_buf(2);
    let mut net = Network::new(cfg).unwrap();
    // exclude self-traffic so delivered flits equal fabric flits exactly
    let mut b = Storm::random(64, 3_000, 1_500, &[1, 4], 11, |src, rng| loop {
        let d = rng.below(64);
        if d != src {
            break d;
        }
    });
    assert!(net.drain(&mut b, 2_000_000));
    assert_eq!(b.delivered, 3_000);
    assert_eq!(net.stats().flits_injected, net.stats().flits_ejected);
    assert_eq!(b.flits, net.stats().flits_ejected, "every flit accounted");
}

#[test]
fn adaptive_routing_under_transpose_uses_escape_safely() {
    // transpose + MA: heavy diagonal pressure forces escape-VC usage
    let cfg = NetConfig::baseline()
        .with_routing(RoutingKind::MinAdaptive)
        .with_vcs(4)
        .with_vc_buf(2)
        .with_seed(5);
    let k = 8;
    let mut net = Network::new(cfg).unwrap();
    let mut b = Storm::random(64, 4_000, 1_000, &[1], 6, move |src, _| {
        let (x, y) = (src % k, src / k);
        x * k + y
    });
    assert!(net.drain(&mut b, 2_000_000), "MA deadlocked under transpose");
    assert_eq!(b.delivered, 4_000);
}

#[test]
fn valiant_mesh_storm_survives_min_buffers() {
    // 1-flit buffers + multi-flit packets + two-phase routing is the
    // tightest wormhole configuration (the exact regime where the
    // phase-transition VC bug would deadlock)
    let cfg = NetConfig::baseline()
        .with_routing(RoutingKind::Valiant)
        .with_vcs(4)
        .with_vc_buf(1)
        .with_seed(7);
    let mut net = Network::new(cfg).unwrap();
    let mut b = Storm::random(64, 1_500, 800, &[1, 4], 8, |_, rng| rng.below(64));
    assert!(net.drain(&mut b, 3_000_000), "VAL deadlocked at vc_buf=1");
    assert_eq!(b.delivered, 1_500);
}

#[test]
fn age_based_arbitration_bounds_worst_case_latency() {
    // under sustained load, age-based arbitration should not let any
    // packet starve; its worst-case latency should not exceed round-robin's
    // by much, and typically improves it
    let run = |arb: Arbitration| -> (u64, Cycle) {
        struct Tracker {
            inner: Storm,
            worst: Cycle,
        }
        impl NodeBehavior for Tracker {
            fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
                self.inner.pull(node, cycle)
            }
            fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
                self.worst = self.worst.max(cycle - d.birth);
                self.inner.deliver(node, d, cycle);
            }
            fn quiescent(&self) -> bool {
                self.inner.quiescent()
            }
        }
        let cfg = NetConfig::baseline()
            .with_topology(TopologyKind::Mesh2D { k: 4 })
            .with_arbitration(arb)
            .with_seed(13);
        let mut net = Network::new(cfg).unwrap();
        let mut b = Tracker {
            inner: Storm::random(16, 2_000, 4_000, &[1], 14, |_, rng| rng.below(16)),
            worst: 0,
        };
        assert!(net.drain(&mut b, 1_000_000));
        (b.inner.delivered, b.worst)
    };
    let (d_rr, worst_rr) = run(Arbitration::RoundRobin);
    let (d_age, worst_age) = run(Arbitration::AgeBased);
    assert_eq!(d_rr, 2_000);
    assert_eq!(d_age, 2_000);
    assert!(
        (worst_age as f64) < 1.5 * worst_rr as f64,
        "age-based worst {worst_age} vs rr {worst_rr}"
    );
}

#[test]
fn hotspot_pressure_drains() {
    // everyone hammers node 0; ejection bandwidth (1 flit/cycle) is the
    // bottleneck, but nothing may deadlock or get lost
    let cfg = NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 });
    let mut net = Network::new(cfg).unwrap();
    let mut b = Storm::random(16, 2_000, 500, &[1], 21, |src, rng| {
        if src == 0 || rng.below(10) > 7 {
            rng.below(16)
        } else {
            0
        }
    });
    assert!(net.drain(&mut b, 1_000_000));
    assert_eq!(b.delivered, 2_000);
    // node 0 received the bulk of traffic
    let got0 = net.stats().node_delivered[0];
    let rest_max = net.stats().node_delivered[1..].iter().max().copied().unwrap_or(0);
    assert!(got0 > 3 * rest_max, "hotspot {got0} vs max other {rest_max}");
}
