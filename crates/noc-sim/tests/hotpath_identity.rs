//! The event-driven hot path (active-router worklists, NI bitsets,
//! quiescent-cycle fast-forward) must be observationally invisible:
//! property tests pin the delivery digest — a cycle-exact FNV-1a
//! fingerprint of the full delivery stream — of [`Network::try_step`]
//! against the naive full-scan reference sweep
//! (`Network::try_step_reference`) across topologies, routings, loads,
//! and the fault/metrics toggles. Fault scenarios include timed
//! fault-and-repair timelines and both recovery modes (end-to-end
//! retransmission and link-level retry), so the fault-aware
//! fast-forward — jumping to the next link/NI event, fault event, or
//! retransmission deadline — is digest-checked against the per-cycle
//! scan.
//!
//! The CI matrix also runs this file with `--features sanitize`, so the
//! per-cycle conservation sanitizer watches both sweeps too.

use proptest::prelude::*;

use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::fault::{FaultEvent, FaultPlan, LinkRetryPolicy, RetxPolicy};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;

/// Bernoulli uniform-random injector with a hard generation cutoff,
/// deterministic in its seed — both sweeps build identical copies.
struct Injector {
    rng: SimRng,
    p: f64,
    size: u16,
    nodes: usize,
    cutoff: Cycle,
    done: bool,
    polled: Vec<Cycle>,
    delivered: Vec<(usize, u64, Cycle)>,
}

impl Injector {
    fn new(nodes: usize, p: f64, size: u16, cutoff: Cycle, seed: u64) -> Self {
        Self {
            rng: SimRng::new(seed),
            p,
            size,
            nodes,
            cutoff,
            done: false,
            polled: vec![Cycle::MAX; nodes],
            delivered: Vec::new(),
        }
    }
}

impl NodeBehavior for Injector {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        if cycle >= self.cutoff {
            self.done = true;
            return None;
        }
        // one Bernoulli draw per node per cycle, like the open-loop driver
        if self.polled[node] == cycle {
            return None;
        }
        self.polled[node] = cycle;
        if !self.rng.chance(self.p) {
            return None;
        }
        let dst = self.rng.below(self.nodes);
        Some(PacketSpec { dst, size: self.size, class: 0, payload: 0 })
    }

    fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
        self.delivered.push((node, d.uid, cycle));
    }

    fn quiescent(&self) -> bool {
        self.done
    }
}

/// How a scenario exercises the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// No fault plan installed.
    None,
    /// Permanent faults, end-to-end retransmission (the PR 3 shape).
    Permanent,
    /// Fault-and-repair timeline, end-to-end retransmission.
    Intermittent,
    /// Fault-and-repair timeline, link-level retry AND retransmission.
    LinkRetry,
    /// Repairs land long after injection stops, so the network sits
    /// quiescent waiting on fault events and deferred retransmission
    /// deadlines — the scenario where fault-aware fast-forward pays.
    LateRepair,
}

#[derive(Debug, Clone, Copy)]
struct Scenario {
    cfg_topo: TopologyKind,
    cfg_routing: RoutingKind,
    seed: u64,
    load: f64,
    size: u16,
    fault_mode: FaultMode,
    with_metrics: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let topo =
        prop_oneof![Just(TopologyKind::Mesh2D { k: 4 }), Just(TopologyKind::Torus2D { k: 4 })];
    let routing = prop_oneof![
        Just(RoutingKind::Dor),
        Just(RoutingKind::Valiant),
        Just(RoutingKind::Romm),
        Just(RoutingKind::MinAdaptive),
    ];
    let fault_mode = prop_oneof![
        Just(FaultMode::None),
        Just(FaultMode::Permanent),
        Just(FaultMode::Intermittent),
        Just(FaultMode::LinkRetry),
        Just(FaultMode::LateRepair),
    ];
    (topo, routing, 0u64..1000, 1u64..5, 1u16..4, fault_mode, prop::bool::ANY).prop_map(
        |(cfg_topo, cfg_routing, seed, load, size, fault_mode, with_metrics)| Scenario {
            cfg_topo,
            cfg_routing,
            seed,
            load: load as f64 * 0.04,
            size,
            fault_mode,
            with_metrics,
        },
    )
}

fn plan_for(s: &Scenario) -> Option<FaultPlan> {
    let retx = Some(RetxPolicy { timeout: 64, backoff_cap: 256, max_attempts: 3 });
    match s.fault_mode {
        FaultMode::None => None,
        FaultMode::Permanent => Some(FaultPlan {
            events: vec![
                FaultEvent::LinkFail { cycle: 40, router: 5, port: 1 },
                FaultEvent::RouterFail { cycle: 90, router: 10 },
            ],
            corrupt_rate: 0.01,
            corrupt_seed: s.seed ^ 0xfa11,
            retx,
            link_retry: None,
        }),
        FaultMode::Intermittent | FaultMode::LinkRetry => Some(FaultPlan {
            events: vec![
                FaultEvent::LinkFail { cycle: 40, router: 5, port: 1 },
                FaultEvent::RouterFail { cycle: 90, router: 10 },
                FaultEvent::RouterRepair { cycle: 140, router: 10 },
                FaultEvent::LinkRepair { cycle: 170, router: 5, port: 1 },
            ],
            corrupt_rate: 0.01,
            corrupt_seed: s.seed ^ 0xfa11,
            retx,
            link_retry: (s.fault_mode == FaultMode::LinkRetry).then_some(LinkRetryPolicy {
                replay_rtt: 4,
                max_replays: 2,
                buf_depth: 4,
            }),
        }),
        FaultMode::LateRepair => Some(FaultPlan {
            events: vec![
                FaultEvent::LinkFail { cycle: 40, router: 5, port: 1 },
                FaultEvent::RouterFail { cycle: 90, router: 10 },
                FaultEvent::RouterRepair { cycle: 600, router: 10 },
                FaultEvent::LinkRepair { cycle: 700, router: 5, port: 1 },
            ],
            corrupt_rate: 0.02,
            corrupt_seed: s.seed ^ 0xfa11,
            retx,
            link_retry: None,
        }),
    }
}

/// `(node, uid, cycle)` delivery log entries as observed by the behavior.
type DeliveryLog = Vec<(usize, u64, Cycle)>;

/// Run one scenario with either the event-driven or the reference
/// sweep; return the digest, the behavior-observed delivery log, the
/// final cycle, the headline counters, and the number of steps taken
/// (steps < cycles proves fast-forward engaged).
fn run(s: &Scenario, reference: bool) -> (u64, DeliveryLog, Cycle, u64, u64, u64) {
    let mut cfg = NetConfig::baseline()
        .with_topology(s.cfg_topo)
        .with_routing(s.cfg_routing)
        .with_vcs(4)
        .with_seed(s.seed);
    if s.with_metrics {
        cfg = cfg.with_metrics(64);
    }
    let mut net = Network::new(cfg).unwrap();
    let with_fault = if let Some(plan) = plan_for(s) {
        net.set_fault_plan(plan);
        true
    } else {
        false
    };
    let cutoff = 200;
    let mut b = Injector::new(net.num_nodes(), s.load / s.size as f64, s.size, cutoff, s.seed ^ 1);
    let mut steps = 0u64;
    while !(net.is_idle() && net.fault_settled() && b.quiescent()) || net.cycle() < cutoff {
        if reference {
            net.try_step_reference(&mut b).unwrap();
        } else {
            net.try_step(&mut b).unwrap();
        }
        steps += 1;
        assert!(steps < 100_000, "run did not settle");
        if with_fault && net.cycle() > 20_000 {
            break; // abandoned retransmissions can wait out long timeouts
        }
    }
    let stats = net.stats();
    (
        stats.delivery_digest,
        b.delivered,
        net.cycle(),
        stats.flits_injected,
        stats.flits_ejected,
        steps,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The worklist sweep and the full-scan reference sweep are
    /// bit-identical in every observable: digest, per-delivery log,
    /// final cycle, and flit counters — including fault-and-repair
    /// timelines under both recovery modes, where the fast sweep
    /// fast-forwards over quiescent stretches and the reference walks
    /// every cycle.
    #[test]
    fn hot_path_matches_reference_sweep(s in scenario_strategy()) {
        let fast = run(&s, false);
        let slow = run(&s, true);
        prop_assert_eq!(fast.0, slow.0, "delivery digest diverged for {:?}", s);
        prop_assert_eq!(&fast.1, &slow.1, "delivery log diverged for {:?}", s);
        prop_assert_eq!(fast.2, slow.2, "final cycle diverged for {:?}", s);
        prop_assert_eq!(fast.3, slow.3, "flits_injected diverged for {:?}", s);
        prop_assert_eq!(fast.4, slow.4, "flits_ejected diverged for {:?}", s);
    }
}

/// Deterministic spot check (always runs, even when proptest shrinks
/// its case budget): the highest-contrast scenario — torus, adaptive
/// routing, an intermittent fault/repair timeline with link-level
/// retry, and metrics on.
#[test]
fn hot_path_identity_smoke() {
    for fault_mode in [FaultMode::Permanent, FaultMode::Intermittent, FaultMode::LinkRetry] {
        let s = Scenario {
            cfg_topo: TopologyKind::Torus2D { k: 4 },
            cfg_routing: RoutingKind::MinAdaptive,
            seed: 7,
            load: 0.12,
            size: 3,
            fault_mode,
            with_metrics: true,
        };
        let fast = run(&s, false);
        let slow = run(&s, true);
        assert_eq!(fast.0, slow.0, "delivery digest diverged ({fault_mode:?})");
        assert_eq!(fast.1, slow.1, "delivery log diverged ({fault_mode:?})");
        assert_eq!(fast.2, slow.2, "final cycle diverged ({fault_mode:?})");
    }
}

/// Fault-plan runs regain event-driven speed: with retransmission
/// timeouts creating long quiescent stretches, the fast sweep must
/// take strictly fewer steps than simulated cycles (the reference
/// twin, by construction, steps every cycle — and the digest identity
/// above proves the jumps are invisible).
#[test]
fn fault_runs_fast_forward_over_dead_time() {
    let s = Scenario {
        cfg_topo: TopologyKind::Mesh2D { k: 4 },
        cfg_routing: RoutingKind::Dor,
        seed: 11,
        load: 0.08,
        size: 2,
        fault_mode: FaultMode::LateRepair,
        with_metrics: false,
    };
    let fast = run(&s, false);
    let slow = run(&s, true);
    assert_eq!(fast.0, slow.0, "digest diverged");
    assert!(
        fast.5 < fast.2,
        "expected fast-forward under a fault plan: {} steps for {} cycles",
        fast.5,
        fast.2
    );
    assert_eq!(slow.5, slow.2, "reference sweep must step every cycle");
}
