//! The event-driven hot path (active-router worklists, NI bitsets,
//! quiescent-cycle fast-forward) must be observationally invisible:
//! property tests pin the delivery digest — a cycle-exact FNV-1a
//! fingerprint of the full delivery stream — of [`Network::try_step`]
//! against the naive full-scan reference sweep
//! (`Network::try_step_reference`) across topologies, routings, loads,
//! and the fault/metrics toggles.
//!
//! The CI matrix also runs this file with `--features sanitize`, so the
//! per-cycle conservation sanitizer watches both sweeps too.

use proptest::prelude::*;

use noc_sim::config::{NetConfig, RoutingKind, TopologyKind};
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::fault::{FaultEvent, FaultPlan, RetxPolicy};
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::rng::SimRng;

/// Bernoulli uniform-random injector with a hard generation cutoff,
/// deterministic in its seed — both sweeps build identical copies.
struct Injector {
    rng: SimRng,
    p: f64,
    size: u16,
    nodes: usize,
    cutoff: Cycle,
    done: bool,
    polled: Vec<Cycle>,
    delivered: Vec<(usize, u64, Cycle)>,
}

impl Injector {
    fn new(nodes: usize, p: f64, size: u16, cutoff: Cycle, seed: u64) -> Self {
        Self {
            rng: SimRng::new(seed),
            p,
            size,
            nodes,
            cutoff,
            done: false,
            polled: vec![Cycle::MAX; nodes],
            delivered: Vec::new(),
        }
    }
}

impl NodeBehavior for Injector {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        if cycle >= self.cutoff {
            self.done = true;
            return None;
        }
        // one Bernoulli draw per node per cycle, like the open-loop driver
        if self.polled[node] == cycle {
            return None;
        }
        self.polled[node] = cycle;
        if !self.rng.chance(self.p) {
            return None;
        }
        let dst = self.rng.below(self.nodes);
        Some(PacketSpec { dst, size: self.size, class: 0, payload: 0 })
    }

    fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
        self.delivered.push((node, d.uid, cycle));
    }

    fn quiescent(&self) -> bool {
        self.done
    }
}

#[derive(Debug, Clone, Copy)]
struct Scenario {
    cfg_topo: TopologyKind,
    cfg_routing: RoutingKind,
    seed: u64,
    load: f64,
    size: u16,
    with_fault: bool,
    with_metrics: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let topo =
        prop_oneof![Just(TopologyKind::Mesh2D { k: 4 }), Just(TopologyKind::Torus2D { k: 4 })];
    let routing = prop_oneof![
        Just(RoutingKind::Dor),
        Just(RoutingKind::Valiant),
        Just(RoutingKind::Romm),
        Just(RoutingKind::MinAdaptive),
    ];
    (topo, routing, 0u64..1000, 1u64..5, 1u16..4, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(cfg_topo, cfg_routing, seed, load, size, with_fault, with_metrics)| Scenario {
            cfg_topo,
            cfg_routing,
            seed,
            load: load as f64 * 0.04,
            size,
            with_fault,
            with_metrics,
        },
    )
}

/// `(node, uid, cycle)` delivery log entries as observed by the behavior.
type DeliveryLog = Vec<(usize, u64, Cycle)>;

/// Run one scenario with either the event-driven or the reference
/// sweep; return the digest, the behavior-observed delivery log, the
/// final cycle, and the headline counters.
fn run(s: &Scenario, reference: bool) -> (u64, DeliveryLog, Cycle, u64, u64) {
    let mut cfg = NetConfig::baseline()
        .with_topology(s.cfg_topo)
        .with_routing(s.cfg_routing)
        .with_vcs(4)
        .with_seed(s.seed);
    if s.with_metrics {
        cfg = cfg.with_metrics(64);
    }
    let mut net = Network::new(cfg).unwrap();
    if s.with_fault {
        net.set_fault_plan(FaultPlan {
            events: vec![
                FaultEvent::LinkFail { cycle: 40, router: 5, port: 1 },
                FaultEvent::RouterFail { cycle: 90, router: 10 },
            ],
            corrupt_rate: 0.01,
            corrupt_seed: s.seed ^ 0xfa11,
            retx: Some(RetxPolicy { timeout: 64, backoff_cap: 256, max_attempts: 3 }),
        });
    }
    let cutoff = 200;
    let mut b = Injector::new(net.num_nodes(), s.load / s.size as f64, s.size, cutoff, s.seed ^ 1);
    let mut guard = 0u64;
    while !(net.is_idle() && b.quiescent()) || net.cycle() < cutoff {
        if reference {
            net.try_step_reference(&mut b).unwrap();
        } else {
            net.try_step(&mut b).unwrap();
        }
        guard += 1;
        assert!(guard < 100_000, "run did not settle");
        if s.with_fault && net.cycle() > 20_000 {
            break; // abandoned retransmissions can wait out long timeouts
        }
    }
    let stats = net.stats();
    (stats.delivery_digest, b.delivered, net.cycle(), stats.flits_injected, stats.flits_ejected)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The worklist sweep and the full-scan reference sweep are
    /// bit-identical in every observable: digest, per-delivery log,
    /// final cycle, and flit counters.
    #[test]
    fn hot_path_matches_reference_sweep(s in scenario_strategy()) {
        let fast = run(&s, false);
        let slow = run(&s, true);
        prop_assert_eq!(fast.0, slow.0, "delivery digest diverged for {:?}", s);
        prop_assert_eq!(&fast.1, &slow.1, "delivery log diverged for {:?}", s);
        prop_assert_eq!(fast.2, slow.2, "final cycle diverged for {:?}", s);
        prop_assert_eq!(fast.3, slow.3, "flits_injected diverged for {:?}", s);
        prop_assert_eq!(fast.4, slow.4, "flits_ejected diverged for {:?}", s);
    }
}

/// Deterministic spot check (always runs, even when proptest shrinks
/// its case budget): the highest-contrast scenario — torus, adaptive
/// routing, faults and metrics both on.
#[test]
fn hot_path_identity_smoke() {
    let s = Scenario {
        cfg_topo: TopologyKind::Torus2D { k: 4 },
        cfg_routing: RoutingKind::MinAdaptive,
        seed: 7,
        load: 0.12,
        size: 3,
        with_fault: true,
        with_metrics: true,
    };
    let fast = run(&s, false);
    let slow = run(&s, true);
    assert_eq!(fast.0, slow.0, "delivery digest diverged");
    assert_eq!(fast.1, slow.1, "delivery log diverged");
    assert_eq!(fast.2, slow.2, "final cycle diverged");
}
