//! CI fault smoke test: a small mesh with failed links must degrade
//! gracefully — every transfer delivered via retransmission, exact
//! ledger accounting, and (under `--features sanitize`) all simulator
//! conservation invariants intact while links are dead.

use noc_fault::{run_faulted, FaultConfig, FaultSchedule};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};

fn base() -> OpenLoopConfig {
    OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
        ..OpenLoopConfig::default()
    }
    .quick()
    .with_load(0.15)
}

#[test]
fn fault_smoke_two_dead_links_full_delivery() {
    let base = base();
    // two permanent link failures force rerouting; the transient
    // corruption rate guarantees some packets are actually swallowed so
    // full delivery exercises the retransmission path, not just rerouting
    let fault_cfg = FaultConfig {
        seed: 2026,
        link_failures: 2,
        fail_at: base.warmup,
        corrupt_rate: 2e-3,
        ..FaultConfig::default()
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::generate(&fault_cfg, topo.as_ref());

    // the scenario must be survivable before we demand full delivery
    let lint = noc_verify::check_fault_connectivity(&base.net, &schedule.events);
    assert!(lint.is_certified(), "{lint}");

    let p = run_faulted(&base, schedule.plan(Some(Default::default())), 2, 100_000)
        .expect("smoke scenario must settle");
    assert!(
        p.delivered.is_complete(),
        "delivered {} with {} abandoned, {} dropped",
        p.delivered,
        p.abandoned,
        p.packets_dropped
    );
    assert_eq!(p.abandoned, 0);
    assert!(p.packets_dropped > 0, "the corruption rate must actually swallow packets");
    assert!(p.retransmissions > 0, "recovering dropped packets requires retransmission");
}

#[test]
fn fault_smoke_replays_bit_identically() {
    let base = base();
    let fault_cfg = FaultConfig {
        seed: 99,
        link_failures: 3,
        fail_at: base.warmup / 2,
        ..FaultConfig::default()
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::generate(&fault_cfg, topo.as_ref());
    let run = || {
        run_faulted(&base, schedule.plan(Some(Default::default())), 3, 100_000)
            .expect("scenario must settle")
    };
    assert_eq!(run(), run(), "same schedule, same traffic, different outcome");
}
