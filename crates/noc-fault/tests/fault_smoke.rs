//! CI fault smoke tests: a small mesh with failed links must degrade
//! gracefully — every transfer delivered via retransmission, exact
//! ledger accounting, and (under `--features sanitize`) all simulator
//! conservation invariants intact while links are dead. The
//! intermittent scenario additionally rides through a fault-and-repair
//! timeline and must reach full delivery once the final repair epoch
//! has healed the fabric.

use noc_exp::PointOutcome;
use noc_fault::{
    resilience_sweep, run_faulted, FaultConfig, FaultSchedule, RecoveryMode, ResilienceConfig,
};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};

fn base() -> OpenLoopConfig {
    OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
        ..OpenLoopConfig::default()
    }
    .quick()
    .with_load(0.15)
}

#[test]
fn fault_smoke_two_dead_links_full_delivery() {
    let base = base();
    // two permanent link failures force rerouting; the transient
    // corruption rate guarantees some packets are actually swallowed so
    // full delivery exercises the retransmission path, not just rerouting
    let fault_cfg = FaultConfig {
        seed: 2026,
        link_failures: 2,
        fail_at: base.warmup,
        corrupt_rate: 2e-3,
        ..FaultConfig::default()
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::generate(&fault_cfg, topo.as_ref());

    // the scenario must be survivable before we demand full delivery
    let lint = noc_verify::check_fault_connectivity(&base.net, &schedule.events);
    assert!(lint.is_certified(), "{lint}");

    let p = run_faulted(&base, schedule.plan(Some(Default::default())), 2, 100_000)
        .expect("smoke scenario must settle");
    assert!(
        p.delivered.is_complete(),
        "delivered {} with {} abandoned, {} dropped",
        p.delivered,
        p.abandoned,
        p.packets_dropped
    );
    assert_eq!(p.abandoned, 0);
    assert!(p.packets_dropped > 0, "the corruption rate must actually swallow packets");
    assert!(p.retransmissions > 0, "recovering dropped packets requires retransmission");
}

/// The robustness acceptance scenario: links flap up and down through
/// the measurement window (every outage repaired before it ends), and
/// with end-to-end retransmission armed — alone or combined with
/// link-level retry — the run must settle with *every* transfer
/// delivered after the final repair epoch. Runs under
/// `--features sanitize` in CI, so the per-cycle conservation laws and
/// the fault-consistency law watch the whole timeline.
#[test]
fn fault_smoke_intermittent_full_delivery_after_final_repair() {
    let base = base();
    for mode in [RecoveryMode::EndToEnd, RecoveryMode::Combined] {
        let cfg = ResilienceConfig {
            settle_max: 100_000,
            ..ResilienceConfig::new(base.clone(), vec![(500, 80)])
        }
        .with_recovery(mode);
        let out = resilience_sweep(&cfg);
        let PointOutcome::Ok(p) = &out[0] else {
            panic!("intermittent smoke point must settle ({mode:?}): {out:?}")
        };
        assert!(p.availability < 1.0, "the timeline must actually flap ({mode:?})");
        assert!(p.epochs >= 2, "outage + repair must each close an epoch ({mode:?})");
        assert!(
            p.delivered.is_complete(),
            "{mode:?}: delivered {} with {} abandoned after the final repair epoch",
            p.delivered,
            p.abandoned
        );
        assert_eq!(p.abandoned, 0, "{mode:?}: nothing may be abandoned once the fabric heals");
        if mode == RecoveryMode::Combined {
            assert!(
                p.link_replays > 0,
                "combined recovery must exercise the link-level replay path"
            );
        }
    }
}

#[test]
fn fault_smoke_replays_bit_identically() {
    let base = base();
    let fault_cfg = FaultConfig {
        seed: 99,
        link_failures: 3,
        fail_at: base.warmup / 2,
        ..FaultConfig::default()
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::generate(&fault_cfg, topo.as_ref());
    let run = || {
        run_faulted(&base, schedule.plan(Some(Default::default())), 3, 100_000)
            .expect("scenario must settle")
    };
    assert_eq!(run(), run(), "same schedule, same traffic, different outcome");
}
