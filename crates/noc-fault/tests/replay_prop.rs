//! Property tests for fault-scenario replay and crash-proof grids:
//! permanent schedules, intermittent fault-and-repair timelines, and
//! full resilience measurements must all be bit-identical functions of
//! their seeds, independent of run count or worker thread count.

use noc_exp::{run_grid_robust, PointOutcome};
use noc_fault::{
    resilience_sweep, resilience_sweep_serial, FaultConfig, FaultSchedule, FlapConfig,
    RecoveryMode, ResilienceConfig,
};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};
use noc_sim::FaultEvent;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Same (seed, topology, request) -> bit-identical fault schedule,
    /// for any seed, any failure counts (including oversized), and
    /// every supported topology family.
    #[test]
    fn fault_schedule_replays_bit_identically(
        seed in 0u64..u64::MAX,
        links in 0usize..64,
        routers in 0usize..32,
        fail_at in 0u64..10_000,
        kind in prop_oneof![
            Just(TopologyKind::Mesh2D { k: 4 }),
            Just(TopologyKind::Torus2D { k: 4 }),
            Just(TopologyKind::FoldedTorus2D { k: 3 }),
            Just(TopologyKind::Ring { n: 9 }),
        ],
    ) {
        let cfg = FaultConfig { seed, link_failures: links, router_failures: routers, fail_at, corrupt_rate: 1e-4 };
        let topo = kind.build();
        let a = FaultSchedule::generate(&cfg, topo.as_ref());
        let b = FaultSchedule::generate(&cfg, topo.as_ref());
        prop_assert_eq!(&a, &b);
        // every event fires at the configured cycle, and link failures
        // never exceed twice the request (both directions per link)
        prop_assert!(a.events.iter().all(|e| e.cycle() == fail_at));
        let link_events = a.events.iter()
            .filter(|e| matches!(e, noc_sim::FaultEvent::LinkFail { .. }))
            .count();
        prop_assert!(link_events <= 2 * links);
        prop_assert_eq!(link_events % 2, 0);
    }

    /// Same (seed, topology, flap parameters) -> bit-identical
    /// intermittent timeline, and every generated timeline is
    /// well-formed: sorted by cycle, confined to `(start, horizon)`,
    /// alternating fail/repair per directed channel, fully healed at
    /// the end.
    #[test]
    fn intermittent_timeline_replays_bit_identically(
        seed in 0u64..u64::MAX,
        links in 0usize..8,
        mtbf in 1u64..3_000,
        mttr in 1u64..500,
        kind in prop_oneof![
            Just(TopologyKind::Mesh2D { k: 4 }),
            Just(TopologyKind::Torus2D { k: 4 }),
            Just(TopologyKind::Ring { n: 9 }),
        ],
    ) {
        let cfg = FlapConfig { seed, links, mtbf, mttr, start: 64, horizon: 16_384, corrupt_rate: 1e-4 };
        let topo = kind.build();
        let a = FaultSchedule::try_generate_intermittent(&cfg, topo.as_ref()).unwrap();
        let b = FaultSchedule::try_generate_intermittent(&cfg, topo.as_ref()).unwrap();
        prop_assert_eq!(&a, &b);

        let cycles: Vec<u64> = a.events.iter().map(FaultEvent::cycle).collect();
        prop_assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(cycles.iter().all(|&c| c > cfg.start && c < cfg.horizon));
        let mut down = std::collections::HashMap::new();
        for e in &a.events {
            match *e {
                FaultEvent::LinkFail { router, port, .. } => {
                    prop_assert!(!down.insert((router, port), true).unwrap_or(false));
                }
                FaultEvent::LinkRepair { router, port, .. } => {
                    prop_assert_eq!(down.insert((router, port), false), Some(true));
                }
                ref other => prop_assert!(false, "unexpected event {:?}", other),
            }
        }
        prop_assert!(down.values().all(|&d| !d), "timeline must end healed");
        prop_assert!(a.last_repair_cycle().is_none() == a.events.is_empty());
    }

    /// A grid with one panicking point reports `Panicked` for exactly
    /// that point and clean results for every other — and the parallel
    /// engine agrees with a serial evaluation of the same closure.
    #[test]
    fn panicking_point_never_poisons_the_grid(
        n in 2usize..24,
        bad_seed in 0u64..1000,
    ) {
        let points: Vec<u64> = (0..n as u64).collect();
        let bad = bad_seed % n as u64;
        let eval = |_i: usize, &p: &u64| {
            if p == bad {
                panic!("injected failure at point {p}");
            }
            Ok(p * p)
        };
        let par = run_grid_robust(&points, eval);
        let ser: Vec<PointOutcome<u64>> = points
            .iter()
            .map(|&p| {
                if p == bad {
                    PointOutcome::Panicked { message: format!("injected failure at point {p}") }
                } else {
                    PointOutcome::Ok(p * p)
                }
            })
            .collect();
        prop_assert_eq!(par, ser);
    }
}

proptest! {
    // full simulations per case: keep the case budget small
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A full resilience measurement — flap timeline, recovery
    /// machinery, settling — is a bit-identical function of its seeds:
    /// re-running the sweep reproduces every point exactly, and the
    /// parallel grid agrees with the serial reference regardless of
    /// which worker evaluates which point.
    #[test]
    fn resilience_points_replay_bit_identically(
        seed in 0u64..10_000,
        mtbf in 200u64..1_500,
        mttr in 20u64..200,
        mode in prop_oneof![
            Just(RecoveryMode::None),
            Just(RecoveryMode::EndToEnd),
            Just(RecoveryMode::LinkLevel),
            Just(RecoveryMode::Combined),
        ],
    ) {
        let base = OpenLoopConfig {
            net: NetConfig::baseline()
                .with_topology(TopologyKind::Mesh2D { k: 4 })
                .with_seed(seed),
            ..OpenLoopConfig::default()
        }
        .quick()
        .with_load(0.08);
        let cfg = ResilienceConfig {
            settle_max: 60_000,
            ..ResilienceConfig::new(base, vec![(mtbf, mttr), (2 * mtbf, mttr)])
        }
        .with_recovery(mode);
        let par = resilience_sweep(&cfg);
        let ser = resilience_sweep_serial(&cfg);
        prop_assert_eq!(&par, &ser, "parallel vs serial diverged for {:?}", mode);
        prop_assert_eq!(&par, &resilience_sweep(&cfg), "replay diverged for {:?}", mode);
    }
}
