//! Property tests for fault-scenario replay and crash-proof grids.

use noc_exp::{run_grid_robust, PointOutcome};
use noc_fault::{FaultConfig, FaultSchedule};
use noc_sim::config::TopologyKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Same (seed, topology, request) -> bit-identical fault schedule,
    /// for any seed, any failure counts (including oversized), and
    /// every supported topology family.
    #[test]
    fn fault_schedule_replays_bit_identically(
        seed in 0u64..u64::MAX,
        links in 0usize..64,
        routers in 0usize..32,
        fail_at in 0u64..10_000,
        kind in prop_oneof![
            Just(TopologyKind::Mesh2D { k: 4 }),
            Just(TopologyKind::Torus2D { k: 4 }),
            Just(TopologyKind::FoldedTorus2D { k: 3 }),
            Just(TopologyKind::Ring { n: 9 }),
        ],
    ) {
        let cfg = FaultConfig { seed, link_failures: links, router_failures: routers, fail_at, corrupt_rate: 1e-4 };
        let topo = kind.build();
        let a = FaultSchedule::generate(&cfg, topo.as_ref());
        let b = FaultSchedule::generate(&cfg, topo.as_ref());
        prop_assert_eq!(&a, &b);
        // every event fires at the configured cycle, and link failures
        // never exceed twice the request (both directions per link)
        prop_assert!(a.events.iter().all(|e| e.cycle() == fail_at));
        let link_events = a.events.iter()
            .filter(|e| matches!(e, noc_sim::FaultEvent::LinkFail { .. }))
            .count();
        prop_assert!(link_events <= 2 * links);
        prop_assert_eq!(link_events % 2, 0);
    }

    /// A grid with one panicking point reports `Panicked` for exactly
    /// that point and clean results for every other — and the parallel
    /// engine agrees with a serial evaluation of the same closure.
    #[test]
    fn panicking_point_never_poisons_the_grid(
        n in 2usize..24,
        bad_seed in 0u64..1000,
    ) {
        let points: Vec<u64> = (0..n as u64).collect();
        let bad = bad_seed % n as u64;
        let eval = |_i: usize, &p: &u64| {
            if p == bad {
                panic!("injected failure at point {p}");
            }
            Ok(p * p)
        };
        let par = run_grid_robust(&points, eval);
        let ser: Vec<PointOutcome<u64>> = points
            .iter()
            .map(|&p| {
                if p == bad {
                    PointOutcome::Panicked { message: format!("injected failure at point {p}") }
                } else {
                    PointOutcome::Ok(p * p)
                }
            })
            .collect();
        prop_assert_eq!(par, ser);
    }
}
