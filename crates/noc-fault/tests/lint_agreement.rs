//! The static fault-connectivity lint and the dynamic simulation must
//! agree: a Certified fault set delivers everything under
//! retransmission, and a Refuted (partitioned) one abandons exactly the
//! traffic crossing the cut — while still settling cleanly.

use noc_fault::{run_faulted, FaultConfig, FaultSchedule};
use noc_openloop::OpenLoopConfig;
use noc_sim::config::{NetConfig, TopologyKind};
use noc_verify::{check_fault_connectivity, fault::isolate_node_events, FaultVerdict};

fn base() -> OpenLoopConfig {
    OpenLoopConfig {
        net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
        ..OpenLoopConfig::default()
    }
    .quick()
    .with_load(0.1)
}

#[test]
fn certified_fault_set_simulates_to_full_delivery() {
    let base = base();
    let topo = base.net.topology.build();
    // scan seeds for a certified 3-link scenario (most are; take the
    // first so the test does not depend on any one seed's luck)
    let schedule = (0..64)
        .map(|seed| {
            FaultSchedule::generate(
                &FaultConfig {
                    seed,
                    link_failures: 3,
                    fail_at: base.warmup,
                    ..FaultConfig::default()
                },
                topo.as_ref(),
            )
        })
        .find(|s| check_fault_connectivity(&base.net, &s.events).is_certified())
        .expect("some 3-link scenario on a 4x4 mesh must be survivable");

    let p = run_faulted(&base, schedule.plan(Some(Default::default())), 3, 100_000)
        .expect("certified scenario must settle");
    assert!(
        p.delivered.is_complete(),
        "lint certified the survivors but simulation delivered only {}",
        p.delivered
    );
    assert_eq!(p.abandoned, 0);
}

#[test]
fn refuted_fault_set_simulates_to_partial_delivery() {
    let base = base();
    let topo = base.net.topology.build();
    // isolate node 0: the lint must refute connectivity...
    let events = isolate_node_events(topo.as_ref(), 0, base.warmup);
    let report = check_fault_connectivity(&base.net, &events);
    let FaultVerdict::Refuted { witness } = &report.verdict else {
        panic!("isolating a node must refute connectivity: {report}");
    };
    assert!(witness.reachable == 1 || witness.cut_off == 1);

    // ...and the simulation must abandon exactly the cross-cut traffic
    // yet still settle (abandonment, not a hang)
    let plan = noc_sim::network::fault::FaultPlan {
        events,
        corrupt_rate: 0.0,
        corrupt_seed: 0,
        retx: Some(Default::default()),
        link_retry: None,
    };
    let p = run_faulted(&base, plan, 3, 200_000).expect("partitioned scenario must still settle");
    assert!(!p.delivered.is_complete(), "traffic across the cut cannot be delivered");
    assert!(p.abandoned > 0, "cross-cut transfers must be abandoned, not lost track of");
    assert_eq!(
        p.delivered.num + p.abandoned,
        p.delivered.den,
        "every transfer must resolve to delivered or abandoned"
    );
    // uniform traffic from 15 live nodes mostly stays on the big side:
    // the delivered fraction should remain high
    assert!(p.delivered.fraction() > 0.5, "degradation should be graceful: {}", p.delivered);
}
