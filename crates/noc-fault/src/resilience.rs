//! Resilience sweeps: availability, delivered fraction, and recovery
//! latency vs. link MTBF/MTTR under intermittent fault-and-repair
//! timelines.
//!
//! Where [`crate::sweep`] asks *how much is permanently lost* when k
//! links die, this module asks *how well the fabric rides through
//! outages that heal*: each point runs one gated open-loop measurement
//! against a [`FlapConfig`]-sampled flapping timeline and a selectable
//! [`RecoveryMode`] — end-to-end retransmission, link-level retry,
//! both, or neither — then settles until every transfer is delivered
//! or abandoned.
//!
//! Points run through [`noc_exp::run_grid_robust`] with the same seed
//! discipline as every other grid in the workspace: point `k` derives
//! its traffic seed from `derive_seed(base.net.seed, k)` and its flap
//! seed from an independent family, so output is bit-identical across
//! runs and worker thread counts (regression-tested against
//! [`resilience_sweep_serial`]).

use noc_exp::{derive_seed, run_grid_robust, Diverged, PointOutcome};
use noc_openloop::{OpenLoopBehavior, OpenLoopConfig};
use noc_sim::network::fault::{LinkRetryPolicy, RetxPolicy};
use noc_sim::network::Network;
use noc_stats::Ratio;
use noc_traffic::Bernoulli;

use crate::sweep::GatedSource;
use crate::{FaultSchedule, FlapConfig};

/// Which loss-recovery machinery a run arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// No recovery: losses stay lost (measures raw damage).
    None,
    /// End-to-end retransmission from the source NI ledger only.
    EndToEnd,
    /// Link-level retry (bounded replay from the per-link retry
    /// buffer) only; drops that exhaust the replay budget stay lost.
    LinkLevel,
    /// Both: link-level retry absorbs transient corruption, end-to-end
    /// retransmission covers replay exhaustion and outage swallows.
    Combined,
}

impl RecoveryMode {
    /// All modes, in presentation order.
    pub const ALL: [RecoveryMode; 4] = [
        RecoveryMode::None,
        RecoveryMode::EndToEnd,
        RecoveryMode::LinkLevel,
        RecoveryMode::Combined,
    ];

    /// Short stable label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryMode::None => "none",
            RecoveryMode::EndToEnd => "e2e",
            RecoveryMode::LinkLevel => "link",
            RecoveryMode::Combined => "combined",
        }
    }

    /// Split the mode into the two plan knobs it arms.
    pub fn split(
        &self,
        retx: RetxPolicy,
        link_retry: LinkRetryPolicy,
    ) -> (Option<RetxPolicy>, Option<LinkRetryPolicy>) {
        match self {
            RecoveryMode::None => (None, None),
            RecoveryMode::EndToEnd => (Some(retx), None),
            RecoveryMode::LinkLevel => (None, Some(link_retry)),
            RecoveryMode::Combined => (Some(retx), Some(link_retry)),
        }
    }
}

/// Configuration of a resilience sweep.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// The measurement each point runs (traffic pattern, load,
    /// warmup/measure windows, base seed).
    pub base: OpenLoopConfig,
    /// Template flap scenario; each point overrides `seed`, `mtbf`,
    /// and `mttr` but keeps `links`, `start`, `horizon`, and
    /// `corrupt_rate` from here.
    pub flap: FlapConfig,
    /// The sweep axis: `(mtbf, mttr)` pairs, one point each.
    pub axis: Vec<(u64, u64)>,
    /// Which recovery machinery every point arms.
    pub recovery: RecoveryMode,
    /// End-to-end retransmission policy (used by `EndToEnd`/`Combined`).
    pub retx: RetxPolicy,
    /// Link-level retry policy (used by `LinkLevel`/`Combined`).
    pub link_retry: LinkRetryPolicy,
    /// Settling budget past the measurement window before a point is
    /// declared diverged.
    pub settle_max: u64,
}

impl ResilienceConfig {
    /// A sweep over `(mtbf, mttr)` pairs with combined recovery, two
    /// flapping links, and the flap horizon pinned to the end of the
    /// measurement window (so every point ends healed before it
    /// settles).
    pub fn new(base: OpenLoopConfig, axis: Vec<(u64, u64)>) -> Self {
        let settle_max = base.drain_max;
        let flap = FlapConfig {
            links: 2,
            start: 16,
            horizon: base.warmup + base.measure,
            corrupt_rate: 1e-3,
            ..FlapConfig::default()
        };
        Self {
            base,
            flap,
            axis,
            recovery: RecoveryMode::Combined,
            retx: RetxPolicy::default(),
            link_retry: LinkRetryPolicy::default(),
            settle_max,
        }
    }

    /// Switch the recovery mode.
    pub fn with_recovery(mut self, recovery: RecoveryMode) -> Self {
        self.recovery = recovery;
        self
    }
}

/// One point of a resilience curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Mean cycles between outages of a flapping link (the axis).
    pub mtbf: u64,
    /// Mean cycles to repair an outage (the axis).
    pub mttr: u64,
    /// Scheduled fraction of directed-channel-cycles up over the flap
    /// horizon (1.0 = no outage ever).
    pub availability: f64,
    /// Transfers delivered / transfers started, exact after settling.
    pub delivered: Ratio,
    /// End-to-end retransmissions performed.
    pub retransmissions: u64,
    /// Transfers abandoned (attempts exhausted, or unreachable with no
    /// repair left to wait for).
    pub abandoned: u64,
    /// Link-level replay rounds performed.
    pub link_replays: u64,
    /// Head flits lost even after exhausting the replay budget.
    pub replay_drops: u64,
    /// Topology epochs closed (fault/repair batches that changed the
    /// surviving graph).
    pub epochs: u64,
    /// Cycles from the last repair event until the run fully settled
    /// (0 when it settled before the last repair landed).
    pub recovery_cycles: u64,
    /// Average latency of marked (in-window) delivered packets.
    pub avg_latency: f64,
    /// Cycle-exact delivery digest of the run (determinism
    /// fingerprint; must not depend on worker thread count).
    pub digest: u64,
    /// Total cycles simulated, including settling.
    pub cycles: u64,
}

/// Evaluate resilience point `k` (one `(mtbf, mttr)` pair).
fn eval_point(cfg: &ResilienceConfig, k: usize) -> Result<ResiliencePoint, Diverged> {
    let (mtbf, mttr) = cfg.axis[k];
    let mut base = cfg.base.clone();
    base.net.seed = derive_seed(cfg.base.net.seed, k as u64);

    // flap scenarios draw from their own seed family, so the traffic
    // stream of point k is unchanged by the recovery mode or the axis
    let flap = FlapConfig {
        seed: derive_seed(cfg.base.net.seed, 0xf1a9_0000 + k as u64),
        mtbf,
        mttr,
        ..cfg.flap
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::try_generate_intermittent(&flap, topo.as_ref())
        .expect("resilience sweep flap config must be valid");
    let last_repair = schedule.last_repair_cycle();
    let availability = schedule.link_availability(topo.as_ref(), flap.horizon);

    let (retx, link_retry) = cfg.recovery.split(cfg.retx, cfg.link_retry);
    let mut net =
        Network::new(base.net.clone()).expect("resilience sweep base config must be valid");
    let nodes = net.num_nodes();
    let radix = net.topo().radix(0);
    net.set_fault_plan(schedule.plan_with(retx, link_retry));

    let p = base.load / base.size.mean();
    assert!((0.0..=1.0).contains(&p), "offered load implies generation probability {p} > 1");
    let cutoff = base.warmup + base.measure;
    let mut b = GatedSource {
        inner: OpenLoopBehavior::new(
            nodes,
            base.pattern.build(nodes, radix),
            base.size.build(),
            || Box::new(Bernoulli { p }),
            base.net.seed,
            base.warmup,
            cutoff,
        ),
        cutoff,
        done: false,
    };

    net.run(cutoff, &mut b);
    let budget = cutoff + cfg.settle_max;
    while !(net.is_idle() && net.fault_settled()) {
        if net.cycle() >= budget {
            return Err(Diverged { budget });
        }
        net.step(&mut b);
    }

    let fs = net.fault_stats().expect("fault plan installed above").clone();
    Ok(ResiliencePoint {
        mtbf,
        mttr,
        availability,
        delivered: Ratio::new(fs.transfers_delivered, fs.transfers_started),
        retransmissions: fs.retransmissions,
        abandoned: fs.transfers_abandoned,
        link_replays: fs.link_replays,
        replay_drops: fs.replay_drops,
        epochs: fs.epochs,
        recovery_cycles: last_repair.map_or(0, |r| net.cycle().saturating_sub(r)),
        avg_latency: b.inner.latency.mean(),
        digest: net.stats().delivery_digest,
        cycles: net.cycle(),
    })
}

/// Measure the resilience curve: one point per `(mtbf, mttr)` pair, in
/// parallel, each isolated by the robust grid. Output is bit-identical
/// across runs and thread counts.
pub fn resilience_sweep(cfg: &ResilienceConfig) -> Vec<PointOutcome<ResiliencePoint>> {
    let ks: Vec<usize> = (0..cfg.axis.len()).collect();
    run_grid_robust(&ks, |_, &k| eval_point(cfg, k))
}

/// Serial reference implementation of [`resilience_sweep`], used to
/// regression-test that parallel output is bit-identical.
pub fn resilience_sweep_serial(cfg: &ResilienceConfig) -> Vec<PointOutcome<ResiliencePoint>> {
    (0..cfg.axis.len())
        .map(|k| match eval_point(cfg, k) {
            Ok(p) => PointOutcome::Ok(p),
            Err(d) => PointOutcome::Diverged { budget: d.budget },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, TopologyKind};

    fn quick_cfg(recovery: RecoveryMode) -> ResilienceConfig {
        let base = OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
        .with_load(0.1);
        ResilienceConfig { settle_max: 60_000, ..ResilienceConfig::new(base, vec![(400, 60)]) }
            .with_recovery(recovery)
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial_and_replayable() {
        let mut cfg = quick_cfg(RecoveryMode::Combined);
        cfg.axis = vec![(300, 40), (600, 80), (1200, 160)];
        let par = resilience_sweep(&cfg);
        let ser = resilience_sweep_serial(&cfg);
        assert_eq!(par, ser);
        assert_eq!(par, resilience_sweep(&cfg));
    }

    #[test]
    fn recovery_modes_arm_the_machinery_they_claim() {
        let outcomes: Vec<_> = RecoveryMode::ALL
            .iter()
            .map(|&m| {
                let out = resilience_sweep(&quick_cfg(m));
                let PointOutcome::Ok(p) = out.into_iter().next().unwrap() else {
                    panic!("point must succeed for {m:?}")
                };
                (m, p)
            })
            .collect();
        for (m, p) in &outcomes {
            match m {
                RecoveryMode::None => {
                    assert_eq!(p.retransmissions, 0);
                    assert_eq!(p.link_replays, 0);
                }
                RecoveryMode::EndToEnd => assert_eq!(p.link_replays, 0),
                RecoveryMode::LinkLevel => assert_eq!(p.retransmissions, 0),
                RecoveryMode::Combined => {}
            }
            assert!(p.availability < 1.0, "the timeline must actually flap");
            assert!(p.epochs >= 2, "every outage closes at least two epochs");
        }
        // end-to-end recovery must deliver everything the no-recovery
        // run lost (survivor paths exist on a flapping 4x4 mesh)
        let by = |m: RecoveryMode| &outcomes.iter().find(|(x, _)| *x == m).unwrap().1;
        assert!(by(RecoveryMode::Combined).delivered.is_complete());
        assert!(by(RecoveryMode::EndToEnd).delivered.is_complete());
        assert!(
            by(RecoveryMode::Combined).delivered.fraction()
                >= by(RecoveryMode::None).delivered.fraction()
        );
    }

    #[test]
    fn flap_points_end_healed_with_full_delivery() {
        // the CI acceptance shape: an intermittent scenario with
        // combined recovery reaches delivered == started after the
        // final repair epoch
        let cfg = quick_cfg(RecoveryMode::Combined);
        let out = resilience_sweep(&cfg);
        let PointOutcome::Ok(p) = &out[0] else { panic!("point must succeed: {out:?}") };
        assert!(p.delivered.is_complete(), "delivered {} after final repair", p.delivered);
        assert!(p.epochs > 0, "the scenario must actually change the graph");
    }
}
