//! # noc-fault — deterministic fault injection and graceful degradation
//!
//! The paper's scenarios all assume a perfect fabric; this crate asks
//! the next question — *what does the latency/throughput curve look
//! like when links or routers die?* It provides:
//!
//! * [`FaultSchedule`]: a seeded, replayable fault scenario generator.
//!   From a `(seed, topology)` pair it samples which physical channels
//!   and routers fail (SplitMix64-derived sub-seeds per decision
//!   family, so link choice, router choice, and transient corruption
//!   draw from independent deterministic streams). Same seed, same
//!   topology ⇒ bit-identical events, always. Besides permanent
//!   fail-stop scenarios ([`FaultSchedule::generate`]), it samples
//!   *intermittent* fault-and-repair timelines
//!   ([`FaultSchedule::generate_intermittent`]): a set of flapping
//!   links, each cycling down/up from an independent per-link
//!   sub-seed, with every outage repaired before the horizon.
//! * [`sweep::degradation_sweep`]: the degradation curve — delivered
//!   fraction, retransmissions, and post-fault latency/throughput as a
//!   function of the number of failed links — evaluated through
//!   `noc-exp`'s crash-proof grid so a pathological fault scenario
//!   reports [`noc_exp::PointOutcome::Diverged`] instead of hanging
//!   the sweep.
//! * [`resilience::resilience_sweep`]: the resilience curve —
//!   availability, delivered fraction, and recovery latency vs.
//!   MTBF/MTTR under a selectable [`resilience::RecoveryMode`]
//!   (end-to-end retransmission, link-level retry, both, or neither).
//!
//! The simulator-side fault semantics (what a dead channel does to
//! flits, credits, and the sanitizer's conservation laws) live in
//! [`noc_sim::network::fault`]; the static counterpart (certifying
//! that a surviving topology is still routable) is
//! `noc_verify::check_fault_connectivity`.

#![warn(missing_docs)]

pub mod resilience;
pub mod sweep;

pub use resilience::{
    resilience_sweep, resilience_sweep_serial, RecoveryMode, ResilienceConfig, ResiliencePoint,
};
pub use sweep::{
    degradation_sweep, degradation_sweep_serial, run_faulted, DegradationConfig, DegradationPoint,
};

use noc_sim::error::ConfigError;
use noc_sim::network::fault::{FaultEvent, FaultPlan, LinkRetryPolicy, RetxPolicy};
use noc_sim::rng::SimRng;
use noc_sim::topology::Topology;

/// What to break, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault scenario (independent of the traffic seed).
    pub seed: u64,
    /// Physical (bidirectional) links to fail; both directions die.
    pub link_failures: usize,
    /// Routers to fail-stop (their incident links die too).
    pub router_failures: usize,
    /// Cycle at which every permanent fault fires.
    pub fail_at: u64,
    /// Transient per-head-per-channel corruption probability.
    pub corrupt_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { seed: 1, link_failures: 0, router_failures: 0, fail_at: 0, corrupt_rate: 0.0 }
    }
}

/// An intermittent ("flapping") fault scenario: which links flap, how
/// often, and for how long.
///
/// Each flapping link cycles down/up from its own SplitMix64-derived
/// sub-seed. Down/up interval lengths are uniform on `1..=2*mtbf` and
/// `1..=2*mttr` respectively (so the configured values are the means),
/// and a link only goes down when its repair also lands strictly
/// before `horizon` — every generated timeline ends with the fabric
/// fully healed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapConfig {
    /// Seed of the fault scenario (independent of the traffic seed).
    pub seed: u64,
    /// Number of physical (bidirectional) links that flap.
    pub links: usize,
    /// Mean up-time between outages, in cycles (≥ 1).
    pub mtbf: u64,
    /// Mean time to repair an outage, in cycles (≥ 1).
    pub mttr: u64,
    /// No link goes down before this cycle.
    pub start: u64,
    /// Every repair lands strictly before this cycle (> `start`).
    pub horizon: u64,
    /// Transient per-head-per-channel corruption probability.
    pub corrupt_rate: f64,
}

impl Default for FlapConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            links: 1,
            mtbf: 2_000,
            mttr: 200,
            start: 100,
            horizon: 20_000,
            corrupt_rate: 0.0,
        }
    }
}

impl FlapConfig {
    /// Reject parameter values that cannot describe a timeline.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mtbf == 0 {
            return Err(ConfigError::Parameter { name: "mtbf", why: "must be >= 1 cycle".into() });
        }
        if self.mttr == 0 {
            return Err(ConfigError::Parameter { name: "mttr", why: "must be >= 1 cycle".into() });
        }
        if self.horizon <= self.start {
            return Err(ConfigError::Parameter {
                name: "horizon",
                why: format!("horizon {} must exceed start {}", self.horizon, self.start),
            });
        }
        if !self.corrupt_rate.is_finite() || !(0.0..=1.0).contains(&self.corrupt_rate) {
            return Err(ConfigError::Parameter {
                name: "corrupt_rate",
                why: format!("{} is not a probability", self.corrupt_rate),
            });
        }
        Ok(())
    }
}

/// A concrete, replayable fault scenario: the resolved event list plus
/// the transient-corruption parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Permanent fault events (both directions of each failed physical
    /// link, plus router failures), in a deterministic order.
    pub events: Vec<FaultEvent>,
    /// Transient corruption probability per head flit per channel.
    pub corrupt_rate: f64,
    /// Seed of the simulator's dedicated corruption RNG.
    pub corrupt_seed: u64,
}

impl FaultSchedule {
    /// Sample a scenario for `topo` from `cfg.seed`.
    ///
    /// Physical links are enumerated in deterministic `(router, port)`
    /// order, deduplicated to one entry per bidirectional pair, and
    /// sampled by a partial Fisher–Yates shuffle; routers are sampled
    /// the same way from an independent sub-seed. Requests for more
    /// failures than exist are clamped to "all of them".
    pub fn generate(cfg: &FaultConfig, topo: &dyn Topology) -> Self {
        let n = topo.num_nodes();
        let ports = topo.num_ports();

        // one entry per physical link: keep the direction whose
        // (router, port) endpoint is lexicographically smallest
        let mut edges: Vec<(usize, usize, usize, usize)> = Vec::new();
        for r in 0..n {
            for p in 1..ports {
                if let Some((v, vp)) = topo.neighbor(r, p) {
                    if (r, p) <= (v, vp) {
                        edges.push((r, p, v, vp));
                    }
                }
            }
        }
        let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 0));
        let picks = cfg.link_failures.min(edges.len());
        for i in 0..picks {
            let j = i + rng.below(edges.len() - i);
            edges.swap(i, j);
        }

        let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 1));
        let mut routers: Vec<usize> = (0..n).collect();
        let rpicks = cfg.router_failures.min(n);
        for i in 0..rpicks {
            let j = i + rng.below(n - i);
            routers.swap(i, j);
        }

        let mut events = Vec::with_capacity(2 * picks + rpicks);
        for &(r, p, v, vp) in &edges[..picks] {
            events.push(FaultEvent::LinkFail { cycle: cfg.fail_at, router: r, port: p });
            events.push(FaultEvent::LinkFail { cycle: cfg.fail_at, router: v, port: vp });
        }
        for &r in &routers[..rpicks] {
            events.push(FaultEvent::RouterFail { cycle: cfg.fail_at, router: r });
        }

        Self {
            events,
            corrupt_rate: cfg.corrupt_rate,
            corrupt_seed: noc_exp::derive_seed(cfg.seed, 2),
        }
    }

    /// Sample an intermittent fault-and-repair timeline for `topo`.
    ///
    /// Flapping links are picked by the same partial Fisher–Yates
    /// sampling as [`FaultSchedule::generate`] (from its own sub-seed),
    /// then each link's down/up timeline is drawn from an independent
    /// per-link sub-seed — so adding a flapping link never perturbs the
    /// timelines of the others. Events cover both directions of each
    /// physical link and come out stably sorted by cycle.
    pub fn try_generate_intermittent(
        cfg: &FlapConfig,
        topo: &dyn Topology,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = topo.num_nodes();
        let ports = topo.num_ports();

        let mut edges: Vec<(usize, usize, usize, usize)> = Vec::new();
        for r in 0..n {
            for p in 1..ports {
                if let Some((v, vp)) = topo.neighbor(r, p) {
                    if (r, p) <= (v, vp) {
                        edges.push((r, p, v, vp));
                    }
                }
            }
        }
        let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 3));
        let picks = cfg.links.min(edges.len());
        for i in 0..picks {
            let j = i + rng.below(edges.len() - i);
            edges.swap(i, j);
        }

        let mut events = Vec::new();
        for (i, &(r, p, v, vp)) in edges[..picks].iter().enumerate() {
            let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 0x100 + i as u64));
            let mut t = cfg.start;
            loop {
                let down = t + 1 + rng.below(2 * cfg.mtbf as usize) as u64;
                let up = down + 1 + rng.below(2 * cfg.mttr as usize) as u64;
                if up >= cfg.horizon {
                    break; // an outage only happens if its repair fits
                }
                events.push(FaultEvent::LinkFail { cycle: down, router: r, port: p });
                events.push(FaultEvent::LinkFail { cycle: down, router: v, port: vp });
                events.push(FaultEvent::LinkRepair { cycle: up, router: r, port: p });
                events.push(FaultEvent::LinkRepair { cycle: up, router: v, port: vp });
                t = up;
            }
        }
        events.sort_by_key(FaultEvent::cycle);

        Ok(Self {
            events,
            corrupt_rate: cfg.corrupt_rate,
            corrupt_seed: noc_exp::derive_seed(cfg.seed, 2),
        })
    }

    /// Panicking convenience wrapper over
    /// [`FaultSchedule::try_generate_intermittent`].
    pub fn generate_intermittent(cfg: &FlapConfig, topo: &dyn Topology) -> Self {
        Self::try_generate_intermittent(cfg, topo).expect("invalid FlapConfig")
    }

    /// The cycle of the last repair event, if the scenario has any.
    pub fn last_repair_cycle(&self) -> Option<u64> {
        self.events.iter().filter(|e| e.is_repair()).map(FaultEvent::cycle).max()
    }

    /// Scheduled downtime summed over *directed* channels, clipped to
    /// `horizon`: the denominator-free half of a link-availability
    /// figure. Outages still open at `horizon` (only possible for
    /// permanent scenarios) count until `horizon`.
    pub fn scheduled_downtime(&self, horizon: u64) -> u64 {
        let mut open: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let mut down = 0u64;
        for e in &self.events {
            match *e {
                FaultEvent::LinkFail { cycle, router, port } => {
                    open.entry((router, port)).or_insert(cycle.min(horizon));
                }
                FaultEvent::LinkRepair { cycle, router, port } => {
                    if let Some(from) = open.remove(&(router, port)) {
                        down += cycle.min(horizon).saturating_sub(from);
                    }
                }
                _ => {}
            }
        }
        for (_, from) in open {
            down += horizon.saturating_sub(from);
        }
        down
    }

    /// Fraction of directed-channel-cycles up over `[0, horizon)` —
    /// the "availability" axis of the resilience figures.
    pub fn link_availability(&self, topo: &dyn Topology, horizon: u64) -> f64 {
        let n = topo.num_nodes();
        let ports = topo.num_ports();
        let mut channels = 0u64;
        for r in 0..n {
            for p in 1..ports {
                if topo.neighbor(r, p).is_some() {
                    channels += 1;
                }
            }
        }
        if channels == 0 || horizon == 0 {
            return 1.0;
        }
        1.0 - self.scheduled_downtime(horizon) as f64 / (channels * horizon) as f64
    }

    /// Package the scenario as a simulator [`FaultPlan`], optionally
    /// with end-to-end retransmission.
    pub fn plan(&self, retx: Option<RetxPolicy>) -> FaultPlan {
        self.plan_with(retx, None)
    }

    /// Package the scenario as a simulator [`FaultPlan`] with both
    /// recovery knobs explicit: end-to-end retransmission and/or
    /// link-level retry.
    pub fn plan_with(
        &self,
        retx: Option<RetxPolicy>,
        link_retry: Option<LinkRetryPolicy>,
    ) -> FaultPlan {
        FaultPlan {
            events: self.events.clone(),
            corrupt_rate: self.corrupt_rate,
            corrupt_seed: self.corrupt_seed,
            retx,
            link_retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn mesh4() -> std::sync::Arc<dyn Topology> {
        TopologyKind::Mesh2D { k: 4 }.build()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            seed: 42,
            link_failures: 3,
            router_failures: 1,
            fail_at: 500,
            corrupt_rate: 1e-3,
        };
        let topo = mesh4();
        let a = FaultSchedule::generate(&cfg, topo.as_ref());
        let b = FaultSchedule::generate(&cfg, topo.as_ref());
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 2 * 3 + 1, "both directions per link plus the router");
    }

    #[test]
    fn different_seeds_differ() {
        let topo = mesh4();
        let mk = |seed| {
            FaultSchedule::generate(
                &FaultConfig { seed, link_failures: 4, ..FaultConfig::default() },
                topo.as_ref(),
            )
        };
        assert_ne!(mk(1).events, mk(2).events);
    }

    #[test]
    fn link_events_come_in_matched_pairs() {
        let topo = mesh4();
        let s = FaultSchedule::generate(
            &FaultConfig { seed: 7, link_failures: 5, ..FaultConfig::default() },
            topo.as_ref(),
        );
        for pair in s.events.chunks(2) {
            let [FaultEvent::LinkFail { router: r, port: p, .. }, FaultEvent::LinkFail { router: v, port: vp, .. }] =
                pair
            else {
                panic!("expected paired LinkFail events, got {pair:?}");
            };
            assert_eq!(topo.neighbor(*r, *p), Some((*v, *vp)), "reverse direction of same link");
        }
    }

    #[test]
    fn intermittent_same_seed_same_timeline() {
        let topo = mesh4();
        let cfg = FlapConfig { seed: 9, links: 3, mtbf: 300, mttr: 40, ..FlapConfig::default() };
        let a = FaultSchedule::generate_intermittent(&cfg, topo.as_ref());
        let b = FaultSchedule::generate_intermittent(&cfg, topo.as_ref());
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "a 20k-cycle horizon at mtbf 300 must flap");
    }

    #[test]
    fn intermittent_timelines_end_healed_and_sorted() {
        let topo = mesh4();
        let cfg = FlapConfig { seed: 5, links: 4, mtbf: 500, mttr: 60, ..FlapConfig::default() };
        let s = FaultSchedule::generate_intermittent(&cfg, topo.as_ref());

        // sorted by cycle, all within (start, horizon)
        let cycles: Vec<u64> = s.events.iter().map(FaultEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "events not sorted");
        assert!(cycles.iter().all(|&c| c > cfg.start && c < cfg.horizon));

        // every directed channel's fails and repairs alternate and balance
        use std::collections::HashMap;
        let mut state: HashMap<(usize, usize), bool> = HashMap::new();
        for e in &s.events {
            match *e {
                FaultEvent::LinkFail { router, port, .. } => {
                    let down = state.entry((router, port)).or_insert(false);
                    assert!(!*down, "double fail on {router}/{port}");
                    *down = true;
                }
                FaultEvent::LinkRepair { router, port, .. } => {
                    let down = state.entry((router, port)).or_insert(false);
                    assert!(*down, "repair of a healthy link {router}/{port}");
                    *down = false;
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(state.values().all(|&d| !d), "a link is still down at the horizon");
        assert_eq!(s.scheduled_downtime(cfg.horizon) > 0, !s.events.is_empty());
        let avail = s.link_availability(topo.as_ref(), cfg.horizon);
        assert!((0.0..1.0).contains(&avail), "availability {avail} out of range");
    }

    #[test]
    fn flap_validation_rejects_nonsense() {
        let topo = mesh4();
        for bad in [
            FlapConfig { mtbf: 0, ..FlapConfig::default() },
            FlapConfig { mttr: 0, ..FlapConfig::default() },
            FlapConfig { start: 100, horizon: 100, ..FlapConfig::default() },
            FlapConfig { corrupt_rate: f64::NAN, ..FlapConfig::default() },
            FlapConfig { corrupt_rate: 1.5, ..FlapConfig::default() },
        ] {
            assert!(
                FaultSchedule::try_generate_intermittent(&bad, topo.as_ref()).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn oversized_requests_are_clamped() {
        let topo = mesh4();
        let s = FaultSchedule::generate(
            &FaultConfig {
                seed: 3,
                link_failures: 10_000,
                router_failures: 10_000,
                ..FaultConfig::default()
            },
            topo.as_ref(),
        );
        // 4x4 mesh: 24 physical links, 16 routers
        assert_eq!(s.events.len(), 2 * 24 + 16);
    }
}
