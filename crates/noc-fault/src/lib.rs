//! # noc-fault — deterministic fault injection and graceful degradation
//!
//! The paper's scenarios all assume a perfect fabric; this crate asks
//! the next question — *what does the latency/throughput curve look
//! like when links or routers die?* It provides:
//!
//! * [`FaultSchedule`]: a seeded, replayable fault scenario generator.
//!   From a `(seed, topology)` pair it samples which physical channels
//!   and routers fail (SplitMix64-derived sub-seeds per decision
//!   family, so link choice, router choice, and transient corruption
//!   draw from independent deterministic streams). Same seed, same
//!   topology ⇒ bit-identical events, always.
//! * [`sweep::degradation_sweep`]: the degradation curve — delivered
//!   fraction, retransmissions, and post-fault latency/throughput as a
//!   function of the number of failed links — evaluated through
//!   `noc-exp`'s crash-proof grid so a pathological fault scenario
//!   reports [`noc_exp::PointOutcome::Diverged`] instead of hanging
//!   the sweep.
//!
//! The simulator-side fault semantics (what a dead channel does to
//! flits, credits, and the sanitizer's conservation laws) live in
//! [`noc_sim::network::fault`]; the static counterpart (certifying
//! that a surviving topology is still routable) is
//! `noc_verify::check_fault_connectivity`.

#![warn(missing_docs)]

pub mod sweep;

pub use sweep::{
    degradation_sweep, degradation_sweep_serial, run_faulted, DegradationConfig, DegradationPoint,
};

use noc_sim::network::fault::{FaultEvent, FaultPlan, RetxPolicy};
use noc_sim::rng::SimRng;
use noc_sim::topology::Topology;

/// What to break, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault scenario (independent of the traffic seed).
    pub seed: u64,
    /// Physical (bidirectional) links to fail; both directions die.
    pub link_failures: usize,
    /// Routers to fail-stop (their incident links die too).
    pub router_failures: usize,
    /// Cycle at which every permanent fault fires.
    pub fail_at: u64,
    /// Transient per-head-per-channel corruption probability.
    pub corrupt_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { seed: 1, link_failures: 0, router_failures: 0, fail_at: 0, corrupt_rate: 0.0 }
    }
}

/// A concrete, replayable fault scenario: the resolved event list plus
/// the transient-corruption parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Permanent fault events (both directions of each failed physical
    /// link, plus router failures), in a deterministic order.
    pub events: Vec<FaultEvent>,
    /// Transient corruption probability per head flit per channel.
    pub corrupt_rate: f64,
    /// Seed of the simulator's dedicated corruption RNG.
    pub corrupt_seed: u64,
}

impl FaultSchedule {
    /// Sample a scenario for `topo` from `cfg.seed`.
    ///
    /// Physical links are enumerated in deterministic `(router, port)`
    /// order, deduplicated to one entry per bidirectional pair, and
    /// sampled by a partial Fisher–Yates shuffle; routers are sampled
    /// the same way from an independent sub-seed. Requests for more
    /// failures than exist are clamped to "all of them".
    pub fn generate(cfg: &FaultConfig, topo: &dyn Topology) -> Self {
        let n = topo.num_nodes();
        let ports = topo.num_ports();

        // one entry per physical link: keep the direction whose
        // (router, port) endpoint is lexicographically smallest
        let mut edges: Vec<(usize, usize, usize, usize)> = Vec::new();
        for r in 0..n {
            for p in 1..ports {
                if let Some((v, vp)) = topo.neighbor(r, p) {
                    if (r, p) <= (v, vp) {
                        edges.push((r, p, v, vp));
                    }
                }
            }
        }
        let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 0));
        let picks = cfg.link_failures.min(edges.len());
        for i in 0..picks {
            let j = i + rng.below(edges.len() - i);
            edges.swap(i, j);
        }

        let mut rng = SimRng::new(noc_exp::derive_seed(cfg.seed, 1));
        let mut routers: Vec<usize> = (0..n).collect();
        let rpicks = cfg.router_failures.min(n);
        for i in 0..rpicks {
            let j = i + rng.below(n - i);
            routers.swap(i, j);
        }

        let mut events = Vec::with_capacity(2 * picks + rpicks);
        for &(r, p, v, vp) in &edges[..picks] {
            events.push(FaultEvent::LinkFail { cycle: cfg.fail_at, router: r, port: p });
            events.push(FaultEvent::LinkFail { cycle: cfg.fail_at, router: v, port: vp });
        }
        for &r in &routers[..rpicks] {
            events.push(FaultEvent::RouterFail { cycle: cfg.fail_at, router: r });
        }

        Self {
            events,
            corrupt_rate: cfg.corrupt_rate,
            corrupt_seed: noc_exp::derive_seed(cfg.seed, 2),
        }
    }

    /// Package the scenario as a simulator [`FaultPlan`], optionally
    /// with end-to-end retransmission.
    pub fn plan(&self, retx: Option<RetxPolicy>) -> FaultPlan {
        FaultPlan {
            events: self.events.clone(),
            corrupt_rate: self.corrupt_rate,
            corrupt_seed: self.corrupt_seed,
            retx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::TopologyKind;

    fn mesh4() -> std::sync::Arc<dyn Topology> {
        TopologyKind::Mesh2D { k: 4 }.build()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            seed: 42,
            link_failures: 3,
            router_failures: 1,
            fail_at: 500,
            corrupt_rate: 1e-3,
        };
        let topo = mesh4();
        let a = FaultSchedule::generate(&cfg, topo.as_ref());
        let b = FaultSchedule::generate(&cfg, topo.as_ref());
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 2 * 3 + 1, "both directions per link plus the router");
    }

    #[test]
    fn different_seeds_differ() {
        let topo = mesh4();
        let mk = |seed| {
            FaultSchedule::generate(
                &FaultConfig { seed, link_failures: 4, ..FaultConfig::default() },
                topo.as_ref(),
            )
        };
        assert_ne!(mk(1).events, mk(2).events);
    }

    #[test]
    fn link_events_come_in_matched_pairs() {
        let topo = mesh4();
        let s = FaultSchedule::generate(
            &FaultConfig { seed: 7, link_failures: 5, ..FaultConfig::default() },
            topo.as_ref(),
        );
        for pair in s.events.chunks(2) {
            let [FaultEvent::LinkFail { router: r, port: p, .. }, FaultEvent::LinkFail { router: v, port: vp, .. }] =
                pair
            else {
                panic!("expected paired LinkFail events, got {pair:?}");
            };
            assert_eq!(topo.neighbor(*r, *p), Some((*v, *vp)), "reverse direction of same link");
        }
    }

    #[test]
    fn oversized_requests_are_clamped() {
        let topo = mesh4();
        let s = FaultSchedule::generate(
            &FaultConfig {
                seed: 3,
                link_failures: 10_000,
                router_failures: 10_000,
                ..FaultConfig::default()
            },
            topo.as_ref(),
        );
        // 4x4 mesh: 24 physical links, 16 routers
        assert_eq!(s.events.len(), 2 * 24 + 16);
    }
}
