//! Graceful-degradation sweeps: metrics vs. number of failed links.
//!
//! Each point of a degradation sweep runs one open-loop style
//! measurement on a network with `k` failed physical links (plus
//! optional router failures and transient corruption), then *settles*:
//! generation stops at the end of the measurement window and the
//! simulation steps until the network is idle **and** the
//! retransmission ledger has resolved every transfer (delivered or
//! abandoned). Only then is the delivered fraction exact rather than a
//! snapshot.
//!
//! Points run through [`noc_exp::run_grid_robust`]: a scenario that
//! panics the engine reports `Panicked`, one that fails to settle
//! within [`DegradationConfig::settle_max`] reports `Diverged`, and
//! the rest of the curve survives. Results are bit-identical across
//! runs and thread counts — point `k` always uses the seed
//! `derive_seed(base.net.seed, k)` for traffic and an independently
//! derived scenario seed for faults, regardless of which worker
//! evaluates it (regression-tested against [`degradation_sweep_serial`]).

use noc_exp::{derive_seed, run_grid_robust, Diverged, PointOutcome};
use noc_openloop::{OpenLoopBehavior, OpenLoopConfig};
use noc_sim::flit::{Cycle, Delivered, PacketSpec};
use noc_sim::network::fault::RetxPolicy;
use noc_sim::network::{Network, NodeBehavior};
use noc_sim::topology::Topology;
use noc_stats::Ratio;
use noc_traffic::Bernoulli;

use crate::{FaultConfig, FaultSchedule};

/// Configuration of a degradation sweep.
#[derive(Debug, Clone)]
pub struct DegradationConfig {
    /// The healthy-network measurement each point starts from (traffic
    /// pattern, load, warmup/measure windows, base seed).
    pub base: OpenLoopConfig,
    /// Cycle at which the permanent faults fire. Faults during warmup
    /// (`fail_at <= base.warmup`) measure the degraded steady state;
    /// mid-window faults measure the transition.
    pub fail_at: u64,
    /// The sweep axis: points fail `0..=max_failed_links` links.
    pub max_failed_links: usize,
    /// Routers to fail-stop at every point (usually 0; the sweep axis
    /// is links).
    pub router_failures: usize,
    /// Transient per-head-per-channel corruption probability.
    pub corrupt_rate: f64,
    /// End-to-end retransmission policy (`None`: lost packets stay
    /// lost and the delivered fraction measures raw damage).
    pub retx: Option<RetxPolicy>,
    /// Settling budget: cycles past the measurement window a point may
    /// use to drain and resolve every transfer before it is declared
    /// diverged.
    pub settle_max: u64,
}

impl DegradationConfig {
    /// A sweep over `max_failed_links` with retransmission enabled and
    /// faults firing at the end of warmup.
    pub fn new(base: OpenLoopConfig, max_failed_links: usize) -> Self {
        let fail_at = base.warmup;
        let settle_max = base.drain_max;
        Self {
            base,
            fail_at,
            max_failed_links,
            router_failures: 0,
            corrupt_rate: 0.0,
            retx: Some(RetxPolicy::default()),
            settle_max,
        }
    }
}

/// One point of a degradation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPoint {
    /// Physical links failed at this point (the sweep axis).
    pub failed_links: usize,
    /// Transfers delivered / transfers started, exact.
    pub delivered: Ratio,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Transfers abandoned (unreachable destination or attempts
    /// exhausted).
    pub abandoned: u64,
    /// Whole packets swallowed by faults.
    pub packets_dropped: u64,
    /// Average latency of marked (in-window) delivered packets.
    pub avg_latency: f64,
    /// Accepted throughput during the window (flits/cycle/node).
    pub throughput: f64,
    /// Cycle-exact delivery digest of the run (determinism fingerprint).
    pub digest: u64,
    /// Total cycles simulated, including settling.
    pub cycles: u64,
}

/// An open-loop source with a hard generation cutoff, so a degraded
/// run can settle: past `cutoff` no new packets are pulled and the
/// behavior reports quiescent. Shared with the resilience sweep.
pub(crate) struct GatedSource {
    pub(crate) inner: OpenLoopBehavior,
    pub(crate) cutoff: Cycle,
    /// Set by the first pull at or past the cutoff; until then the
    /// behavior must not report quiescent (the engine's quiescent-cycle
    /// fast-forward would skip generation cycles otherwise).
    pub(crate) done: bool,
}

impl NodeBehavior for GatedSource {
    fn pull(&mut self, node: usize, cycle: Cycle) -> Option<PacketSpec> {
        if cycle >= self.cutoff {
            self.done = true;
            return None;
        }
        self.inner.pull(node, cycle)
    }

    fn deliver(&mut self, node: usize, d: &Delivered, cycle: Cycle) {
        self.inner.deliver(node, d, cycle);
    }

    fn quiescent(&self) -> bool {
        self.done // generation is bounded by the cutoff
    }
}

/// Run one faulted measurement: `base` traffic (seeded exactly by
/// `base.net.seed`) against an explicit fault `plan`, then settle.
///
/// This is the single-scenario building block under
/// [`degradation_sweep`]; tests and tools that need a *specific* fault
/// set (rather than a seeded sweep axis) call it directly.
/// `failed_links` only labels the returned point.
pub fn run_faulted(
    base: &OpenLoopConfig,
    plan: noc_sim::network::fault::FaultPlan,
    failed_links: usize,
    settle_max: u64,
) -> Result<DegradationPoint, Diverged> {
    let mut net =
        Network::new(base.net.clone()).expect("degradation sweep base config must be valid");
    let nodes = net.num_nodes();
    let radix = net.topo().radix(0);
    net.set_fault_plan(plan);

    let p = base.load / base.size.mean();
    assert!((0.0..=1.0).contains(&p), "offered load implies generation probability {p} > 1");
    let cutoff = base.warmup + base.measure;
    let mut b = GatedSource {
        inner: OpenLoopBehavior::new(
            nodes,
            base.pattern.build(nodes, radix),
            base.size.build(),
            || Box::new(Bernoulli { p }),
            base.net.seed,
            base.warmup,
            cutoff,
        ),
        cutoff,
        done: false,
    };

    net.run(cutoff, &mut b);
    // settle: drain the fabric and resolve every transfer
    let budget = cutoff + settle_max;
    while !(net.is_idle() && net.fault_settled()) {
        if net.cycle() >= budget {
            return Err(Diverged { budget });
        }
        net.step(&mut b);
    }

    let fs = net.fault_stats().expect("fault plan installed above").clone();
    Ok(DegradationPoint {
        failed_links,
        delivered: Ratio::new(fs.transfers_delivered, fs.transfers_started),
        retransmissions: fs.retransmissions,
        abandoned: fs.transfers_abandoned,
        packets_dropped: fs.packets_dropped,
        avg_latency: b.inner.latency.mean(),
        throughput: b.inner.window_flits as f64 / base.measure as f64 / nodes as f64,
        digest: net.stats().delivery_digest,
        cycles: net.cycle(),
    })
}

/// Evaluate degradation point `k` (that many failed links).
fn eval_point(cfg: &DegradationConfig, k: usize) -> Result<DegradationPoint, Diverged> {
    // per-point traffic seed, as every other grid in this workspace
    let mut base = cfg.base.clone();
    base.net.seed = derive_seed(cfg.base.net.seed, k as u64);

    // the fault scenario draws from its own seed family so the traffic
    // stream of point k is unchanged by turning faults on
    let fault_cfg = FaultConfig {
        seed: derive_seed(cfg.base.net.seed, 0x0fa1_7000 + k as u64),
        link_failures: k,
        router_failures: cfg.router_failures,
        fail_at: cfg.fail_at,
        corrupt_rate: cfg.corrupt_rate,
    };
    let topo = base.net.topology.build();
    let schedule = FaultSchedule::generate(&fault_cfg, topo.as_ref());
    run_faulted(&base, schedule.plan(cfg.retx), k, cfg.settle_max)
}

/// Measure the degradation curve: one point per failed-link count in
/// `0..=max_failed_links`, in parallel, each isolated by the robust
/// grid. Output is bit-identical across runs and thread counts.
pub fn degradation_sweep(cfg: &DegradationConfig) -> Vec<PointOutcome<DegradationPoint>> {
    let ks: Vec<usize> = (0..=cfg.max_failed_links).collect();
    run_grid_robust(&ks, |_, &k| eval_point(cfg, k))
}

/// Serial reference implementation of [`degradation_sweep`]: same
/// configurations, same seeds, one point at a time, no panic isolation
/// beyond the per-point wrapper. Used to regression-test that parallel
/// output is bit-identical.
pub fn degradation_sweep_serial(cfg: &DegradationConfig) -> Vec<PointOutcome<DegradationPoint>> {
    (0..=cfg.max_failed_links)
        .map(|k| match eval_point(cfg, k) {
            Ok(p) => PointOutcome::Ok(p),
            Err(d) => PointOutcome::Diverged { budget: d.budget },
        })
        .collect()
}

/// Number of physical links of a topology (the clamp bound for a
/// sweep's `max_failed_links`).
pub fn physical_links(topo: &dyn Topology) -> usize {
    let n = topo.num_nodes();
    let ports = topo.num_ports();
    let mut count = 0;
    for r in 0..n {
        for p in 1..ports {
            if let Some((v, vp)) = topo.neighbor(r, p) {
                if (r, p) <= (v, vp) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::{NetConfig, TopologyKind};

    fn quick_cfg(max_links: usize) -> DegradationConfig {
        let base = OpenLoopConfig {
            net: NetConfig::baseline().with_topology(TopologyKind::Mesh2D { k: 4 }),
            ..OpenLoopConfig::default()
        }
        .quick()
        .with_load(0.1);
        DegradationConfig { settle_max: 60_000, ..DegradationConfig::new(base, max_links) }
    }

    #[test]
    fn zero_fault_point_matches_healthy_engine_exactly() {
        // point 0 fails no links; its digest must equal a run of the
        // same seed with no fault plan installed at all (the fault layer
        // must be invisible until a fault actually exists)
        let cfg = quick_cfg(0);
        let out = degradation_sweep(&cfg);
        let PointOutcome::Ok(p0) = &out[0] else { panic!("point 0 must succeed: {out:?}") };
        assert!(p0.delivered.is_complete());
        assert_eq!(p0.abandoned, 0);
        assert_eq!(p0.packets_dropped, 0);

        // healthy twin: same derived point seed, no fault plan at all
        let mut net_cfg = cfg.base.net.clone();
        net_cfg.seed = derive_seed(cfg.base.net.seed, 0);
        let mut net = Network::new(net_cfg.clone()).unwrap();
        let nodes = net.num_nodes();
        let radix = net.topo().radix(0);
        let p = cfg.base.load / cfg.base.size.mean();
        let cutoff = cfg.base.warmup + cfg.base.measure;
        let mut b = GatedSource {
            inner: OpenLoopBehavior::new(
                nodes,
                cfg.base.pattern.build(nodes, radix),
                cfg.base.size.build(),
                || Box::new(Bernoulli { p }),
                net_cfg.seed,
                cfg.base.warmup,
                cutoff,
            ),
            cutoff,
            done: false,
        };
        net.run(cutoff, &mut b);
        while !net.is_idle() {
            net.step(&mut b);
        }
        assert_eq!(p0.digest, net.stats().delivery_digest, "fault layer perturbed a healthy run");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let cfg = quick_cfg(3);
        let par = degradation_sweep(&cfg);
        let ser = degradation_sweep_serial(&cfg);
        assert_eq!(par, ser);
        // and replaying the whole sweep reproduces it exactly
        assert_eq!(par, degradation_sweep(&cfg));
    }

    #[test]
    fn retransmission_recovers_everything_on_connected_survivors() {
        // 2 failed links leave a 4x4 mesh connected with very high
        // probability for the fixed scenario seed; retransmission must
        // then deliver every transfer
        let cfg = quick_cfg(2);
        for o in degradation_sweep(&cfg) {
            let PointOutcome::Ok(p) = o else { panic!("unexpected outcome: {o:?}") };
            assert!(
                p.delivered.is_complete(),
                "k={}: delivered {} with {} abandoned",
                p.failed_links,
                p.delivered,
                p.abandoned
            );
        }
    }

    #[test]
    fn physical_link_count_matches_mesh_formula() {
        let topo = TopologyKind::Mesh2D { k: 4 }.build();
        // 2 * k * (k-1) bidirectional links in a k x k mesh
        assert_eq!(physical_links(topo.as_ref()), 24);
    }
}
