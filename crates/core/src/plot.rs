//! Terminal plotting: multi-series ASCII scatter/line plots for the
//! figure binaries, so latency–load curves are readable without leaving
//! the terminal.

/// One plottable series.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// `(x, y)` points.
    pub points: &'a [(f64, f64)],
}

const MARKS: &[u8] = b"*o+x#@%&";

const SHADES: &[u8] = b" .:-=+*#%@";

/// Render one value per router on a `k x k` grid (row-major, rows are
/// y), shaded relative to the grid's own maximum, with a header line
/// above and a scale legend (in `unit`) below. The shared renderer
/// behind the measured link-saturation heatmap and the analytic
/// channel-load heatmap.
pub fn ascii_heatmap(header: &str, values: &[f64], k: usize, unit: &str) -> String {
    debug_assert_eq!(values.len(), k * k);
    let max = values.iter().cloned().fold(0.0, f64::max);
    let mut out = format!("{header}\n");
    for y in 0..k {
        out.push_str("  ");
        for x in 0..k {
            let v = values[y * k + x];
            let idx = if max <= 0.0 {
                0
            } else {
                ((v / max) * (SHADES.len() - 1) as f64).round() as usize
            };
            out.push(SHADES[idx.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out.push_str(&format!("  scale: ' ' = idle .. '@' = {max:.3} {unit}\n"));
    out
}

/// Render series into a `width x height` character grid with axes and a
/// legend. Non-finite points are skipped; an empty plot renders a frame.
pub fn ascii_plot(title: &str, series: &[Series<'_>], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let finite = |v: f64| v.is_finite();
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| finite(x) && finite(y))
        .collect();

    let (x_min, x_max, y_min, y_max) = if all.is_empty() {
        (0.0, 1.0, 0.0, 1.0)
    } else {
        let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y_min = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let y_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        // avoid a degenerate range
        let (x_min, x_max) =
            if x_min == x_max { (x_min - 0.5, x_max + 0.5) } else { (x_min, x_max) };
        let (y_min, y_max) =
            if y_min == y_max { (y_min - 0.5, y_max + 0.5) } else { (y_min, y_max) };
        (x_min, x_max, y_min, y_max)
    };

    let mut grid = vec![vec![b' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in s.points {
            if !finite(x) || !finite(y) {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }

    let mut out = format!("{title}\n");
    out.push_str(&format!("{y_max:>10.2} +{}+\n", "-".repeat(width)));
    for row in &grid {
        out.push_str("           |");
        out.push_str(std::str::from_utf8(row).expect("ascii grid"));
        out.push_str("|\n");
    }
    out.push_str(&format!("{y_min:>10.2} +{}+\n", "-".repeat(width)));
    out.push_str(&format!(
        "           {:<w$.3}{:>w2$.3}\n",
        x_min,
        x_max,
        w = width / 2 + 1,
        w2 = width / 2 + 1
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()] as char, s.label))
        .collect();
    out.push_str(&format!("           legend: {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_places_extremes_on_frame() {
        let pts = [(0.0, 0.0), (1.0, 1.0)];
        let p = ascii_plot("t", &[Series { label: "a", points: &pts }], 20, 6);
        let lines: Vec<&str> = p.lines().collect();
        // first grid row holds the max-y point, last holds min-y
        assert!(lines[2].ends_with('|') && lines[2].contains('*'));
        assert!(lines[7].contains('*'));
        assert!(p.contains("legend: * a"));
    }

    #[test]
    fn multiple_series_distinct_marks() {
        let a = [(0.0, 0.0)];
        let b = [(1.0, 1.0)];
        let p = ascii_plot(
            "t",
            &[Series { label: "a", points: &a }, Series { label: "b", points: &b }],
            20,
            6,
        );
        assert!(p.contains('*'));
        assert!(p.contains('o'));
    }

    #[test]
    fn empty_and_degenerate_inputs_are_safe() {
        let p = ascii_plot("t", &[], 20, 6);
        assert!(p.lines().count() >= 8);
        let same = [(2.0, 3.0), (2.0, 3.0)];
        let p = ascii_plot("t", &[Series { label: "s", points: &same }], 20, 6);
        assert!(p.contains('*'));
        let nan = [(f64::NAN, 1.0), (0.5, 0.5)];
        let p = ascii_plot("t", &[Series { label: "n", points: &nan }], 20, 6);
        assert!(p.contains('*'));
    }

    #[test]
    fn respects_minimum_dimensions() {
        let pts = [(0.0, 0.0)];
        let p = ascii_plot("t", &[Series { label: "a", points: &pts }], 1, 1);
        assert!(p.lines().count() >= 6, "clamped to minimum frame");
    }
}
