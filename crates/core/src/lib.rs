//! # noc-eval — the on-chip network evaluation framework
//!
//! The paper's primary contribution, as a library: a methodology for
//! evaluating on-chip networks that is fast like synthetic network-only
//! simulation but correlates with full execution-driven simulation.
//!
//! * [`correlate`] — the correlation pipelines: batch model vs open-loop
//!   (Figs 5 & 8) and batch model vs execution-driven (Figs 15, 19, 22),
//!   reported as Pearson coefficients over normalized runtimes.
//! * [`bridge`] — builds batch-model configurations from benchmark
//!   profiles: the enhanced injection (NAR), reply (memory latency), and
//!   kernel (timer/syscall) extensions, per benchmark, per clock.
//! * [`figures`] — one entry point per paper figure/table; each returns
//!   typed data and renders a text report, so the bench binaries and the
//!   integration tests share the exact same experiment code.
//! * [`report`] — text tables and CSV output.
//! * [`effort`] — scaling knobs: `quick` for tests, `paper` for the full
//!   reproduction.
//! * [`analytic`] — cross-validation of `noc-analytic`'s static
//!   predictions against the simulator, exported as
//!   `noc-eval/analytic/v1` JSON, plus predicted-vs-measured overlays
//!   and static channel-load heatmaps.
//! * [`serve`] — the `noc-eval/serve/v1` line protocol spoken by the
//!   long-running evaluation service (`noc-serve`): typed requests,
//!   outcome ladder, and a tolerant escape-aware parser.

#![warn(missing_docs)]

pub mod analytic;
pub mod bridge;
pub mod correlate;
pub mod effort;
pub mod figures;
pub mod plot;
pub mod report;
pub mod serve;

pub use analytic::{
    analytic_overlay, analytic_study, analytic_to_json, default_cases, load_heatmap,
    parse_analytic_json, AnalyticPoint, AnalyticStudy, ANALYTIC_SCHEMA,
};
pub use bridge::{batch_for_profile, BatchExtension};
pub use correlate::{correlate_cmp_batch, correlate_open_batch, CmpBatchOutcome, OpenBatchOutcome};
pub use effort::Effort;
pub use serve::{
    parse_request, parse_response, HealthSnapshot, PointRequest, ServeOutcome, ServeRequest,
    ServeResponse, ServeResult, SERVE_SCHEMA,
};
